//! Ablation of the generator noise dimension vs the Monte-Carlo sample
//! count M (Section V-C2).
//!
//! The paper argues that with a noise vector that is small relative to the
//! data dimension, the network-management model's predictions for different
//! GAN draws are "effectively identical", so M = 1 suffices and inference
//! stays a single generator pass. This bench quantifies that claim: for
//! several noise dimensions it measures (a) the agreement between M = 1 and
//! M = 9 predictions and (b) the F1 of each, on the 5GC scenario.
//!
//! `cargo bench -p fsda-bench --bench mc_ablation`

use fsda_bench::{scenario_5gc, BenchScale};
use fsda_core::adapter::build_classifier;
use fsda_core::fs::{FeatureSeparation, FsConfig};
use fsda_gan::cond_gan::{CondGan, CondGanConfig};
use fsda_gan::Reconstructor;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::classifier::argmax_rows;
use fsda_models::metrics::macro_f1;
use fsda_models::ClassifierKind;

fn main() {
    let scale = BenchScale::from_env();
    println!("== Ablation: noise dimension vs Monte-Carlo sample count ==");
    println!("{}", scale.banner());
    let (scenario, _) = scenario_5gc(&scale, scale.seed.wrapping_add(71));
    let mut rng = SeededRng::new(scale.seed + 72);
    let shots = scenario.draw_shots(5, &mut rng).expect("draw failed");
    let separation =
        FeatureSeparation::fit(&scenario.source, &shots, &FsConfig::default()).expect("FS failed");
    let (inv_src, var_src) = separation.split_normalized(scenario.source.features());
    let normalized_src = separation
        .normalizer()
        .transform(scenario.source.features());
    let mut classifier = build_classifier(ClassifierKind::RandomForest, 7, &scale.budget());
    classifier
        .fit(
            &normalized_src,
            scenario.source.labels(),
            scenario.source.num_classes(),
        )
        .expect("classifier fit failed");
    let (inv_test, _) = separation.split_normalized(scenario.target_test.features());
    let labels = scenario.target_test.labels();
    let num_classes = scenario.target_test.num_classes();

    println!(
        "\n{:>10} {:>12} {:>10} {:>10} {:>14}",
        "noise_dim", "M=1 vs M=9", "F1 (M=1)", "F1 (M=9)", "per-draw spread"
    );
    let base = if scenario.source.num_features() > 250 {
        CondGanConfig::for_5gc()
    } else {
        CondGanConfig::for_5gipc()
    };
    for noise_dim in [2usize, 8, base.noise_dim, 2 * base.noise_dim] {
        let mut gan = CondGan::new(
            CondGanConfig {
                noise_dim,
                epochs: scale.budget().gan_epochs,
                ..base.clone()
            },
            9,
        );
        gan.fit(&inv_src, &var_src, &scenario.source.one_hot_labels())
            .expect("gan fit failed");

        let predict_with_seed = |seed: u64| -> (Vec<usize>, Matrix) {
            let var_hat = gan.reconstruct(&inv_test, seed);
            let full = separation.reassemble(&inv_test, &var_hat);
            let probs = classifier.predict_proba(&full);
            (argmax_rows(&probs), probs)
        };
        let (pred_m1, _) = predict_with_seed(100);
        // M = 9: average probabilities across 9 generator draws.
        let mut acc: Option<Matrix> = None;
        let mut spread = 0.0;
        let mut prev: Option<Vec<usize>> = None;
        for m in 0..9 {
            let (pred, probs) = predict_with_seed(200 + m);
            if let Some(p) = &prev {
                spread += disagreement(p, &pred);
            }
            prev = Some(pred);
            acc = Some(match acc {
                None => probs,
                Some(a) => a.try_add(&probs).expect("same shape"),
            });
        }
        let pred_m9 = argmax_rows(&acc.expect("nine draws"));
        let agree = 1.0 - disagreement(&pred_m1, &pred_m9);
        println!(
            "{:>10} {:>11.1}% {:>10.1} {:>10.1} {:>13.2}%",
            noise_dim,
            100.0 * agree,
            100.0 * macro_f1(labels, &pred_m1, num_classes),
            100.0 * macro_f1(labels, &pred_m9, num_classes),
            100.0 * spread / 8.0
        );
    }
    println!(
        "\nShape expectation (paper §V-C2): small noise dimensions give near-total\n\
         M=1 / M=9 agreement with no F1 loss, justifying single-pass inference."
    );
}

fn disagreement(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).filter(|(x, y)| x != y).count() as f64 / a.len() as f64
}
