//! Criterion micro-benchmarks for the hot paths behind the §VI-D running
//! times: conditional-independence testing, GAN training steps, generator
//! inference, and the classifier forward passes.
//!
//! `cargo bench -p fsda-bench --bench micro`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fsda_causal::ci::{combine_with_fnode, CondIndepTest, FisherZ};
use fsda_core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda_core::fs::{FeatureSeparation, FsConfig};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::Synth5gc;
use fsda_gan::cond_gan::{CondGan, CondGanConfig};
use fsda_gan::Reconstructor;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::ClassifierKind;

fn bench_ci_tests(c: &mut Criterion) {
    let bundle = Synth5gc::small().generate(1).unwrap();
    let mut rng = SeededRng::new(2);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    let combined =
        combine_with_fnode(bundle.source_train.features(), shots.features()).unwrap();
    let test = FisherZ::new(&combined).unwrap();
    let f = bundle.source_train.num_features();
    c.bench_function("ci/fisher_z_marginal", |b| {
        b.iter(|| test.pvalue(0, f, &[]).unwrap())
    });
    c.bench_function("ci/fisher_z_cond1", |b| {
        b.iter(|| test.pvalue(0, f, &[1]).unwrap())
    });
    c.bench_function("ci/fisher_z_build", |b| {
        b.iter(|| FisherZ::new(&combined).unwrap())
    });
}

fn bench_fs(c: &mut Criterion) {
    let bundle = Synth5gc::small().generate(3).unwrap();
    let mut rng = SeededRng::new(4);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    c.bench_function("fs/full_separation_70_features", |b| {
        b.iter(|| {
            FeatureSeparation::fit(&bundle.source_train, &shots, &FsConfig::default()).unwrap()
        })
    });
}

fn bench_gan(c: &mut Criterion) {
    let mut rng = SeededRng::new(5);
    let x_inv = rng.normal_matrix(256, 40, 0.0, 0.5);
    let x_var = rng.normal_matrix(256, 12, 0.0, 0.5);
    let y = Matrix::zeros(256, 16);
    // One epoch of adversarial training (4 batches of 64).
    c.bench_function("gan/train_epoch_256x52", |b| {
        b.iter_batched(
            || CondGan::new(CondGanConfig { epochs: 1, hidden: 128, noise_dim: 8, ..CondGanConfig::default() }, 6),
            |mut gan| gan.fit(&x_inv, &x_var, &y).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let mut gan = CondGan::new(
        CondGanConfig { epochs: 5, hidden: 128, noise_dim: 8, ..CondGanConfig::default() },
        7,
    );
    gan.fit(&x_inv, &x_var, &y).unwrap();
    let single = x_inv.select_rows(&[0]);
    c.bench_function("gan/generator_single_sample", |b| {
        b.iter(|| gan.reconstruct(&single, 9))
    });
}

fn bench_inference(c: &mut Criterion) {
    let bundle = Synth5gc::small().generate(8).unwrap();
    let mut rng = SeededRng::new(9);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    let cfg = AdapterConfig {
        classifier: ClassifierKind::RandomForest,
        budget: Budget { gan_epochs: 30, ..Budget::quick() },
        ..AdapterConfig::default()
    };
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 10).unwrap();
    let one = bundle.target_test.features().select_rows(&[0]);
    c.bench_function("pipeline/predict_single_sample", |b| {
        b.iter(|| adapter.predict(&one))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ci_tests, bench_fs, bench_gan, bench_inference
}
criterion_main!(benches);
