//! Micro-benchmarks for the hot paths behind the §VI-D running times:
//! conditional-independence testing, GAN training steps, generator
//! inference, and the classifier forward passes.
//!
//! `cargo bench -p fsda-bench --bench micro`
//!
//! Uses a small `std::time` harness instead of an external benchmark crate
//! so the workspace builds offline; each benchmark reports the best of
//! several timed batches, which is robust to scheduler noise for the
//! sub-millisecond operations measured here.

use fsda_causal::ci::{combine_with_fnode, CondIndepTest, FisherZ};
use fsda_core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda_core::fs::{FeatureSeparation, FsConfig};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::Synth5gc;
use fsda_gan::cond_gan::{CondGan, CondGanConfig};
use fsda_gan::Reconstructor;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::ClassifierKind;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` as `batches` batches of `iters` calls and prints the best
/// per-call time (minimum over batches filters scheduler noise).
fn bench(name: &str, batches: usize, iters: usize, mut f: impl FnMut()) {
    // Warm-up batch.
    for _ in 0..iters {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_call = start.elapsed().as_secs_f64() / iters as f64;
        best = best.min(per_call);
    }
    println!("{name:<40} {:>12.3} µs/iter", best * 1e6);
}

fn bench_ci_tests() {
    let bundle = Synth5gc::small().generate(1).unwrap();
    let mut rng = SeededRng::new(2);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    let combined = combine_with_fnode(bundle.source_train.features(), shots.features()).unwrap();
    let test = FisherZ::new(&combined).unwrap();
    let f = bundle.source_train.num_features();
    bench("ci/fisher_z_marginal", 10, 10_000, || {
        black_box(test.pvalue(0, f, &[]).unwrap());
    });
    bench("ci/fisher_z_cond1", 10, 10_000, || {
        black_box(test.pvalue(0, f, &[1]).unwrap());
    });
    bench("ci/fisher_z_build", 10, 10, || {
        black_box(FisherZ::new(&combined).unwrap());
    });
}

fn bench_fs() {
    let bundle = Synth5gc::small().generate(3).unwrap();
    let mut rng = SeededRng::new(4);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    bench("fs/full_separation_70_features", 5, 3, || {
        black_box(
            FeatureSeparation::fit(&bundle.source_train, &shots, &FsConfig::default()).unwrap(),
        );
    });
}

fn bench_gan() {
    let mut rng = SeededRng::new(5);
    let x_inv = rng.normal_matrix(256, 40, 0.0, 0.5);
    let x_var = rng.normal_matrix(256, 12, 0.0, 0.5);
    let y = Matrix::zeros(256, 16);
    // One epoch of adversarial training (4 batches of 64).
    bench("gan/train_epoch_256x52", 3, 3, || {
        let mut gan = CondGan::new(
            CondGanConfig {
                epochs: 1,
                hidden: 128,
                noise_dim: 8,
                ..CondGanConfig::default()
            },
            6,
        );
        gan.fit(&x_inv, &x_var, &y).unwrap();
        black_box(&gan);
    });
    let mut gan = CondGan::new(
        CondGanConfig {
            epochs: 5,
            hidden: 128,
            noise_dim: 8,
            ..CondGanConfig::default()
        },
        7,
    );
    gan.fit(&x_inv, &x_var, &y).unwrap();
    let single = x_inv.select_rows(&[0]);
    bench("gan/generator_single_sample", 10, 1000, || {
        black_box(gan.reconstruct(&single, 9));
    });
}

fn bench_inference() {
    let bundle = Synth5gc::small().generate(8).unwrap();
    let mut rng = SeededRng::new(9);
    let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng).unwrap();
    let cfg = AdapterConfig {
        classifier: ClassifierKind::RandomForest,
        budget: Budget {
            gan_epochs: 30,
            ..Budget::quick()
        },
        ..AdapterConfig::default()
    };
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 10).unwrap();
    let one = bundle.target_test.features().select_rows(&[0]);
    bench("pipeline/predict_single_sample", 10, 1000, || {
        black_box(adapter.predict(&one));
    });
}

fn main() {
    println!("micro-benchmarks (best-of-batch per-call times)\n");
    bench_ci_tests();
    bench_fs();
    bench_gan();
    bench_inference();
}
