//! Regenerates the **§VI-D running-time analysis**: wall-clock of the FS
//! method, GAN training, and per-sample inference, checking the paper's
//! qualitative claims —
//!
//! * FS (CI testing) dominates offline cost, but only tests F-node
//!   relationships rather than the whole graph;
//! * GAN training is cheaper than FS (generator only reconstructs the
//!   small variant block);
//! * inference is a single generator pass per sample (paper: ~0.05 s on
//!   their hardware), and FS/GAN are both far cheaper than retraining the
//!   network-management models, which is the operational point.
//!
//! `cargo bench -p fsda-bench --bench runtime`

use fsda_bench::{scenario_5gc, BenchScale};
use fsda_core::adapter::{build_classifier, AdapterConfig, FsGanAdapter};
use fsda_core::fs::{FeatureSeparation, FsConfig};
use fsda_linalg::SeededRng;
use fsda_models::ClassifierKind;
use std::time::Instant;

fn main() {
    let scale = BenchScale::from_env();
    println!("== Running time of the proposed methods (paper §VI-D) ==");
    println!("{}", scale.banner());
    let (scenario, _) = scenario_5gc(&scale, scale.seed.wrapping_add(91));
    let mut rng = SeededRng::new(scale.seed + 9);
    let shots = scenario.draw_shots(5, &mut rng).expect("draw failed");

    // FS timing.
    let t0 = Instant::now();
    let fs =
        FeatureSeparation::fit(&scenario.source, &shots, &FsConfig::default()).expect("FS failed");
    let fs_time = t0.elapsed();
    println!(
        "\nFS method:        {:>8.2?}  ({} CI tests, {} variant features)  [paper: 42 min on 2x Xeon]",
        fs_time,
        fs.tests_run(),
        fs.variant().len()
    );

    // GAN training timing (inside adapter fit; measure the full fit and
    // the classifier separately to isolate it).
    let cfg = AdapterConfig {
        classifier: ClassifierKind::RandomForest,
        budget: scale.budget(),
        ..AdapterConfig::default()
    };
    let t0 = Instant::now();
    let adapter = FsGanAdapter::fit(&scenario.source, &shots, &cfg, 3).expect("adapter fit failed");
    let fit_time = t0.elapsed();

    let t0 = Instant::now();
    let mut clf = build_classifier(ClassifierKind::RandomForest, 3, &scale.budget());
    clf.fit(
        &fs.normalizer().transform(scenario.source.features()),
        scenario.source.labels(),
        scenario.source.num_classes(),
    )
    .expect("classifier fit failed");
    let clf_time = t0.elapsed();
    let gan_estimate = fit_time.saturating_sub(clf_time).saturating_sub(fs_time);
    println!(
        "GAN training:     {:>8.2?}  (estimated; full pipeline fit {:.2?})  [paper: 12 min]",
        gan_estimate, fit_time
    );
    println!(
        "classifier fit:   {:>8.2?}  (trained ONCE; never retrained afterwards)",
        clf_time
    );

    // Inference timing: single samples through the generator + classifier.
    let test = &scenario.target_test;
    let n_timed = test.len().min(200);
    let t0 = Instant::now();
    for i in 0..n_timed {
        let row = test.features().select_rows(&[i]);
        let _ = adapter.predict(&row);
    }
    let per_sample = t0.elapsed() / n_timed as u32;
    println!(
        "inference:        {:>8.2?} per sample (one generator pass + classifier)  [paper: ~0.05 s]",
        per_sample
    );

    // Batch inference for the throughput-minded.
    let t0 = Instant::now();
    let _ = adapter.predict(test.features());
    let batch = t0.elapsed();
    println!(
        "batch inference:  {:>8.2?} for {} samples ({:.2?}/sample amortized)",
        batch,
        test.len(),
        batch / test.len() as u32
    );

    println!(
        "\nNote on shape: the paper's offline profile is FS-dominated (42 min vs\n\
         12 min GAN) because of their conditional-independence test implementation;\n\
         this crate caches one correlation matrix and tests against it, making FS\n\
         far cheaper and inverting that ratio. The operational claims that matter\n\
         hold: adaptation costs only FS + GAN (no model retraining), and inference\n\
         is a sub-millisecond single generator pass."
    );
}
