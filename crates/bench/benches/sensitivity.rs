//! Regenerates the **§VI-C sensitivity analysis**:
//!
//! * S1 — variant-feature counts found by FS at 1/5/10 shots (paper:
//!   35/68/75 on 5GC, 23/31/37 on 5GIPC), plus precision/recall against the
//!   generator's ground truth (only possible here).
//! * S2 — F1 variance across random target-sample selections (paper:
//!   within ±2.6 points).
//! * A bonus α-sweep ablation of the CI significance level, one of the
//!   design knobs DESIGN.md calls out.
//!
//! `cargo bench -p fsda-bench --bench sensitivity`

use fsda_bench::{paper, scenario_5gc, scenario_5gipc, BenchScale};
use fsda_core::experiment::{run_cell, Scenario};
use fsda_core::fs::{FeatureSeparation, FsConfig};
use fsda_core::method::Method;
use fsda_linalg::SeededRng;
use fsda_models::ClassifierKind;

fn variant_counts(name: &str, scenario: &Scenario, truth: &[usize], paper_counts: &[usize; 3]) {
    println!("\n-- S1: variant features found by FS ({name}) --");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "k", "paper", "measured", "precision", "recall"
    );
    for (i, k) in [1usize, 5, 10].into_iter().enumerate() {
        let mut rng = SeededRng::new(50 + k as u64);
        let shots = scenario.draw_shots(k, &mut rng).expect("draw failed");
        let fs = FeatureSeparation::fit(&scenario.source, &shots, &FsConfig::default())
            .expect("FS failed");
        let (p, r) = fs.score_against(truth);
        println!(
            "{:>5} {:>10} {:>10} {:>10.2} {:>10.2}",
            k,
            paper_counts[i],
            fs.variant().len(),
            p,
            r
        );
    }
    println!("(ground truth: {} intervened features)", truth.len());
}

fn variance_analysis(name: &str, scenario: &Scenario, scale: &BenchScale) {
    println!("\n-- S2: variance across random target selections ({name}) --");
    let mut config = scale.experiment_config();
    config.shots = vec![5];
    config.repeats = config.repeats.max(3);
    for method in [Method::Fs, Method::FsGan] {
        let cell = run_cell(scenario, method, ClassifierKind::RandomForest, 5, &config)
            .expect("cell failed");
        let spread = cell
            .runs
            .iter()
            .map(|r| (r - cell.mean_f1).abs())
            .fold(0.0_f64, f64::max)
            * 100.0;
        println!(
            "{:<10} mean F1 {:>5.1}  sigma {:>4.1}  max deviation {:>4.1}  (paper bound ±{})",
            method.label(),
            cell.percent(),
            100.0 * cell.std_f1,
            spread,
            paper::VARIANCE_BOUND
        );
    }
}

fn alpha_sweep_scored(name: &str, scenario: &Scenario, truth: &[usize]) {
    println!("\n-- ablation: CI significance level alpha ({name}, k=5) --");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "alpha", "variant", "precision", "recall"
    );
    let mut rng = SeededRng::new(77);
    let shots = scenario.draw_shots(5, &mut rng).expect("draw failed");
    for alpha in [0.05, 0.01, 1e-3, 1e-5] {
        let fs = FeatureSeparation::fit(
            &scenario.source,
            &shots,
            &FsConfig {
                alpha,
                ..FsConfig::default()
            },
        )
        .expect("FS failed");
        let (p, r) = fs.score_against(truth);
        println!(
            "{:>10.0e} {:>10} {:>10.2} {:>10.2}",
            alpha,
            fs.variant().len(),
            p,
            r
        );
    }
}

fn main() {
    let scale = BenchScale::from_env();
    println!("== Sensitivity analysis (paper §VI-C) ==");
    println!("{}", scale.banner());

    let (gc, gc_truth) = scenario_5gc(&scale, scale.seed.wrapping_add(51));
    variant_counts("5GC", &gc, &gc_truth, &paper::VARIANT_COUNTS_5GC);
    variance_analysis("5GC", &gc, &scale);
    alpha_sweep_scored("5GC", &gc, &gc_truth);

    let (ipc, ipc_truth) = scenario_5gipc(&scale, scale.seed.wrapping_add(52));
    variant_counts("5GIPC", &ipc, &ipc_truth, &paper::VARIANT_COUNTS_5GIPC);
    variance_analysis("5GIPC", &ipc, &scale);

    println!(
        "\nShape expectations (paper): detection counts grow with k; F1 deviations\n\
         stay within a few points; smaller alpha is more conservative."
    );
}
