//! Regenerates **Table I**: F1 of all 13 DA methods × 4 classifiers ×
//! 1/5/10 target shots, on both datasets, printed next to the paper's
//! reported values.
//!
//! `cargo bench -p fsda-bench --bench table1` (scaled down by default;
//! `FSDA_FULL=1` for paper scale, `FSDA_REPEATS=20` for the paper's
//! repeat count, `FSDA_METHODS=FsGan,Fs,SrcOnly` to restrict rows).

use fsda_bench::{paper, scenario_5gc, scenario_5gipc, BenchScale};
use fsda_core::experiment::{run_grid, Scenario};
use fsda_core::method::Method;
use fsda_core::report::{format_table1, Comparison};
use fsda_models::ClassifierKind;

fn selected_methods() -> Vec<Method> {
    match std::env::var("FSDA_METHODS") {
        Ok(spec) => {
            let wanted: Vec<String> = spec.split(',').map(|s| s.trim().to_lowercase()).collect();
            Method::TABLE1
                .into_iter()
                .filter(|m| {
                    wanted.iter().any(|w| {
                        m.label().to_lowercase().contains(w)
                            || format!("{m:?}").to_lowercase() == *w
                    })
                })
                .collect()
        }
        Err(_) => Method::TABLE1.to_vec(),
    }
}

fn run_block(
    name: &str,
    scenario: &Scenario,
    methods: &[Method],
    scale: &BenchScale,
    paper_block: &[(Method, [[f64; 4]; 3])],
) {
    let config = scale.experiment_config();
    let grid = run_grid(scenario, methods, &ClassifierKind::ALL, &config).expect("grid run failed");
    println!("\n{}", format_table1(name, &grid, &config.shots));

    // Paper-vs-measured for the cells we ran.
    let mut rows = Vec::new();
    for entry in &grid {
        let k_idx = match entry.shots {
            1 => 0,
            5 => 1,
            _ => 2,
        };
        let col = entry
            .classifier
            .map(|c| {
                ClassifierKind::ALL
                    .iter()
                    .position(|&x| x == c)
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        if let Some((_, vals)) = paper_block.iter().find(|(m, _)| *m == entry.method) {
            rows.push((
                format!(
                    "{} {} k={}",
                    entry.method.label(),
                    entry.classifier.map(|c| c.label()).unwrap_or("(own)"),
                    entry.shots
                ),
                Comparison {
                    paper: vals[k_idx][col],
                    measured: entry.result.percent(),
                },
            ));
        }
    }
    println!("{}", fsda_core::report::format_comparison(name, &rows));

    // Headline shape summary at k = 5.
    let mut means = fsda_core::report::method_means(&grid, 5);
    means.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("ranking at k=5 (mean over columns):");
    for (m, f1) in &means {
        println!("  {:<16} {:>6.1}", m.label(), f1);
    }
}

fn main() {
    let scale = BenchScale::from_env();
    println!("== Table I: F1 of DA methods on target test data ==");
    println!("{}", scale.banner());
    let methods = selected_methods();

    let (gc, _) = scenario_5gc(&scale, scale.seed.wrapping_add(1));
    run_block("Table I — 5GC", &gc, &methods, &scale, &paper::TABLE1_5GC);

    let (ipc, _) = scenario_5gipc(&scale, scale.seed.wrapping_add(2));
    run_block(
        "Table I — 5GIPC",
        &ipc,
        &methods,
        &scale,
        &paper::TABLE1_5GIPC,
    );

    println!(
        "\nShape expectations (paper): FS+GAN > FS > causal/few-shot baselines >\n\
         domain-independent > naive; SrcOnly collapses on 5GC and is near-random\n\
         on 5GIPC; every method improves with more shots."
    );
}
