//! Regenerates **Table II**: the reconstruction-strategy ablation
//! (FS+GAN / FS+NoCond / FS+VAE / FS+VanillaAE) with the TNet classifier.
//!
//! `cargo bench -p fsda-bench --bench table2_ablation`

use fsda_bench::{paper, scenario_5gc, scenario_5gipc, BenchScale};
use fsda_core::experiment::{run_cell, Scenario};
use fsda_core::method::Method;
use fsda_core::report::Comparison;
use fsda_models::ClassifierKind;

fn run_block(name: &str, scenario: &Scenario, scale: &BenchScale, paper_col: usize) {
    let config = scale.experiment_config();
    println!("\n-- {name} (TNet) --");
    let mut rows = Vec::new();
    for (i, method) in Method::TABLE2.iter().enumerate() {
        print!("{:<14}", method.label());
        for (k_idx, &k) in config.shots.iter().enumerate() {
            let cell = run_cell(scenario, *method, ClassifierKind::Tnet, k, &config)
                .expect("ablation cell failed");
            print!(" {:>7.1}", cell.percent());
            let paper_vals = paper::TABLE2[i];
            let p = if paper_col == 0 {
                paper_vals.1[k_idx]
            } else {
                paper_vals.2[k_idx]
            };
            rows.push((
                format!("{} k={}", method.label(), k),
                Comparison {
                    paper: p,
                    measured: cell.percent(),
                },
            ));
        }
        println!();
    }
    println!("\n{}", fsda_core::report::format_comparison(name, &rows));
}

fn main() {
    let scale = BenchScale::from_env();
    println!("== Table II: ablation of reconstruction strategies ==");
    println!("{}", scale.banner());

    let (gc, _) = scenario_5gc(&scale, scale.seed.wrapping_add(11));
    run_block("Table II — 5GC", &gc, &scale, 0);

    let (ipc, _) = scenario_5gipc(&scale, scale.seed.wrapping_add(12));
    run_block("Table II — 5GIPC", &ipc, &scale, 1);

    println!(
        "\nShape expectation (paper): FS+GAN >= FS+NoCond >= FS+VAE >= FS+VanillaAE;\n\
         conditioning the discriminator on the label matters most at k >= 5."
    );
}
