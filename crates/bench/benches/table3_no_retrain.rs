//! Regenerates **Table III**: the no-retraining study. The 5GIPC data is
//! split into three GMM-style domains (Source, Target_1, Target_2); two
//! FS+GAN front-ends are fit (one per target) while the TNet fault-
//! detection model is trained once on Source, and each adapter is
//! evaluated on both targets.
//!
//! `cargo bench -p fsda-bench --bench table3_no_retrain`

use fsda_bench::{paper, three_domain_5gipc, BenchScale};
use fsda_core::adapter::{AdapterConfig, FsGanAdapter};
use fsda_core::report::Comparison;
use fsda_data::fewshot::few_shot_indices;
use fsda_data::synth5gipc::NUM_GROUPS;
use fsda_linalg::SeededRng;
use fsda_models::metrics::macro_f1;
use fsda_models::ClassifierKind;

fn main() {
    let scale = BenchScale::from_env();
    println!("== Table III: no retraining across successive target domains ==");
    println!("{}", scale.banner());
    let bundle = three_domain_5gipc(&scale, scale.seed.wrapping_add(31));
    let cfg = AdapterConfig {
        classifier: ClassifierKind::Tnet,
        budget: scale.budget(),
        ..AdapterConfig::default()
    };

    let mut rows = Vec::new();
    println!(
        "\n{:<10} {:>22} {:>22}",
        "adapter", "Target_1 k=1/5/10", "Target_2 k=1/5/10"
    );
    for (a_idx, (label, pool, groups)) in [
        (
            "FS+GAN_1",
            &bundle.target1_pool,
            &bundle.target1_pool_groups,
        ),
        (
            "FS+GAN_2",
            &bundle.target2_pool,
            &bundle.target2_pool_groups,
        ),
    ]
    .into_iter()
    .enumerate()
    {
        let mut cells_t1 = Vec::new();
        let mut cells_t2 = Vec::new();
        for (k_idx, k) in [1usize, 5, 10].into_iter().enumerate() {
            let mut rng = SeededRng::new(scale.seed + 100 + k as u64 + a_idx as u64 * 7);
            let idx =
                few_shot_indices(groups, NUM_GROUPS, k, &mut rng).expect("few-shot draw failed");
            let shots = pool.subset(&idx);
            let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 41 + k as u64)
                .expect("adapter fit failed");
            let f1_t1 = 100.0
                * macro_f1(
                    bundle.target1_test.labels(),
                    &adapter.predict(bundle.target1_test.features()),
                    2,
                );
            let f1_t2 = 100.0
                * macro_f1(
                    bundle.target2_test.labels(),
                    &adapter.predict(bundle.target2_test.features()),
                    2,
                );
            let (p1, p2) = (paper::TABLE3[a_idx].1[k_idx], paper::TABLE3[a_idx].2[k_idx]);
            rows.push((
                format!("{label} on T1 k={k}"),
                Comparison {
                    paper: p1,
                    measured: f1_t1,
                },
            ));
            rows.push((
                format!("{label} on T2 k={k}"),
                Comparison {
                    paper: p2,
                    measured: f1_t2,
                },
            ));
            cells_t1.push(f1_t1);
            cells_t2.push(f1_t2);
        }
        println!(
            "{:<10} {:>6.1}/{:>5.1}/{:>5.1}  {:>6.1}/{:>5.1}/{:>5.1}",
            label, cells_t1[0], cells_t1[1], cells_t1[2], cells_t2[0], cells_t2[1], cells_t2[2]
        );
    }
    println!(
        "\n{}",
        fsda_core::report::format_comparison("Table III", &rows)
    );
    println!(
        "Shape expectation (paper): each adapter is best on its own target, but the\n\
         TNet model — trained once, on Source only — stays competitive when the\n\
         other target's adapter is used, because the variant sets mostly overlap."
    );
}
