//! Generator-calibration spot check: runs a handful of decisive Table-I
//! cells (SrcOnly / S&T / FS / FS+GAN and friends) on the 5GC scenario with
//! overridable signal knobs, to verify that the paper's method ordering
//! emerges from a given generator configuration.
//!
//! Usage: `cargo run --release -p fsda-bench --bin calibrate -- [signal_variant] [signal_invariant] [shift_strong]`
//! (set `CAL_FULL=1` for the paper-scale preset; defaults match the
//! shipped full-preset values).

use fsda_core::adapter::Budget;
use fsda_core::experiment::{run_cell, ExperimentConfig, Scenario};
use fsda_core::method::Method;
use fsda_data::synth5gc::Synth5gc;
use fsda_models::ClassifierKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sv: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let si: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.6);
    let full = std::env::var("CAL_FULL").is_ok();
    let mut gen = if full {
        Synth5gc::full()
    } else {
        Synth5gc::small()
    };
    gen.signal_variant = sv;
    gen.signal_invariant = si;
    if let Some(sh) = args.get(3).and_then(|s| s.parse().ok()) {
        gen.shift_strong = sh;
    }
    let b = gen.generate(1).unwrap();
    let s = Scenario {
        name: "5GC".into(),
        source: b.source_train,
        target_pool: b.target_pool,
        pool_groups: None,
        num_groups: 16,
        target_test: b.target_test,
    };
    let cfg = ExperimentConfig {
        shots: vec![5],
        repeats: if full { 1 } else { 2 },
        budget: if full {
            Budget::full()
        } else {
            Budget::quick()
        },
        seed: 3,
        parallel: true,
    };
    println!("sv={sv} si={si}");
    let kinds = if full {
        vec![ClassifierKind::Mlp]
    } else {
        vec![ClassifierKind::Mlp, ClassifierKind::RandomForest]
    };
    let methods = if full {
        vec![Method::SrcOnly, Method::SourceAndTarget, Method::Fs]
    } else {
        vec![
            Method::SrcOnly,
            Method::TarOnly,
            Method::SourceAndTarget,
            Method::Cmt,
            Method::Fs,
            Method::FsGan,
        ]
    };
    for kind in kinds {
        print!("{:>4}:", kind.label());
        for m in &methods {
            let c = run_cell(&s, *m, kind, 5, &cfg).unwrap();
            print!(" {}={:.1}", m.label(), c.percent());
            use std::io::Write as _;
            std::io::stdout().flush().ok();
        }
        println!();
    }
}
