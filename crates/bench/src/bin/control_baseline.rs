//! Control-plane baseline for the closed-loop drift controller: the cost
//! of re-separation with and without the warm-start cache, and the
//! end-to-end detect → re-fit → validate → hot-swap latency through a
//! live [`fsda_serve::DriftController`].
//!
//! **Warm vs cold.** A cold re-fit re-runs the full F-node search: fit
//! the source normalizer, rebuild the (n_src + n_tgt) × d correlation
//! structure, then stage the CI tests. A warm re-fit reuses the
//! per-tenant [`fsda_core::fs::SeparationCache`] — source moments and
//! Gram matrix are fixed across re-fits, so only the few target shots are
//! folded in (O(n_tgt · d²) instead of O((n_src + n_tgt) · d²)) and the
//! staged search is seeded with the previous skeleton. The cache itself
//! is built once per tenant at boot, off the re-fit path, and is *not*
//! part of the measured warm time. The headline claim this bench
//! regression-gates: **warm re-separation costs at most half of a cold
//! search** on source-rich tenants (`max_warm_ratio <= 0.5`).
//!
//! **Detect → swap.** A controller supervising a stale tenant is fed a
//! drifted window; the recorded latency spans drift scoring, the few-shot
//! draw, the (warm) re-fit, the validation gate against the restored
//! incumbent, and the atomic hot-swap.
//!
//! Writes `BENCH_control.json` at the repository root.
//!
//! `cargo run -p fsda-bench --release --bin control_baseline [-- --quick]`

use fsda_core::adapter::AdapterConfig;
use fsda_core::drift::DriftConfig;
use fsda_core::fs::{FeatureSeparation, SearchPath, SeparationCache};
use fsda_core::{GuardConfig, Method, RetryPolicy};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::{Synth5gc, Synth5gcBundle};
use fsda_data::Dataset;
use fsda_linalg::SeededRng;
use fsda_serve::controller::{ControlOutcome, ControllerConfig, DriftController, RegistryRefitter};
use fsda_serve::server::{ServeConfig, TenantServer};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One separation workload: a named 5GC preset and how many shots per
/// class the re-fit draws.
struct Workload {
    name: &'static str,
    preset: Synth5gc,
    shots_per_class: usize,
}

struct SeparationRow {
    name: &'static str,
    n_src: usize,
    n_shots: usize,
    features: usize,
    cold_ms: f64,
    warm_ms: f64,
    ratio: f64,
    agree: bool,
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let value = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(value);
    }
    (best, out.expect("reps >= 1"))
}

fn measure_separation(w: &Workload, reps: usize) -> SeparationRow {
    let bundle = w.preset.generate(17).expect("bundle");
    let config = AdapterConfig::quick();
    let mut rng = SeededRng::new(23);
    let shots = few_shot_subset(&bundle.target_pool, w.shots_per_class, &mut rng).expect("shots");

    // Boot-time, per-tenant work — excluded from both measured paths.
    let cache = SeparationCache::new(&bundle.source_train, &config.fs).expect("cache");
    let prev = FeatureSeparation::fit(&bundle.source_train, &shots, &config.fs)
        .expect("skeleton")
        .variant()
        .to_vec();

    let (cold_ms, cold) = best_of(reps, || {
        FeatureSeparation::fit(&bundle.source_train, &shots, &config.fs).expect("cold fit")
    });
    let (warm_ms, warm) = best_of(reps, || {
        let (sep, path) =
            FeatureSeparation::fit_warm(&cache, &shots, Some(&prev)).expect("warm fit");
        assert_eq!(path, SearchPath::Warm, "warm path must not fall back");
        sep
    });

    // The two paths run numerically different (but deterministic)
    // correlation builds; borderline features may flip. Record how far
    // apart the partitions landed rather than asserting equality.
    let sym_diff = cold
        .variant()
        .iter()
        .filter(|v| !warm.variant().contains(v))
        .count()
        + warm
            .variant()
            .iter()
            .filter(|v| !cold.variant().contains(v))
            .count();

    SeparationRow {
        name: w.name,
        n_src: bundle.source_train.len(),
        n_shots: shots.len(),
        features: bundle.source_train.num_features(),
        cold_ms,
        warm_ms,
        ratio: warm_ms / cold_ms.max(1e-12),
        agree: sym_diff <= 2,
    }
}

struct ControlRun {
    cycles: usize,
    swaps: usize,
    warm_swaps: usize,
    detect_to_swap_ms: Vec<f64>,
}

/// Runs `cycles` full detect → re-fit → validate → swap loops through a
/// live controller + server, alternating drifted windows with fresh
/// buffered pools so every cycle starts from a stale incumbent.
fn measure_control(bundle: &Synth5gcBundle, cycles: usize) -> ControlRun {
    let k = bundle.source_train.num_classes();
    let rotated = Dataset::new(
        bundle.source_train.features().clone(),
        bundle
            .source_train
            .labels()
            .iter()
            .map(|&y| (y + 1) % k)
            .collect(),
        k,
    )
    .expect("rotated");
    let mut incumbent = Method::SrcOnly.build(&AdapterConfig::quick(), 5);
    incumbent
        .try_fit(&rotated, &rotated, &GuardConfig::default())
        .expect("incumbent fit");
    let incumbent_bytes = incumbent.to_bytes().expect("incumbent bytes");
    let server = Arc::new(
        TenantServer::from_artifacts(vec![("slice-0".into(), incumbent)], ServeConfig::default())
            .expect("server"),
    );
    let refitter = Arc::new(
        RegistryRefitter::new(
            Method::Fs,
            AdapterConfig::quick(),
            GuardConfig::default(),
            &bundle.source_train,
        )
        .expect("refitter"),
    );
    let mut controller = DriftController::new(
        "slice-0",
        Arc::clone(&server),
        Arc::new(bundle.source_train.clone()),
        incumbent_bytes,
        refitter,
        ControllerConfig {
            drift: DriftConfig {
                z_threshold: 0.5,
                ks_threshold: 0.1,
                feature_fraction: 0.01,
                ..DriftConfig::default()
            },
            retry: RetryPolicy::immediate(2),
            attempt_deadline: Duration::from_secs(120),
            shots_per_class: 5,
            seed: 29,
            // Latency bench: the gate must not reject later cycles whose
            // candidates tie the (already re-fitted) incumbent — every
            // stage still runs and is measured.
            min_improvement: -1.0,
            ..ControllerConfig::default()
        },
    )
    .expect("controller");
    controller
        .push_window(bundle.target_pool.clone())
        .expect("pool");

    let mut run = ControlRun {
        cycles,
        swaps: 0,
        warm_swaps: 0,
        detect_to_swap_ms: Vec::new(),
    };
    for cycle in 0..cycles {
        match controller.observe(bundle.target_test.features()) {
            ControlOutcome::Swapped(swap) => {
                run.swaps += 1;
                if swap.path == SearchPath::Warm {
                    run.warm_swaps += 1;
                }
                run.detect_to_swap_ms
                    .push(swap.detect_to_swap.as_secs_f64() * 1e3);
            }
            other => panic!("control cycle {cycle} did not swap: {other:?}"),
        }
    }
    drop(server);
    run
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

const TARGET_MAX_RATIO: f64 = 0.5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (reps, cycles) = if quick { (3, 2) } else { (5, 5) };

    // Source-rich presets: the warm cache amortizes the source side of
    // the correlation build, so its payoff scales with n_src.
    let workloads = [
        Workload {
            name: "paper_full",
            preset: Synth5gc::full(),
            shots_per_class: 5,
        },
        Workload {
            name: "source_rich",
            preset: Synth5gc {
                source_total: 8192,
                ..Synth5gc::full()
            },
            shots_per_class: 5,
        },
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        let row = measure_separation(w, reps);
        println!(
            "{:>12}  n_src={:>5} d={:>3}  cold {:>8.2} ms  warm {:>8.2} ms  ratio {:.3}  agree={}",
            row.name, row.n_src, row.features, row.cold_ms, row.warm_ms, row.ratio, row.agree
        );
        rows.push(row);
    }
    let max_ratio = rows.iter().map(|r| r.ratio).fold(0.0f64, f64::max);

    let control_bundle = Synth5gc::small().generate(11).expect("control bundle");
    let control = measure_control(&control_bundle, cycles);
    println!(
        "control: {} cycles, {} swaps ({} warm), detect->swap mean {:.1} ms max {:.1} ms",
        control.cycles,
        control.swaps,
        control.warm_swaps,
        mean(&control.detect_to_swap_ms),
        control
            .detect_to_swap_ms
            .iter()
            .fold(0.0f64, |a, &b| a.max(b)),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"reps\": {reps},");
    json.push_str("  \"separation\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(json, "      \"n_src\": {},", r.n_src);
        let _ = writeln!(json, "      \"n_shots\": {},", r.n_shots);
        let _ = writeln!(json, "      \"features\": {},", r.features);
        let _ = writeln!(json, "      \"cold_ms\": {:.4},", r.cold_ms);
        let _ = writeln!(json, "      \"warm_ms\": {:.4},", r.warm_ms);
        let _ = writeln!(json, "      \"ratio\": {:.4},", r.ratio);
        let _ = writeln!(json, "      \"partitions_agree\": {}", r.agree);
        json.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"control\": {\n");
    let _ = writeln!(json, "    \"cycles\": {},", control.cycles);
    let _ = writeln!(json, "    \"swaps\": {},", control.swaps);
    let _ = writeln!(json, "    \"warm_swaps\": {},", control.warm_swaps);
    let _ = writeln!(
        json,
        "    \"detect_to_swap_ms_mean\": {:.4},",
        mean(&control.detect_to_swap_ms)
    );
    let _ = writeln!(
        json,
        "    \"detect_to_swap_ms_max\": {:.4}",
        control
            .detect_to_swap_ms
            .iter()
            .fold(0.0f64, |a, &b| a.max(b))
    );
    json.push_str("  },\n");
    json.push_str("  \"summary\": {\n");
    let _ = writeln!(json, "    \"max_warm_ratio\": {max_ratio:.4},");
    let _ = writeln!(json, "    \"target_max_ratio\": {TARGET_MAX_RATIO}");
    json.push_str("  }\n}\n");

    std::fs::write("BENCH_control.json", &json).expect("write BENCH_control.json");
    println!("wrote BENCH_control.json (max_warm_ratio = {max_ratio:.3})");
}
