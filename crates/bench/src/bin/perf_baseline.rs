//! §VI-D-style performance baseline for the parallel CI-testing engine.
//!
//! Runs the PC causal search over a grid of (features × samples × threads)
//! on block-correlated synthetic data, records CI tests/second and the
//! speedup over the single-threaded path, verifies that every parallel run
//! is bit-identical to its sequential counterpart, and writes the grid to
//! `BENCH_runtime.json` at the repository root.
//!
//! `cargo run -p fsda-bench --release --bin perf_baseline`
//!
//! The 442-feature rows mirror the paper's 5GC dataset width; the paper
//! reports FS running times in the order of seconds on that width, which is
//! the regime this baseline tracks.

use fsda_causal::ci::FisherZ;
use fsda_causal::pc::{pc, PcConfig, PcResult};
use fsda_linalg::{Matrix, SeededRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Block-correlated linear-Gaussian data: every eighth variable starts a new
/// independent block; within a block each variable loads on its predecessor.
/// Cross-block edges die in the marginal round, within-block structure
/// exercises the deeper conditioning rounds.
fn block_chain_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    let mut m = Matrix::zeros(n, d);
    for r in 0..n {
        for c in 0..d {
            let v = if c % 8 == 0 {
                rng.normal(0.0, 1.0)
            } else {
                0.8 * m.get(r, c - 1) + rng.normal(0.0, 0.6)
            };
            m.set(r, c, v);
        }
    }
    m
}

struct Cell {
    features: usize,
    samples: usize,
    threads: usize,
    elapsed_s: f64,
    tests_run: usize,
    tests_per_sec: f64,
    speedup_vs_1: f64,
    identical_to_sequential: bool,
    edges: usize,
}

fn run_pc(test: &FisherZ, threads: usize) -> (PcResult, f64) {
    let config = PcConfig {
        alpha: 0.01,
        max_cond_size: 2,
        parallel: threads > 1,
        num_threads: Some(threads),
    };
    let start = Instant::now();
    let result = pc(test, &config).expect("PC run");
    (result, start.elapsed().as_secs_f64())
}

fn main() {
    let feature_grid = [64usize, 128, 442];
    let thread_grid = [1usize, 2, 4, 8];
    let samples_for = |d: usize| if d >= 442 { 256 } else { 512 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("perf_baseline: PC causal search, block-chain data, alpha=0.01, max_cond_size=2");
    println!("host parallelism: {cores} core(s)\n");
    println!(
        "{:>9} {:>8} {:>8} {:>10} {:>10} {:>14} {:>9} {:>10}",
        "features", "samples", "threads", "edges", "CI tests", "tests/sec", "time (s)", "speedup"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &d in &feature_grid {
        let n = samples_for(d);
        let data = block_chain_data(n, d, 42);
        let test = FisherZ::new(&data).expect("correlation matrix");
        let mut baseline: Option<(PcResult, f64)> = None;
        for &t in &thread_grid {
            let (result, elapsed) = run_pc(&test, t);
            let (seq, seq_time) = match &baseline {
                Some(b) => (&b.0, b.1),
                None => {
                    baseline = Some((result.clone(), elapsed));
                    let b = baseline.as_ref().unwrap();
                    (&b.0, b.1)
                }
            };
            let identical = result.graph == seq.graph
                && result.sepsets == seq.sepsets
                && result.tests_run == seq.tests_run;
            assert!(
                identical,
                "thread count {t} changed the learned CPDAG at d={d}"
            );
            let cell = Cell {
                features: d,
                samples: n,
                threads: t,
                elapsed_s: elapsed,
                tests_run: result.tests_run,
                tests_per_sec: result.tests_run as f64 / elapsed.max(1e-12),
                speedup_vs_1: seq_time / elapsed.max(1e-12),
                identical_to_sequential: identical,
                edges: result.graph.num_edges(),
            };
            println!(
                "{:>9} {:>8} {:>8} {:>10} {:>10} {:>14.0} {:>9.3} {:>9.2}x",
                cell.features,
                cell.samples,
                cell.threads,
                cell.edges,
                cell.tests_run,
                cell.tests_per_sec,
                cell.elapsed_s,
                cell.speedup_vs_1
            );
            cells.push(cell);
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"pc_causal_search_parallel\",");
    let _ = writeln!(
        json,
        "  \"description\": \"PC skeleton+orientation over block-chain data; \
         parallel rows are verified bit-identical to threads=1\","
    );
    let _ = writeln!(json, "  \"alpha\": 0.01,");
    let _ = writeln!(json, "  \"max_cond_size\": 2,");
    let _ = writeln!(json, "  \"host_parallelism\": {cores},");
    json.push_str("  \"cells\": [\n");
    for (k, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"features\": {}, \"samples\": {}, \"threads\": {}, \
             \"edges\": {}, \"ci_tests\": {}, \"tests_per_sec\": {:.1}, \
             \"elapsed_s\": {:.6}, \"speedup_vs_1\": {:.3}, \
             \"identical_to_sequential\": {}}}",
            c.features,
            c.samples,
            c.threads,
            c.edges,
            c.tests_run,
            c.tests_per_sec,
            c.elapsed_s,
            c.speedup_vs_1,
            c.identical_to_sequential
        );
        json.push_str(if k + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    std::fs::write(path, &json).expect("write BENCH_runtime.json");
    println!("\nwrote {path}");
}
