//! Performance baseline for the two serving-critical engines: the parallel
//! CI-testing causal search (§VI-D running-time regime) and the batched
//! GAN-reconstruction hot path.
//!
//! Runs the PC causal search over a grid of (features × samples × threads)
//! on block-correlated synthetic data, then times the FS+GAN adapter's
//! `reconstruct_batch` against the per-sample reference loop over a
//! (batch × threads) grid, verifying every parallel run bit-identical to
//! its reference. Writes both grids to `BENCH_runtime.json` at the
//! repository root.
//!
//! `cargo run -p fsda-bench --release --bin perf_baseline`
//!
//! Speedup numbers are only meaningful when the host actually has the
//! cores a row asks for: thread counts above `host_parallelism` are
//! skipped up front and recorded in `skipped_thread_counts` — a
//! 2-thread run on a 1-core host measures scheduler overhead, not the
//! engine, so it never produces a row at all.
//!
//! A `telemetry_overhead` section times `predict_batch` three ways on
//! the same trained pipeline — direct inherent call (uninstrumented),
//! registry call with telemetry disabled (the no-op recorder path), and
//! registry call with an aggregating [`fsda_telemetry::InMemoryRecorder`]
//! installed — and records both overheads against their budget (no-op
//! ≤ 2%, aggregating ≤ 5%).
//!
//! The 442-feature rows mirror the paper's 5GC dataset width; the paper
//! reports FS running times in the order of seconds on that width, which is
//! the regime this baseline tracks.

use fsda_causal::ci::FisherZ;
use fsda_causal::pc::{pc, PcConfig, PcResult};
use fsda_core::adapter::{AdapterConfig, Budget, FsGanAdapter};
use fsda_core::{DriftMitigator, GuardConfig, InferPrecision};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::Synth5gc;
use fsda_linalg::kernel::kernel_path;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::ClassifierKind;
use fsda_nn::layer::{Activation, Dense};
use fsda_nn::norm::BatchNorm1d;
use fsda_nn::{InferPlan, Sequential};
use std::fmt::Write as _;
use std::time::Instant;

/// Block-correlated linear-Gaussian data: every eighth variable starts a new
/// independent block; within a block each variable loads on its predecessor.
/// Cross-block edges die in the marginal round, within-block structure
/// exercises the deeper conditioning rounds.
fn block_chain_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    let mut m = Matrix::zeros(n, d);
    for r in 0..n {
        for c in 0..d {
            let v = if c % 8 == 0 {
                rng.normal(0.0, 1.0)
            } else {
                0.8 * m.get(r, c - 1) + rng.normal(0.0, 0.6)
            };
            m.set(r, c, v);
        }
    }
    m
}

/// Splits the canonical thread grid into (runnable, skipped) halves:
/// thread counts above the host's parallelism are skipped up front —
/// timing them would measure scheduler overhead, not the engine — and
/// the skipped counts are recorded alongside the grid so the JSON says
/// *why* those rows are absent.
fn partition_thread_grid(cores: usize) -> (Vec<usize>, Vec<usize>) {
    let grid = [1usize, 2, 4, 8];
    let (run, skip): (Vec<usize>, Vec<usize>) = grid.iter().partition(|&&t| t <= cores);
    (run, skip)
}

/// Formats a `usize` list as a JSON array.
fn usize_list_json(v: &[usize]) -> String {
    let items: Vec<String> = v.iter().map(|t| t.to_string()).collect();
    format!("[{}]", items.join(", "))
}

struct PcCell {
    features: usize,
    samples: usize,
    threads: usize,
    host_parallelism: usize,
    elapsed_s: f64,
    tests_run: usize,
    tests_per_sec: f64,
    speedup_vs_1: f64,
    identical_to_sequential: bool,
    edges: usize,
}

struct ReconCell {
    rows: usize,
    features: usize,
    threads: usize,
    host_parallelism: usize,
    scalar_elapsed_s: f64,
    batch_elapsed_s: f64,
    rows_per_sec: f64,
    speedup_vs_scalar: f64,
    identical_to_scalar: bool,
}

struct GuardCell {
    rows: usize,
    features: usize,
    unguarded_elapsed_s: f64,
    guarded_elapsed_s: f64,
    overhead_pct: f64,
    identical: bool,
}

struct DispatchCell {
    rows: usize,
    features: usize,
    direct_elapsed_s: f64,
    dyn_elapsed_s: f64,
    overhead_pct: f64,
    identical: bool,
}

struct TelemetryCell {
    rows: usize,
    features: usize,
    direct_elapsed_s: f64,
    noop_elapsed_s: f64,
    aggregating_elapsed_s: f64,
    noop_overhead_pct: f64,
    aggregating_overhead_pct: f64,
    identical: bool,
}

fn run_pc(test: &FisherZ, threads: usize) -> (PcResult, f64) {
    let config = PcConfig {
        alpha: 0.01,
        max_cond_size: 2,
        parallel: threads > 1,
        num_threads: Some(threads),
    };
    let start = Instant::now();
    let result = pc(test, &config).expect("PC run");
    (result, start.elapsed().as_secs_f64())
}

fn bench_pc(cores: usize) -> Vec<PcCell> {
    let feature_grid = [64usize, 128, 442];
    let (thread_grid, skipped) = partition_thread_grid(cores);
    let samples_for = |d: usize| if d >= 442 { 256 } else { 512 };

    println!("PC causal search, block-chain data, alpha=0.01, max_cond_size=2");
    if !skipped.is_empty() {
        println!(
            "  skipping oversubscribed thread counts {skipped:?} \
             (host parallelism {cores})"
        );
    }
    println!(
        "{:>9} {:>8} {:>8} {:>10} {:>10} {:>14} {:>9} {:>10}",
        "features", "samples", "threads", "edges", "CI tests", "tests/sec", "time (s)", "speedup"
    );

    let mut cells: Vec<PcCell> = Vec::new();
    for &d in &feature_grid {
        let n = samples_for(d);
        let data = block_chain_data(n, d, 42);
        let test = FisherZ::new(&data).expect("correlation matrix");
        let mut baseline: Option<(PcResult, f64)> = None;
        for &t in &thread_grid {
            let (result, elapsed) = run_pc(&test, t);
            let (seq, seq_time) = match &baseline {
                Some(b) => (&b.0, b.1),
                None => {
                    baseline = Some((result.clone(), elapsed));
                    let b = baseline.as_ref().unwrap();
                    (&b.0, b.1)
                }
            };
            let identical = result.graph == seq.graph
                && result.sepsets == seq.sepsets
                && result.tests_run == seq.tests_run;
            assert!(
                identical,
                "thread count {t} changed the learned CPDAG at d={d}"
            );
            let cell = PcCell {
                features: d,
                samples: n,
                threads: t,
                host_parallelism: cores,
                elapsed_s: elapsed,
                tests_run: result.tests_run,
                tests_per_sec: result.tests_run as f64 / elapsed.max(1e-12),
                speedup_vs_1: seq_time / elapsed.max(1e-12),
                identical_to_sequential: identical,
                edges: result.graph.num_edges(),
            };
            println!(
                "{:>9} {:>8} {:>8} {:>10} {:>10} {:>14.0} {:>9.3} {:>9.2}x",
                cell.features,
                cell.samples,
                cell.threads,
                cell.edges,
                cell.tests_run,
                cell.tests_per_sec,
                cell.elapsed_s,
                cell.speedup_vs_1
            );
            cells.push(cell);
        }
    }
    cells
}

/// Tiles the 5GC target-test features up to `rows` serving rows.
fn serving_batch(features: &Matrix, rows: usize) -> Matrix {
    let idx: Vec<usize> = (0..rows).map(|r| r % features.rows()).collect();
    features.select_rows(&idx)
}

/// Times the guarded serving entry point (`try_reconstruct_batch`, reject
/// policy) against the unguarded `reconstruct_batch` on clean batches: the
/// input scan is the only extra work, and on the clean fast path it must
/// stay under a few percent.
fn bench_guard_overhead(adapter: &FsGanAdapter, features: &Matrix) -> Vec<GuardCell> {
    let guard = GuardConfig::default();
    println!("\nguarded vs unguarded batch reconstruction (clean 5GC batches, reject policy)");
    println!(
        "{:>7} {:>9} {:>14} {:>14} {:>10}",
        "rows", "features", "unguarded (s)", "guarded (s)", "overhead"
    );
    let mut cells = Vec::new();
    for &rows in &[64usize, 256, 1024] {
        let x = serving_batch(features, rows);
        // Warm-up, then best-of-9: the scan is cheap enough that scheduler
        // noise on a single run would dominate the comparison.
        let _ = adapter.reconstruct_batch(&x, Some(1));
        let mut unguarded = f64::INFINITY;
        let mut guarded = f64::INFINITY;
        let mut identical = true;
        for _ in 0..9 {
            let start = Instant::now();
            let plain = adapter.reconstruct_batch(&x, Some(1));
            unguarded = unguarded.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let checked = adapter
                .try_reconstruct_batch(&x, Some(1), &guard)
                .expect("clean batch must pass the guard");
            guarded = guarded.min(start.elapsed().as_secs_f64());
            identical &= plain == checked;
        }
        assert!(identical, "guarded path changed the reconstruction");
        let cell = GuardCell {
            rows,
            features: x.cols(),
            unguarded_elapsed_s: unguarded,
            guarded_elapsed_s: guarded,
            overhead_pct: 100.0 * (guarded - unguarded) / unguarded.max(1e-12),
            identical,
        };
        println!(
            "{:>7} {:>9} {:>14.6} {:>14.6} {:>9.2}%",
            cell.rows,
            cell.features,
            cell.unguarded_elapsed_s,
            cell.guarded_elapsed_s,
            cell.overhead_pct
        );
        cells.push(cell);
    }
    cells
}

/// Times `predict_batch` through the `Box<dyn DriftMitigator>` registry
/// interface against the direct inherent call on the same adapter. Both
/// paths run the identical reconstruction + classification work; the only
/// difference is one virtual call per batch, so the overhead must vanish
/// into timing noise (the registry contract budgets 2%).
fn bench_dispatch_overhead(adapter: &FsGanAdapter, features: &Matrix) -> Vec<DispatchCell> {
    let virtual_adapter: &dyn DriftMitigator = adapter;
    println!("\nregistry (dyn DriftMitigator) vs direct predict_batch dispatch");
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>10}",
        "rows", "features", "direct (s)", "dyn (s)", "overhead"
    );
    let mut cells = Vec::new();
    for &rows in &[64usize, 256, 1024] {
        let x = serving_batch(features, rows);
        // A single vtable lookup per batch is far below scheduler noise on
        // any one call, so each timing sample amortizes an inner loop of
        // calls (~8 ms of work per sample) and the reported figure is the
        // best of 25 samples per path.
        let inner = (512 / rows).max(1);
        let _ = adapter.predict_batch(&x, Some(1));
        let mut direct = f64::INFINITY;
        let mut dynamic = f64::INFINITY;
        let mut identical = true;
        for _ in 0..25 {
            let start = Instant::now();
            let mut a = Vec::new();
            for _ in 0..inner {
                a = adapter.predict_batch(&x, Some(1));
            }
            direct = direct.min(start.elapsed().as_secs_f64() / inner as f64);
            let start = Instant::now();
            let mut b = Vec::new();
            for _ in 0..inner {
                b = virtual_adapter.predict_batch(&x, Some(1));
            }
            dynamic = dynamic.min(start.elapsed().as_secs_f64() / inner as f64);
            identical &= a == b;
        }
        assert!(identical, "registry dispatch changed the predictions");
        let cell = DispatchCell {
            rows,
            features: x.cols(),
            direct_elapsed_s: direct,
            dyn_elapsed_s: dynamic,
            overhead_pct: 100.0 * (dynamic - direct) / direct.max(1e-12),
            identical,
        };
        println!(
            "{:>7} {:>9} {:>12.6} {:>12.6} {:>9.2}%",
            cell.rows, cell.features, cell.direct_elapsed_s, cell.dyn_elapsed_s, cell.overhead_pct
        );
        cells.push(cell);
    }
    cells
}

/// Times `predict_batch` three ways on the same trained pipeline: the
/// direct inherent call (no instrumentation in its path), the registry
/// (`dyn DriftMitigator`) call with telemetry disabled — the no-op
/// recorder path, one relaxed atomic load per emission site — and the
/// registry call with an aggregating `InMemoryRecorder` installed. The
/// two overheads are measured against the direct call; the telemetry
/// contract budgets ≤ 2% for the no-op path and ≤ 5% for aggregation.
fn bench_telemetry_overhead(adapter: &FsGanAdapter, features: &Matrix) -> Vec<TelemetryCell> {
    use std::sync::Arc;

    let virtual_adapter: &dyn DriftMitigator = adapter;
    // One recorder across the whole bench: aggregation cost is what we
    // are measuring, and a long-lived recorder is the deployment shape.
    let recorder = Arc::new(fsda_telemetry::InMemoryRecorder::new());
    fsda_telemetry::clear_recorder();

    println!("\ntelemetry overhead on predict_batch (direct vs no-op vs aggregating)");
    println!(
        "{:>7} {:>9} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "rows", "features", "direct (s)", "no-op (s)", "aggreg (s)", "no-op", "aggreg"
    );
    let mut cells = Vec::new();
    for &rows in &[64usize, 256, 1024] {
        let x = serving_batch(features, rows);
        // Same amortization as the dispatch bench: each timing sample
        // runs an inner loop of calls and the reported figure is the
        // best of 25 samples per path, interleaved so drift (thermal,
        // scheduler) hits all three paths alike.
        let inner = (512 / rows).max(1);
        let _ = adapter.predict_batch(&x, Some(1));
        let mut direct = f64::INFINITY;
        let mut noop = f64::INFINITY;
        let mut aggregating = f64::INFINITY;
        let mut identical = true;
        for _ in 0..25 {
            let start = Instant::now();
            let mut a = Vec::new();
            for _ in 0..inner {
                a = adapter.predict_batch(&x, Some(1));
            }
            direct = direct.min(start.elapsed().as_secs_f64() / inner as f64);

            let start = Instant::now();
            let mut b = Vec::new();
            for _ in 0..inner {
                b = virtual_adapter.predict_batch(&x, Some(1));
            }
            noop = noop.min(start.elapsed().as_secs_f64() / inner as f64);

            fsda_telemetry::set_recorder(recorder.clone());
            let start = Instant::now();
            let mut c = Vec::new();
            for _ in 0..inner {
                c = virtual_adapter.predict_batch(&x, Some(1));
            }
            aggregating = aggregating.min(start.elapsed().as_secs_f64() / inner as f64);
            fsda_telemetry::clear_recorder();

            identical &= a == b && b == c;
        }
        assert!(identical, "telemetry changed the predictions");
        let cell = TelemetryCell {
            rows,
            features: x.cols(),
            direct_elapsed_s: direct,
            noop_elapsed_s: noop,
            aggregating_elapsed_s: aggregating,
            noop_overhead_pct: 100.0 * (noop - direct) / direct.max(1e-12),
            aggregating_overhead_pct: 100.0 * (aggregating - direct) / direct.max(1e-12),
            identical,
        };
        println!(
            "{:>7} {:>9} {:>12.6} {:>12.6} {:>12.6} {:>8.2}% {:>8.2}%",
            cell.rows,
            cell.features,
            cell.direct_elapsed_s,
            cell.noop_elapsed_s,
            cell.aggregating_elapsed_s,
            cell.noop_overhead_pct,
            cell.aggregating_overhead_pct
        );
        cells.push(cell);
    }
    // Sanity: the aggregating runs really did record through the spans.
    let snapshot = recorder.snapshot_now();
    assert!(
        snapshot.counter("pipeline.predict.fs_gan") > 0,
        "aggregating runs must have recorded predict spans"
    );
    cells
}

struct KernelCell {
    rows: usize,
    in_dim: usize,
    out_dim: usize,
    naive_elapsed_s: f64,
    ikj_elapsed_s: f64,
    f64_elapsed_s: f64,
    f32_elapsed_s: f64,
    naive_rows_per_sec: f64,
    ikj_rows_per_sec: f64,
    f64_rows_per_sec: f64,
    f32_rows_per_sec: f64,
    f64_speedup_vs_naive: f64,
    f64_speedup_vs_ikj: f64,
    f32_speedup_vs_naive: f64,
    f64_identical_to_naive: bool,
    f32_max_abs_err: f64,
}

struct DivergenceCell {
    rows: usize,
    features: usize,
    max_abs_err: f64,
    max_rel_err: f64,
    prediction_flips: usize,
    flip_rate: f64,
}

/// Times the compiled [`InferPlan`] forward pass four ways on a
/// representative reconstruction-sized network (Dense–BN–ReLU ×2 with a
/// tanh head): the textbook naive executor (`matmul_textbook`'s `ijk`
/// dot-product loop with per-call weight materialization and separate
/// bias/activation passes — the classic GEMM baseline), the legacy `ikj`
/// executor (`matmul_naive`, the workspace's partially-optimized
/// pre-kernel `matmul`, reported for transparency), the blocked `f64`
/// kernel path (verified bit-identical to both references), and the
/// blocked `f32` path (divergence recorded, not gated here — see the
/// `f32_divergence` section for the end-to-end envelope).
fn bench_kernels() -> Vec<KernelCell> {
    let (in_dim, hidden, out_dim) = (64usize, 256usize, 32usize);
    let mut rng = SeededRng::new(7);
    let mut net = Sequential::new();
    net.push(Dense::new(in_dim, hidden, &mut rng));
    net.push(BatchNorm1d::new(hidden));
    net.push(Activation::relu());
    net.push(Dense::new(hidden, hidden, &mut rng));
    net.push(BatchNorm1d::new(hidden));
    net.push(Activation::relu());
    net.push(Dense::new(hidden, out_dim, &mut rng));
    net.push(Activation::tanh());
    // Warm the batch-norm running statistics so the Norm stages apply a
    // non-trivial affine map, like a trained generator.
    let warm = Matrix::from_fn(128, in_dim, |_, _| rng.normal(0.0, 1.0));
    for _ in 0..4 {
        let _ = net.forward(&warm, true);
    }
    let plan = InferPlan::compile(&net).expect("plan compiles");

    println!(
        "\ncompiled inference plan: textbook naive vs legacy ikj vs blocked f64 vs \
         blocked f32 (kernel path: {})",
        kernel_path().label()
    );
    println!(
        "{:>7} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "rows", "dims", "naive (s)", "ikj (s)", "f64 (s)", "f32 (s)", "f64 spd", "f32 spd"
    );

    let mut cells = Vec::new();
    for &rows in &[64usize, 256, 1024] {
        let x = Matrix::from_fn(rows, in_dim, |r, c| {
            ((r * 31 + c * 7) % 17) as f64 / 8.5 - 1.0
        });
        // Amortize small batches and take the best of 9 samples per path,
        // interleaved so scheduler drift hits all four alike.
        let inner = (1024 / rows).max(1);
        let _ = plan.infer(&x, InferPrecision::F64Exact);
        let (mut naive, mut ikj, mut f64_t, mut f32_t) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut identical = true;
        let mut max_abs_err = 0.0f64;
        for _ in 0..9 {
            let start = Instant::now();
            let mut a = Matrix::zeros(0, 0);
            for _ in 0..inner {
                a = plan.infer_textbook(&x);
            }
            naive = naive.min(start.elapsed().as_secs_f64() / inner as f64);

            let start = Instant::now();
            let mut r = Matrix::zeros(0, 0);
            for _ in 0..inner {
                r = plan.infer_reference(&x);
            }
            ikj = ikj.min(start.elapsed().as_secs_f64() / inner as f64);

            let start = Instant::now();
            let mut b = Matrix::zeros(0, 0);
            for _ in 0..inner {
                b = plan.infer(&x, InferPrecision::F64Exact);
            }
            f64_t = f64_t.min(start.elapsed().as_secs_f64() / inner as f64);

            let start = Instant::now();
            let mut c = Matrix::zeros(0, 0);
            for _ in 0..inner {
                c = plan.infer(&x, InferPrecision::F32Fast);
            }
            f32_t = f32_t.min(start.elapsed().as_secs_f64() / inner as f64);

            identical &= a == b && r == b;
            for r in 0..b.rows() {
                for (x64, x32) in b.row(r).iter().zip(c.row(r)) {
                    max_abs_err = max_abs_err.max((x64 - x32).abs());
                }
            }
        }
        assert!(
            identical,
            "blocked f64 plan diverged from the naive reference"
        );
        let cell = KernelCell {
            rows,
            in_dim,
            out_dim,
            naive_elapsed_s: naive,
            ikj_elapsed_s: ikj,
            f64_elapsed_s: f64_t,
            f32_elapsed_s: f32_t,
            naive_rows_per_sec: rows as f64 / naive.max(1e-12),
            ikj_rows_per_sec: rows as f64 / ikj.max(1e-12),
            f64_rows_per_sec: rows as f64 / f64_t.max(1e-12),
            f32_rows_per_sec: rows as f64 / f32_t.max(1e-12),
            f64_speedup_vs_naive: naive / f64_t.max(1e-12),
            f64_speedup_vs_ikj: ikj / f64_t.max(1e-12),
            f32_speedup_vs_naive: naive / f32_t.max(1e-12),
            f64_identical_to_naive: identical,
            f32_max_abs_err: max_abs_err,
        };
        println!(
            "{:>7} {:>10} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>8.2}x {:>8.2}x",
            cell.rows,
            format!("{in_dim}-{hidden}-{out_dim}"),
            cell.naive_elapsed_s,
            cell.ikj_elapsed_s,
            cell.f64_elapsed_s,
            cell.f32_elapsed_s,
            cell.f64_speedup_vs_naive,
            cell.f32_speedup_vs_naive
        );
        cells.push(cell);
    }
    cells
}

/// Measures the end-to-end `F32Fast` divergence envelope on the trained
/// FS+GAN pipeline: reconstructed-feature error against the bit-exact
/// `F64Exact` path, and the hard-prediction flip rate (which must be zero
/// on the well-separated 5GC fixture).
fn bench_f32_divergence(adapter: &FsGanAdapter, features: &Matrix) -> Vec<DivergenceCell> {
    println!("\nf32 fast-path divergence vs the bit-exact f64 serving path");
    println!(
        "{:>7} {:>9} {:>13} {:>13} {:>7} {:>10}",
        "rows", "features", "max abs err", "max rel err", "flips", "flip rate"
    );
    let mut cells = Vec::new();
    for &rows in &[256usize, 1024] {
        let x = serving_batch(features, rows);
        let exact = adapter.reconstruct_batch_with(&x, Some(1), InferPrecision::F64Exact);
        let fast = adapter.reconstruct_batch_with(&x, Some(1), InferPrecision::F32Fast);
        let mut max_abs_err = 0.0f64;
        let mut max_rel_err = 0.0f64;
        for r in 0..exact.rows() {
            for (a, b) in exact.row(r).iter().zip(fast.row(r)) {
                let abs = (a - b).abs();
                max_abs_err = max_abs_err.max(abs);
                max_rel_err = max_rel_err.max(abs / a.abs().max(1e-9));
            }
        }
        let pred_exact = adapter.predict_batch_with(&x, Some(1), InferPrecision::F64Exact);
        let pred_fast = adapter.predict_batch_with(&x, Some(1), InferPrecision::F32Fast);
        let flips = pred_exact
            .iter()
            .zip(&pred_fast)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(
            flips, 0,
            "f32 fast path flipped {flips} predictions at rows={rows}"
        );
        let cell = DivergenceCell {
            rows,
            features: x.cols(),
            max_abs_err,
            max_rel_err,
            prediction_flips: flips,
            flip_rate: flips as f64 / rows as f64,
        };
        println!(
            "{:>7} {:>9} {:>13.3e} {:>13.3e} {:>7} {:>10.4}",
            cell.rows,
            cell.features,
            cell.max_abs_err,
            cell.max_rel_err,
            cell.prediction_flips,
            cell.flip_rate
        );
        cells.push(cell);
    }
    cells
}

type ReconBenches = (
    Vec<ReconCell>,
    Vec<GuardCell>,
    Vec<DispatchCell>,
    Vec<TelemetryCell>,
    Vec<DivergenceCell>,
);

fn bench_reconstruction(cores: usize) -> ReconBenches {
    let bundle = Synth5gc::small().generate(42).expect("5GC bundle");
    let mut rng = SeededRng::new(43);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).expect("shots");
    let cfg = AdapterConfig {
        classifier: ClassifierKind::RandomForest,
        budget: Budget::quick(),
        ..AdapterConfig::default()
    };
    let adapter =
        FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 44).expect("FS+GAN adapter");

    let (thread_grid, skipped) = partition_thread_grid(cores);
    println!("\nbatched GAN reconstruction (FS+GAN serving path), 5GC-small pipeline");
    if !skipped.is_empty() {
        println!(
            "  skipping oversubscribed thread counts {skipped:?} \
             (host parallelism {cores})"
        );
    }
    println!(
        "{:>7} {:>9} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "rows", "features", "threads", "scalar (s)", "batch (s)", "rows/sec", "speedup"
    );

    let mut cells: Vec<ReconCell> = Vec::new();
    for &rows in &[64usize, 256, 1024] {
        let x = serving_batch(bundle.target_test.features(), rows);
        let start = Instant::now();
        let scalar = adapter.reconstruct_scalar(&x);
        let scalar_elapsed = start.elapsed().as_secs_f64();
        for &t in &thread_grid {
            let start = Instant::now();
            let batch = adapter.reconstruct_batch(&x, Some(t));
            let batch_elapsed = start.elapsed().as_secs_f64();
            let identical = batch == scalar;
            assert!(
                identical,
                "reconstruct_batch diverged from the scalar loop at rows={rows}, threads={t}"
            );
            let cell = ReconCell {
                rows,
                features: x.cols(),
                threads: t,
                host_parallelism: cores,
                scalar_elapsed_s: scalar_elapsed,
                batch_elapsed_s: batch_elapsed,
                rows_per_sec: rows as f64 / batch_elapsed.max(1e-12),
                speedup_vs_scalar: scalar_elapsed / batch_elapsed.max(1e-12),
                identical_to_scalar: identical,
            };
            println!(
                "{:>7} {:>9} {:>8} {:>12.4} {:>12.4} {:>12.0} {:>11.2}x",
                cell.rows,
                cell.features,
                cell.threads,
                cell.scalar_elapsed_s,
                cell.batch_elapsed_s,
                cell.rows_per_sec,
                cell.speedup_vs_scalar
            );
            cells.push(cell);
        }
    }
    let guard_cells = bench_guard_overhead(&adapter, bundle.target_test.features());
    let dispatch_cells = bench_dispatch_overhead(&adapter, bundle.target_test.features());
    let telemetry_cells = bench_telemetry_overhead(&adapter, bundle.target_test.features());
    let divergence_cells = bench_f32_divergence(&adapter, bundle.target_test.features());
    (
        cells,
        guard_cells,
        dispatch_cells,
        telemetry_cells,
        divergence_cells,
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("perf_baseline: host parallelism {cores} core(s)\n");

    let (thread_grid, skipped_threads) = partition_thread_grid(cores);
    let pc_cells = bench_pc(cores);
    let kernel_cells = bench_kernels();
    let (recon_cells, guard_cells, dispatch_cells, telemetry_cells, divergence_cells) =
        bench_reconstruction(cores);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {cores},");
    let _ = writeln!(
        json,
        "  \"thread_grid\": {},",
        usize_list_json(&thread_grid)
    );
    let _ = writeln!(
        json,
        "  \"skipped_thread_counts\": {},",
        usize_list_json(&skipped_threads)
    );
    let _ = writeln!(
        json,
        "  \"note\": \"thread counts above host_parallelism are skipped up \
         front (listed in skipped_thread_counts): timing them would \
         measure scheduler overhead, not the engine\","
    );

    let _ = writeln!(json, "  \"pc_causal_search\": {{");
    let _ = writeln!(
        json,
        "    \"description\": \"PC skeleton+orientation over block-chain data; \
         parallel rows are verified bit-identical to threads=1\","
    );
    let _ = writeln!(json, "    \"alpha\": 0.01,");
    let _ = writeln!(json, "    \"max_cond_size\": 2,");
    json.push_str("    \"cells\": [\n");
    for (k, c) in pc_cells.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"features\": {}, \"samples\": {}, \"threads\": {}, \
             \"host_parallelism\": {}, \
             \"edges\": {}, \"ci_tests\": {}, \"tests_per_sec\": {:.1}, \
             \"elapsed_s\": {:.6}, \"speedup_vs_1\": {:.3}, \
             \"identical_to_sequential\": {}}}",
            c.features,
            c.samples,
            c.threads,
            c.host_parallelism,
            c.edges,
            c.tests_run,
            c.tests_per_sec,
            c.elapsed_s,
            c.speedup_vs_1,
            c.identical_to_sequential
        );
        json.push_str(if k + 1 < pc_cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n");

    let _ = writeln!(json, "  \"reconstruction_kernels\": {{");
    let _ = writeln!(
        json,
        "    \"description\": \"compiled InferPlan forward pass on a \
         reconstruction-sized Dense-BN-ReLU net: textbook naive executor \
         (ijk dot-product triple loop, per-call weight materialization, \
         separate bias/activation passes — the classic GEMM baseline) vs \
         the legacy ikj loop (the partially-optimized pre-kernel matmul, \
         reported for transparency) vs the blocked f64 kernel path \
         (verified bit-identical to both) vs the blocked f32 path, best \
         of 9 amortized samples\","
    );
    let _ = writeln!(json, "    \"kernel_path\": \"{}\",", kernel_path().label());
    let _ = writeln!(json, "    \"f64_target_speedup\": 1.5,");
    let _ = writeln!(json, "    \"f32_target_speedup\": 2.5,");
    json.push_str("    \"cells\": [\n");
    for (k, c) in kernel_cells.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"rows\": {}, \"in_dim\": {}, \"out_dim\": {}, \
             \"naive_elapsed_s\": {:.6}, \"ikj_elapsed_s\": {:.6}, \
             \"f64_elapsed_s\": {:.6}, \
             \"f32_elapsed_s\": {:.6}, \"naive_rows_per_sec\": {:.1}, \
             \"ikj_rows_per_sec\": {:.1}, \
             \"f64_rows_per_sec\": {:.1}, \"f32_rows_per_sec\": {:.1}, \
             \"f64_speedup_vs_naive\": {:.3}, \"f64_speedup_vs_ikj\": {:.3}, \
             \"f32_speedup_vs_naive\": {:.3}, \
             \"f64_identical_to_naive\": {}, \"f32_max_abs_err\": {:.3e}}}",
            c.rows,
            c.in_dim,
            c.out_dim,
            c.naive_elapsed_s,
            c.ikj_elapsed_s,
            c.f64_elapsed_s,
            c.f32_elapsed_s,
            c.naive_rows_per_sec,
            c.ikj_rows_per_sec,
            c.f64_rows_per_sec,
            c.f32_rows_per_sec,
            c.f64_speedup_vs_naive,
            c.f64_speedup_vs_ikj,
            c.f32_speedup_vs_naive,
            c.f64_identical_to_naive,
            c.f32_max_abs_err
        );
        json.push_str(if k + 1 < kernel_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");

    let _ = writeln!(json, "  \"f32_divergence\": {{");
    let _ = writeln!(
        json,
        "    \"description\": \"end-to-end F32Fast divergence on the trained \
         FS+GAN serving path: reconstructed-feature error against the \
         bit-exact F64Exact path, and the hard-prediction flip rate \
         (asserted zero on the 5GC fixture)\","
    );
    json.push_str("    \"cells\": [\n");
    for (k, c) in divergence_cells.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"rows\": {}, \"features\": {}, \
             \"max_abs_err\": {:.3e}, \"max_rel_err\": {:.3e}, \
             \"prediction_flips\": {}, \"flip_rate\": {:.4}}}",
            c.rows, c.features, c.max_abs_err, c.max_rel_err, c.prediction_flips, c.flip_rate
        );
        json.push_str(if k + 1 < divergence_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");

    let _ = writeln!(json, "  \"batched_reconstruction\": {{");
    let _ = writeln!(
        json,
        "    \"description\": \"FS+GAN reconstruct_batch vs the per-sample \
         scalar loop on a trained 5GC-small pipeline; every batched run is \
         verified bit-identical to the scalar reference\","
    );
    json.push_str("    \"cells\": [\n");
    for (k, c) in recon_cells.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"rows\": {}, \"features\": {}, \"threads\": {}, \
             \"host_parallelism\": {}, \
             \"scalar_elapsed_s\": {:.6}, \"batch_elapsed_s\": {:.6}, \
             \"rows_per_sec\": {:.1}, \"speedup_vs_scalar\": {:.3}, \
             \"identical_to_scalar\": {}}}",
            c.rows,
            c.features,
            c.threads,
            c.host_parallelism,
            c.scalar_elapsed_s,
            c.batch_elapsed_s,
            c.rows_per_sec,
            c.speedup_vs_scalar,
            c.identical_to_scalar
        );
        json.push_str(if k + 1 < recon_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");

    let _ = writeln!(json, "  \"guarded_serving_overhead\": {{");
    let _ = writeln!(
        json,
        "    \"description\": \"try_reconstruct_batch (reject policy) vs \
         reconstruct_batch on clean single-threaded batches, best of 9; \
         the guarded path is verified bit-identical and its overhead is \
         the cost of the input scan\","
    );
    let _ = writeln!(json, "    \"target_overhead_pct\": 5.0,");
    json.push_str("    \"cells\": [\n");
    for (k, c) in guard_cells.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"rows\": {}, \"features\": {}, \
             \"unguarded_elapsed_s\": {:.6}, \"guarded_elapsed_s\": {:.6}, \
             \"overhead_pct\": {:.2}, \"identical\": {}}}",
            c.rows,
            c.features,
            c.unguarded_elapsed_s,
            c.guarded_elapsed_s,
            c.overhead_pct,
            c.identical
        );
        json.push_str(if k + 1 < guard_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");

    let _ = writeln!(json, "  \"pipeline_dispatch_overhead\": {{");
    let _ = writeln!(
        json,
        "    \"description\": \"predict_batch through the Box<dyn \
         DriftMitigator> registry interface vs the direct inherent call on \
         the same trained FS+GAN pipeline, best of 25 amortized samples; \
         one virtual call per batch, verified bit-identical\","
    );
    let _ = writeln!(json, "    \"target_overhead_pct\": 2.0,");
    json.push_str("    \"cells\": [\n");
    for (k, c) in dispatch_cells.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"rows\": {}, \"features\": {}, \
             \"direct_elapsed_s\": {:.6}, \"dyn_elapsed_s\": {:.6}, \
             \"overhead_pct\": {:.2}, \"identical\": {}}}",
            c.rows, c.features, c.direct_elapsed_s, c.dyn_elapsed_s, c.overhead_pct, c.identical
        );
        json.push_str(if k + 1 < dispatch_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");

    let _ = writeln!(json, "  \"telemetry_overhead\": {{");
    let _ = writeln!(
        json,
        "    \"description\": \"predict_batch timed three ways on the same \
         trained FS+GAN pipeline, best of 25 amortized samples: direct \
         inherent call (uninstrumented), registry call with telemetry \
         disabled (no-op path, one relaxed atomic load per emission \
         site), and registry call with an aggregating InMemoryRecorder \
         installed; all three verified bit-identical\","
    );
    let _ = writeln!(json, "    \"noop_target_overhead_pct\": 2.0,");
    let _ = writeln!(json, "    \"aggregating_target_overhead_pct\": 5.0,");
    json.push_str("    \"cells\": [\n");
    for (k, c) in telemetry_cells.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"rows\": {}, \"features\": {}, \
             \"direct_elapsed_s\": {:.6}, \"noop_elapsed_s\": {:.6}, \
             \"aggregating_elapsed_s\": {:.6}, \
             \"noop_overhead_pct\": {:.2}, \
             \"aggregating_overhead_pct\": {:.2}, \"identical\": {}}}",
            c.rows,
            c.features,
            c.direct_elapsed_s,
            c.noop_elapsed_s,
            c.aggregating_elapsed_s,
            c.noop_overhead_pct,
            c.aggregating_overhead_pct,
            c.identical
        );
        json.push_str(if k + 1 < telemetry_cells.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    std::fs::write(path, &json).expect("write BENCH_runtime.json");
    println!("\nwrote {path}");
}
