//! Scenario fuzzing sweep: hundreds of generated drift scenarios, each
//! scored against its recorded ground truth.
//!
//! The sweep builds a grid of `fsda_data::scenario` specs spanning
//! topology family, feature count, intervention-set size, strength tier,
//! drift schedule, label shift, and adversarially-correlated variant
//! features, then fans the cells across the `fsda_linalg::par` pool. Every
//! cell is a pure function of its spec (per-cell derived seeds, inner
//! generation and prediction single-threaded), so the sweep is
//! **bit-identical at any thread count**; `--verify-determinism` re-runs a
//! prefix of cells sequentially and asserts exact equality.
//!
//! Per cell and registry method, the runner records end-to-end macro-F1
//! on the drifted test set plus — for feature-separating methods — FS
//! recall/precision against the scenario's known intervention set. CI
//! gates on the easy cells (strong, abrupt, no label shift, no
//! adversarial coupling): mean FS recall must stay >= 0.9.
//!
//! Writes `BENCH_scenarios.json` at the repository root and prints a
//! summary table.
//!
//! `cargo run -p fsda-bench --release --bin scenario_sweep [-- --quick]
//!  [--threads N] [--verify-determinism]`

use fsda_core::adapter::AdapterConfig;
use fsda_core::sweep::run_scenario_cell;
use fsda_core::Method;
use fsda_data::fewshot::few_shot_subset;
use fsda_data::scenario::{ScenarioSpec, Schedule, Topology};
use fsda_linalg::par::{par_map, resolve_threads};
use fsda_linalg::SeededRng;
use fsda_models::ClassifierKind;
use std::fmt::Write as _;
use std::time::Instant;

/// Registry methods every cell runs: the paper's FS front-end and the
/// unmitigated source-only baseline it must beat.
const METHODS: [Method; 2] = [Method::Fs, Method::SrcOnly];

/// Easy-cell threshold on the strength axis (strong tier).
const EASY_STRENGTH: f64 = 2.0;

/// CI gate: mean FS recall over easy cells.
const TARGET_EASY_RECALL: f64 = 0.9;

/// One method's scores on one cell.
#[derive(Clone, PartialEq)]
struct MethodScore {
    slug: &'static str,
    macro_f1: f64,
    fs_precision: Option<f64>,
    fs_recall: Option<f64>,
    detected: Option<usize>,
}

/// One completed sweep cell.
#[derive(Clone, PartialEq)]
struct CellRecord {
    id: usize,
    spec: ScenarioSpec,
    easy: bool,
    scores: Vec<MethodScore>,
}

/// Splitmix64 finalizer for per-cell seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn is_easy(spec: &ScenarioSpec) -> bool {
    spec.strength >= EASY_STRENGTH
        && spec.schedule == Schedule::Abrupt
        && spec.adversarial == 0
        && spec.label_shift == 0.0
}

/// The sweep grid. Full mode is a cartesian core of
/// topology x features x variant x strength x schedule x label-shift plus
/// adversarial and seasonal extension blocks (>= 200 cells); quick mode is
/// a ~20-cell diagonal with at least one cell per axis value.
fn build_grid(quick: bool) -> Vec<ScenarioSpec> {
    let mut grid = Vec::new();
    if quick {
        for topology in Topology::ALL {
            for strength in [2.4, 0.5] {
                grid.push(
                    ScenarioSpec::default()
                        .with_topology(topology)
                        .with_strength(strength),
                );
            }
            grid.push(
                ScenarioSpec::default()
                    .with_topology(topology)
                    .with_schedule(Schedule::Gradual { windows: 4 }),
            );
            grid.push(
                ScenarioSpec::default()
                    .with_topology(topology)
                    .with_label_shift(0.3),
            );
        }
        grid.push(ScenarioSpec::default().with_variant(8).with_adversarial(2));
        grid.push(
            ScenarioSpec::default()
                .with_topology(Topology::Chain)
                .with_variant(8)
                .with_adversarial(2),
        );
        grid.push(ScenarioSpec::default().with_schedule(Schedule::Seasonal { period: 5 }));
        grid.push(
            ScenarioSpec::default()
                .with_topology(Topology::Mixed)
                .with_schedule(Schedule::Seasonal { period: 5 }),
        );
    } else {
        for topology in Topology::ALL {
            for features in [24, 48] {
                for variant in [4, 8] {
                    for strength in [2.4, 1.0, 0.5] {
                        for schedule in [Schedule::Abrupt, Schedule::Gradual { windows: 4 }] {
                            for label_shift in [0.0, 0.3] {
                                grid.push(
                                    ScenarioSpec::default()
                                        .with_topology(topology)
                                        .with_features(features)
                                        .with_variant(variant)
                                        .with_strength(strength)
                                        .with_schedule(schedule)
                                        .with_label_shift(label_shift),
                                );
                            }
                        }
                    }
                }
                // Adversarially-coupled variants, on the otherwise-easy
                // corner so their effect is isolated.
                for variant in [4, 8] {
                    grid.push(
                        ScenarioSpec::default()
                            .with_topology(topology)
                            .with_features(features)
                            .with_variant(variant)
                            .with_adversarial(2),
                    );
                }
            }
            // Recurring/seasonal drift block.
            grid.push(
                ScenarioSpec::default()
                    .with_topology(topology)
                    .with_schedule(Schedule::Seasonal { period: 5 }),
            );
        }
    }
    // Per-cell seeds derive from the cell index so every cell is a pure,
    // repeatable function of the grid position.
    for (i, spec) in grid.iter_mut().enumerate() {
        *spec = spec.clone().with_seed(mix(0x5CE7_A210 + i as u64));
    }
    grid
}

/// Runs one cell: compile, generate (single-threaded — parallelism lives
/// at the cell fan-out), draw shots, run every method.
fn run_cell(id: usize, spec: &ScenarioSpec) -> CellRecord {
    let compiled = spec.compile().expect("grid specs are valid");
    let data = compiled.generate(Some(1)).expect("scenario generation");
    let mut shot_rng = SeededRng::new(mix(spec.seed ^ 0x5807));
    let shots =
        few_shot_subset(&data.target_pool, spec.shots, &mut shot_rng).expect("few-shot draw");
    // Keep the cell single-threaded end to end: the FS search and the
    // forest run sequentially so outer fan-out stays oversubscription-free
    // and the cell is a pure function of the spec.
    let mut config = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    config.fs.parallel = false;
    config.budget.threads = 1;
    let scores = METHODS
        .iter()
        .map(|&method| {
            let out = run_scenario_cell(
                method,
                &data.source_train,
                &shots,
                &data.target_test,
                &data.ground_truth_variant,
                &config,
                mix(spec.seed ^ method as u64),
            )
            .expect("cell run");
            MethodScore {
                slug: method.slug(),
                macro_f1: out.macro_f1,
                fs_precision: out.recovery.map(|r| r.precision),
                fs_recall: out.recovery.map(|r| r.recall),
                detected: out.detected_variant.map(|v| v.len()),
            }
        })
        .collect();
    CellRecord {
        id,
        spec: spec.clone(),
        easy: is_easy(spec),
        scores,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn opt_json(v: Option<f64>) -> String {
    v.map_or("null".into(), |x| format!("{x:.6}"))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verify = args.iter().any(|a| a == "--verify-determinism");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let threads = resolve_threads(threads);
    let grid = build_grid(quick);
    let mode = if quick { "quick" } else { "full" };
    println!(
        "scenario_sweep ({mode}): {} cells x {} methods on {threads} thread(s)\n",
        grid.len(),
        METHODS.len()
    );

    let start = Instant::now();
    let cells: Vec<CellRecord> = par_map(threads, &grid, run_cell);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "swept {} cells in {elapsed:.1}s ({:.2}s/cell)\n",
        cells.len(),
        elapsed / cells.len().max(1) as f64
    );

    // Determinism spot-check: the same prefix of cells, strictly
    // sequential, must be bit-identical to the pooled run.
    let checked = if verify {
        let n = cells.len().min(8);
        let again: Vec<CellRecord> = par_map(1, &grid[..n], run_cell);
        for (a, b) in cells[..n].iter().zip(&again) {
            assert!(
                a == b,
                "cell {} differs between {threads}-thread and sequential runs",
                a.id
            );
        }
        println!("determinism spot-check: {n} cells bit-identical at 1 vs {threads} thread(s)\n");
        n
    } else {
        0
    };

    // Summary table: FS recall/precision and per-method F1 by topology x
    // strength tier.
    println!(
        "{:<9} {:>9} {:>6} {:>10} {:>10} {:>9} {:>9}",
        "topology", "strength", "cells", "fs_recall", "fs_prec", "f1(fs)", "f1(src)"
    );
    for topology in Topology::ALL {
        for strength in [2.4, 1.0, 0.5] {
            let group: Vec<&CellRecord> = cells
                .iter()
                .filter(|c| c.spec.topology == topology && c.spec.strength == strength)
                .collect();
            if group.is_empty() {
                continue;
            }
            let col = |f: &dyn Fn(&CellRecord) -> Option<f64>| {
                mean(&group.iter().filter_map(|c| f(c)).collect::<Vec<f64>>())
            };
            println!(
                "{:<9} {:>9.1} {:>6} {:>10.3} {:>10.3} {:>9.3} {:>9.3}",
                topology.to_string(),
                strength,
                group.len(),
                col(&|c| c.scores[0].fs_recall),
                col(&|c| c.scores[0].fs_precision),
                col(&|c| Some(c.scores[0].macro_f1)),
                col(&|c| Some(c.scores[1].macro_f1)),
            );
        }
    }

    let easy: Vec<&CellRecord> = cells.iter().filter(|c| c.easy).collect();
    let easy_recall = mean(
        &easy
            .iter()
            .filter_map(|c| c.scores[0].fs_recall)
            .collect::<Vec<f64>>(),
    );
    let easy_precision = mean(
        &easy
            .iter()
            .filter_map(|c| c.scores[0].fs_precision)
            .collect::<Vec<f64>>(),
    );
    println!(
        "\neasy cells (strength >= {EASY_STRENGTH}, abrupt, no label shift, no adversarial): \
         {} of {} | mean FS recall {easy_recall:.3} (target >= {TARGET_EASY_RECALL}), \
         precision {easy_precision:.3}",
        easy.len(),
        cells.len()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(json, "  \"elapsed_s\": {elapsed:.2},");
    let _ = writeln!(
        json,
        "  \"methods\": [{}],",
        METHODS
            .iter()
            .map(|m| format!("\"{}\"", m.slug()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"description\": \"drift-scenario fuzzing sweep over the SCM \
         generators: every cell compiles a declarative scenario spec with \
         recorded ground-truth intervention targets, fits each method on \
         the generated source + few shots, and scores end-to-end macro-F1 \
         plus FS recall/precision against the known target set; cells are \
         pure functions of their spec and the sweep is bit-identical at \
         any thread count\","
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": {},", c.id);
        let _ = writeln!(json, "      \"topology\": \"{}\",", c.spec.topology);
        let _ = writeln!(json, "      \"features\": {},", c.spec.features);
        let _ = writeln!(json, "      \"variant\": {},", c.spec.variant);
        let _ = writeln!(json, "      \"adversarial\": {},", c.spec.adversarial);
        let _ = writeln!(json, "      \"strength\": {},", c.spec.strength);
        let _ = writeln!(json, "      \"schedule\": \"{}\",", c.spec.schedule);
        let _ = writeln!(json, "      \"label_shift\": {},", c.spec.label_shift);
        let _ = writeln!(json, "      \"seed\": {},", c.spec.seed);
        let _ = writeln!(json, "      \"easy\": {},", c.easy);
        let _ = writeln!(json, "      \"methods\": {{");
        for (j, s) in c.scores.iter().enumerate() {
            let _ = writeln!(
                json,
                "        \"{}\": {{\"macro_f1\": {:.6}, \"fs_precision\": {}, \
                 \"fs_recall\": {}, \"detected\": {}}}{}",
                s.slug,
                s.macro_f1,
                opt_json(s.fs_precision),
                opt_json(s.fs_recall),
                s.detected.map_or("null".into(), |n| n.to_string()),
                if j + 1 < c.scores.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      }}");
        let _ = writeln!(json, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(json, "    \"num_cells\": {},", cells.len());
    let _ = writeln!(json, "    \"easy_cells\": {},", easy.len());
    let _ = writeln!(json, "    \"mean_easy_fs_recall\": {easy_recall:.6},");
    let _ = writeln!(json, "    \"mean_easy_fs_precision\": {easy_precision:.6},");
    let _ = writeln!(json, "    \"target_easy_fs_recall\": {TARGET_EASY_RECALL},");
    for (j, &m) in METHODS.iter().enumerate() {
        let f1s: Vec<f64> = cells.iter().map(|c| c.scores[j].macro_f1).collect();
        let _ = writeln!(
            json,
            "    \"mean_macro_f1_{}\": {:.6},",
            m.slug(),
            mean(&f1s)
        );
    }
    let _ = writeln!(json, "    \"determinism_checked_cells\": {checked},");
    let _ = writeln!(
        json,
        "    \"determinism_bit_identical\": {}",
        if verify { "true" } else { "null" }
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenarios.json");
    std::fs::write(path, &json).expect("write BENCH_scenarios.json");
    println!("wrote {path}");
}
