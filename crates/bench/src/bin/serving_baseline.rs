//! Serving baseline for the multi-tenant `fsda-serve` hot path: sustained
//! request throughput and latency with and without concurrent artifact
//! hot-swaps.
//!
//! Boots a [`fsda_serve::TenantServer`] with four tenants sharing one
//! fitted FS pipeline, then drives identical round-robin traffic through
//! two phases per repetition:
//!
//! - **steady** — requests only; no control-plane activity.
//! - **under_swap** — the same traffic, but every `swap_every`-th request
//!   is preceded by a hot-swap of the tenant about to be served.
//!
//! Swap artifacts are restored from persisted bytes *before* the measured
//! region — restore is control-plane work that a deployment does off the
//! hot path (see `docs/SERVING.md`) — so a measured swap is exactly what
//! the server promises: one atomic pointer publish, one epoch advance, and
//! the drain of already-idle retirees. The headline claim this bench
//! regression-gates is that hot-swaps are invisible to request latency:
//! p99 under swaps must stay within 10% of swap-free p99.
//!
//! Phases are interleaved and repeated, and per-phase p50/p99 are computed
//! over the pooled latencies of all repetitions, so transient host noise
//! (scheduler, thermal) lands in both pools alike and cancels in the
//! gated ratio. Writes `BENCH_serving.json` at the repository root.
//!
//! Two workload sources:
//!
//! - default — the 5GC SCM generator ([`Synth5gc`]), as before;
//! - `--scenario [SPEC]` — a drift scenario (`fsda_data::scenario`): the
//!   pipeline is fitted on the scenario's source/shots split and the
//!   request batch interleaves rows from every drift window of the
//!   schedule, so the measured traffic spans the whole drift trajectory
//!   instead of one fixed target domain. `SPEC` is an optional path to a
//!   scenario DSL file; without it a built-in gradual-drift spec is used.
//!
//! `cargo run -p fsda-bench --release --bin serving_baseline [-- --quick] [--scenario [SPEC]]`

use fsda_core::adapter::AdapterConfig;
use fsda_core::pipeline::{restore, DriftMitigator};
use fsda_core::Method;
use fsda_data::fewshot::few_shot_subset;
use fsda_data::scenario::{ScenarioSpec, Schedule};
use fsda_data::synth5gc::Synth5gc;
use fsda_data::Dataset;
use fsda_linalg::{Matrix, SeededRng};
use fsda_serve::server::{ServeConfig, TenantServer};
use fsda_serve::TenantStats;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

const TENANTS: usize = 4;
const BATCH_ROWS: usize = 64;
const TARGET_MAX_P99_RATIO: f64 = 1.10;

struct RunShape {
    mode: &'static str,
    reps: usize,
    requests_per_rep: usize,
    swap_every: usize,
}

impl RunShape {
    fn swaps_per_rep(&self) -> usize {
        self.requests_per_rep / self.swap_every
    }
}

/// One measured phase: per-request latencies plus the wall-clock of the
/// whole request loop.
struct PhaseSample {
    latencies_s: Vec<f64>,
    elapsed_s: f64,
}

/// Pooled aggregate over all of one phase's repetitions.
struct PhaseSummary {
    requests: usize,
    req_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_ms: f64,
}

/// Nearest-rank percentile on an unsorted sample (copied, then sorted).
fn percentile_ms(latencies_s: &[f64], p: f64) -> f64 {
    let mut sorted = latencies_s.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx] * 1e3
}

/// Pools every repetition's latencies into one sample before taking
/// percentiles. Reps are interleaved steady/under-swap, so transient host
/// noise (scheduler, thermal) lands in both pools alike and cancels in
/// the ratio — per-rep p99 on a small host is just the third-worst
/// latency of that rep, far too noisy to gate on.
fn summarize(samples: &[PhaseSample]) -> PhaseSummary {
    let pooled: Vec<f64> = samples
        .iter()
        .flat_map(|s| s.latencies_s.iter())
        .copied()
        .collect();
    let elapsed: f64 = samples.iter().map(|s| s.elapsed_s).sum();
    PhaseSummary {
        requests: pooled.len(),
        req_per_sec: pooled.len() as f64 / elapsed.max(1e-12),
        p50_ms: percentile_ms(&pooled, 50.0),
        p99_ms: percentile_ms(&pooled, 99.0),
        mean_ms: pooled.iter().sum::<f64>() / pooled.len().max(1) as f64 * 1e3,
    }
}

/// Drives `requests` round-robin batches through the server, swapping the
/// next tenant's artifact every `swap_every` requests when a swap queue is
/// supplied. Returns per-request latencies; panics on any shed or failed
/// request — the driver is single-threaded and blocking, so admission
/// control must never fire.
fn drive(
    server: &TenantServer,
    tenants: &[String],
    batch: &Matrix,
    requests: usize,
    swaps: Option<(&mut VecDeque<Box<dyn DriftMitigator>>, usize)>,
) -> PhaseSample {
    let mut swaps = swaps;
    let mut latencies_s = Vec::with_capacity(requests);
    let phase_start = Instant::now();
    for r in 0..requests {
        let tenant = &tenants[r % tenants.len()];
        if let Some((queue, every)) = swaps.as_mut() {
            if r % *every == 0 {
                if let Some(artifact) = queue.pop_front() {
                    server.swap(tenant, artifact).expect("hot-swap");
                }
            }
        }
        let start = Instant::now();
        let resp = server.predict(tenant, batch.clone()).expect("request");
        latencies_s.push(start.elapsed().as_secs_f64());
        assert_eq!(resp.predictions.len(), batch.rows());
    }
    PhaseSample {
        latencies_s,
        elapsed_s: phase_start.elapsed().as_secs_f64(),
    }
}

/// One resolved traffic source: training split for the shared pipeline
/// plus the fixed request batch every measured request replays.
struct Workload {
    label: String,
    source_train: Dataset,
    shots: Dataset,
    batch: Matrix,
}

/// The classic workload: 5GC SCM bundle, batch drawn from the target
/// test split.
fn synth5gc_workload() -> Workload {
    let bundle = Synth5gc::small().generate(42).expect("5GC bundle");
    let mut rng = SeededRng::new(43);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).expect("shots");
    let row_idx: Vec<usize> = (0..BATCH_ROWS)
        .map(|r| r % bundle.target_test.features().rows())
        .collect();
    let batch = bundle.target_test.features().select_rows(&row_idx);
    Workload {
        label: "synth5gc".to_string(),
        source_train: bundle.source_train,
        shots,
        batch,
    }
}

/// Scenario workload: compiles a drift scenario spec (from `path`, or a
/// built-in gradual-drift default) and builds the request batch by
/// interleaving rows from every window of the drift schedule, so the
/// served traffic walks the whole source→target trajectory.
fn scenario_workload(path: Option<&str>) -> Workload {
    let (label, spec) = match path {
        Some(p) => {
            let text = std::fs::read_to_string(p).expect("read scenario spec");
            let spec = ScenarioSpec::parse(&text).expect("parse scenario spec");
            (format!("scenario:{p}"), spec)
        }
        None => (
            "scenario:builtin-gradual".to_string(),
            ScenarioSpec::default()
                .with_schedule(Schedule::Gradual { windows: 4 })
                .with_seed(42),
        ),
    };
    let compiled = spec.compile().expect("compile scenario");
    let data = compiled.generate(None).expect("generate scenario");
    let mut rng = SeededRng::new(43);
    let shots = few_shot_subset(&data.target_pool, compiled.spec().shots, &mut rng).expect("shots");
    let windows: Vec<Dataset> = (0..compiled.window_fractions().len())
        .map(|w| {
            compiled
                .generate_window(w, BATCH_ROWS, None)
                .expect("generate window")
        })
        .collect();
    let rows: Vec<&[f64]> = (0..BATCH_ROWS)
        .map(|r| windows[r % windows.len()].features().row(r / windows.len()))
        .collect();
    let batch = Matrix::from_rows(&rows);
    Workload {
        label,
        source_train: data.source_train,
        shots,
        batch,
    }
}

fn phase_json(json: &mut String, key: &str, s: &PhaseSummary, swaps: usize) {
    let _ = writeln!(json, "  \"{key}\": {{");
    let _ = writeln!(json, "    \"requests\": {},", s.requests);
    let _ = writeln!(json, "    \"swaps\": {swaps},");
    let _ = writeln!(json, "    \"req_per_sec\": {:.1},", s.req_per_sec);
    let _ = writeln!(json, "    \"p50_ms\": {:.4},", s.p50_ms);
    let _ = writeln!(json, "    \"p99_ms\": {:.4},", s.p99_ms);
    let _ = writeln!(json, "    \"mean_ms\": {:.4}", s.mean_ms);
    json.push_str("  },\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scenario = args.iter().position(|a| a == "--scenario").map(|i| {
        args.get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .map(String::as_str)
    });
    let shape = if quick {
        RunShape {
            mode: "quick",
            reps: 2,
            requests_per_rep: 96,
            swap_every: 12,
        }
    } else {
        RunShape {
            mode: "full",
            reps: 5,
            requests_per_rep: 256,
            swap_every: 16,
        }
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workload = match scenario {
        Some(path) => scenario_workload(path),
        None => synth5gc_workload(),
    };
    println!(
        "serving_baseline ({}): host parallelism {cores} core(s), \
         {} tenants, {} reps x {} requests, swap every {}, workload {}\n",
        shape.mode, TENANTS, shape.reps, shape.requests_per_rep, shape.swap_every, workload.label
    );

    // One fitted FS pipeline feeds every tenant: this bench measures the
    // serving fabric, not per-tenant model variance, and one fit keeps the
    // setup phase tractable.
    let fit_start = Instant::now();
    let mut fitted = Method::Fs.build(&AdapterConfig::quick(), 44);
    fitted
        .fit(&workload.source_train, &workload.shots)
        .expect("FS fit");
    let bytes = fitted.to_bytes().expect("persist");
    println!(
        "fitted the shared {} pipeline in {:.1}s ({} artifact bytes)",
        fitted.method(),
        fit_start.elapsed().as_secs_f64(),
        bytes.len()
    );

    // Control-plane staging, all off the measured path: boot artifacts and
    // every swap artifact are restored before any request is timed.
    let tenants: Vec<String> = (0..TENANTS).map(|i| format!("bench-{i}")).collect();
    let boot = tenants
        .iter()
        .map(|t| (t.clone(), restore(&bytes).expect("restore boot artifact")))
        .collect();
    let total_swaps = shape.reps * shape.swaps_per_rep();
    let stage_start = Instant::now();
    let mut staged: VecDeque<Box<dyn DriftMitigator>> = (0..total_swaps)
        .map(|_| restore(&bytes).expect("restore swap artifact"))
        .collect();
    println!(
        "pre-staged {total_swaps} swap artifacts in {:.2}s (restore runs \
         off the hot path)\n",
        stage_start.elapsed().as_secs_f64()
    );

    let server = TenantServer::from_artifacts(boot, ServeConfig::default()).expect("tenant server");
    let shards = server.shards();
    let batch = workload.batch;

    // Warm-up, then interleave steady / under-swap reps so host drift
    // (thermal, scheduler) hits both phases alike.
    let _ = drive(&server, &tenants, &batch, 32, None);
    let mut steady_samples = Vec::new();
    let mut swap_samples = Vec::new();
    println!(
        "{:>4} {:>11} {:>13} {:>13} {:>13} {:>13}",
        "rep", "phase", "req/s", "p50 (ms)", "p99 (ms)", "swaps"
    );
    for rep in 0..shape.reps {
        for steady in [true, false] {
            let swaps_before = staged.len();
            let sample = if steady {
                drive(&server, &tenants, &batch, shape.requests_per_rep, None)
            } else {
                drive(
                    &server,
                    &tenants,
                    &batch,
                    shape.requests_per_rep,
                    Some((&mut staged, shape.swap_every)),
                )
            };
            println!(
                "{:>4} {:>11} {:>13.0} {:>13.4} {:>13.4} {:>13}",
                rep,
                if steady { "steady" } else { "under-swap" },
                sample.latencies_s.len() as f64 / sample.elapsed_s.max(1e-12),
                percentile_ms(&sample.latencies_s, 50.0),
                percentile_ms(&sample.latencies_s, 99.0),
                swaps_before - staged.len(),
            );
            if steady {
                steady_samples.push(sample);
            } else {
                swap_samples.push(sample);
            }
        }
    }
    assert!(staged.is_empty(), "every staged swap artifact must be used");

    // The serving fabric must have stayed clean: nothing shed, nothing
    // failed, every swap accounted for.
    let stats: Vec<TenantStats> = tenants
        .iter()
        .map(|t| server.stats(t).expect("stats"))
        .collect();
    let swaps_performed: u64 = stats.iter().map(|s| s.swaps).sum();
    assert_eq!(swaps_performed, total_swaps as u64);
    for s in &stats {
        assert_eq!(
            s.rejected, 0,
            "{}: blocking driver must never shed",
            s.tenant
        );
        assert_eq!(s.serve_errors, 0, "{}: no request may fail", s.tenant);
    }
    server.shutdown();

    let steady = summarize(&steady_samples);
    let under_swap = summarize(&swap_samples);
    let p99_ratio = under_swap.p99_ms / steady.p99_ms.max(1e-12);
    println!(
        "\nsteady p99 {:.4} ms, under-swap p99 {:.4} ms, ratio {:.3} \
         (target <= {TARGET_MAX_P99_RATIO})",
        steady.p99_ms, under_swap.p99_ms, p99_ratio
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"host_parallelism\": {cores},");
    let _ = writeln!(json, "  \"mode\": \"{}\",", shape.mode);
    let _ = writeln!(json, "  \"workload\": \"{}\",", workload.label);
    let _ = writeln!(json, "  \"tenants\": {TENANTS},");
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"batch_rows\": {BATCH_ROWS},");
    let _ = writeln!(json, "  \"reps\": {},", shape.reps);
    let _ = writeln!(json, "  \"requests_per_rep\": {},", shape.requests_per_rep);
    let _ = writeln!(json, "  \"swap_every\": {},", shape.swap_every);
    let _ = writeln!(
        json,
        "  \"description\": \"multi-tenant TenantServer sustained serving: \
         identical round-robin traffic measured with no control-plane \
         activity (steady) and with a hot-swap before every swap_every-th \
         request (under_swap); per-phase p50/p99 are pooled over \
         interleaved repetitions so host noise cancels in the ratio\","
    );
    let _ = writeln!(
        json,
        "  \"note\": \"swap artifacts are restored from persisted bytes \
         before the measured region; a measured swap is the atomic pointer \
         publish, the epoch advance, and reclamation of drained retirees \
         only\","
    );
    phase_json(&mut json, "steady", &steady, 0);
    phase_json(&mut json, "under_swap", &under_swap, total_swaps);
    let _ = writeln!(json, "  \"swap_gate\": {{");
    let _ = writeln!(json, "    \"p99_ratio\": {p99_ratio:.4},");
    let _ = writeln!(json, "    \"target_max_ratio\": {TARGET_MAX_P99_RATIO},");
    let _ = writeln!(
        json,
        "    \"within_target\": {}",
        p99_ratio <= TARGET_MAX_P99_RATIO
    );
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
