//! Cross-method tournament: every registry method on every cell of a
//! scenario-DSL grid, ranked by mean macro-F1.
//!
//! Where `scenario_sweep` stress-tests the FS front-end against ground
//! truth, the tournament stress-tests the paper's *claim*: that the
//! source-only-trained FS+GAN pipeline holds up against methods that are
//! allowed to train on the target shots — including the adversarial
//! adaptation baselines (DANN, SCL, FADA, FMAA). All 18 registry methods
//! run on every cell of a topology × strength × schedule grid via
//! [`fsda_core::sweep::run_scenario_cell`]; per-method mean macro-F1 and
//! dense ranks go to `BENCH_tournament.json`, and CI gates that FsGan's
//! mean stays in the top 3. Ranking runs over the cells inside the
//! paper's operating envelope; chain/mixed-topology cells, whose
//! feature→feature edges propagate drift beyond the intervention sites,
//! are played and recorded as out-of-model diagnostics (see
//! [`build_grid`] and `docs/TOURNAMENT.md`).
//!
//! Cells derive their seeds from the grid position and run
//! single-threaded inside, so the tournament is bit-identical at any
//! thread count; `--verify-determinism` re-runs a prefix sequentially and
//! asserts exact equality.
//!
//! `cargo run -p fsda-bench --release --bin tournament [-- --quick]
//!  [--threads N] [--verify-determinism]`

use fsda_core::adapter::AdapterConfig;
use fsda_core::sweep::run_scenario_cell;
use fsda_core::Method;
use fsda_data::fewshot::few_shot_subset;
use fsda_data::scenario::{ScenarioSpec, Schedule, Topology};
use fsda_linalg::par::{par_map, resolve_threads};
use fsda_linalg::SeededRng;
use fsda_models::ClassifierKind;
use std::fmt::Write as _;
use std::time::Instant;

/// CI gate: FsGan's dense rank by mean macro-F1 must stay within this.
const TARGET_FSGAN_RANK: usize = 3;

/// Shots per cell. The tournament plays in the paper's few-shot regime
/// (k ≤ 5): the whole claim is about what source-only training buys when
/// labelled target data is *scarce*, so handing the adversarial
/// baselines a large shot budget would change the question, not
/// stress-test the answer.
const SHOTS: usize = 5;

/// One grid position: the scenario spec plus whether the cell is inside
/// the paper's operating envelope and therefore counts toward the
/// ranking. Out-of-model cells (feature→feature drift propagation) are
/// still played and recorded as diagnostics.
#[derive(Clone, PartialEq)]
struct GridCell {
    spec: ScenarioSpec,
    in_model: bool,
}

/// One completed tournament cell: macro-F1 per method, in
/// [`Method::ALL`] order.
#[derive(Clone, PartialEq)]
struct CellRecord {
    id: usize,
    cell: GridCell,
    f1: Vec<f64>,
}

/// Splitmix64 finalizer for per-cell seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The tournament grid: topology × strength tier × drift schedule.
///
/// **Ranked cells** stay inside the paper's operating envelope: star and
/// layered topologies, where features are children of latents only, so
/// drift lives exactly at the intervention sites the F-node search
/// identifies — the assumption the FS+GAN pipeline (and the paper's
/// testbeds) are built on. Strengths stay in the regime a few-shot
/// window can detect at all.
///
/// **Diagnostic cells** deliberately leave that envelope — chain and
/// mixed topologies propagate interventions through feature→feature
/// mechanisms, so *every* feature's marginal can drift. They are played
/// and recorded (`in_model: false`) because the failure mode is real
/// and worth watching, but they rank nothing: a method's score there
/// measures the substrate's distance from the paper's assumptions, not
/// the method (see `docs/TOURNAMENT.md`).
///
/// Quick mode covers every axis with a latin-square of the ranked grid
/// plus one diagnostic per out-of-model topology; full mode is the
/// cartesian product.
fn build_grid(quick: bool) -> Vec<GridCell> {
    let ranked = [Topology::Star, Topology::Layered];
    let strengths = [2.4, 1.6];
    let schedules = [Schedule::Abrupt, Schedule::Gradual { windows: 4 }];
    let mut grid = Vec::new();
    if quick {
        grid.push(ScenarioSpec::default().with_topology(Topology::Star));
        grid.push(
            ScenarioSpec::default()
                .with_topology(Topology::Layered)
                .with_schedule(Schedule::Gradual { windows: 4 }),
        );
        grid.push(
            ScenarioSpec::default()
                .with_topology(Topology::Star)
                .with_strength(1.6)
                .with_schedule(Schedule::Gradual { windows: 4 }),
        );
        grid.push(
            ScenarioSpec::default()
                .with_topology(Topology::Layered)
                .with_strength(1.6),
        );
    } else {
        for topology in ranked {
            for strength in strengths {
                for schedule in schedules {
                    grid.push(
                        ScenarioSpec::default()
                            .with_topology(topology)
                            .with_strength(strength)
                            .with_schedule(schedule),
                    );
                }
            }
        }
    }
    let ranked_len = grid.len();
    for topology in [Topology::Chain, Topology::Mixed] {
        grid.push(ScenarioSpec::default().with_topology(topology));
        if !quick {
            grid.push(
                ScenarioSpec::default()
                    .with_topology(topology)
                    .with_schedule(Schedule::Gradual { windows: 4 }),
            );
        }
    }
    grid.into_iter()
        .enumerate()
        .map(|(i, spec)| GridCell {
            spec: spec
                .with_shots(SHOTS)
                .with_seed(mix(0x70AA_1EB1 + i as u64)),
            in_model: i < ranked_len,
        })
        .collect()
}

/// Runs one cell: generate the scenario once, then fit and score every
/// registry method on it. Single-threaded inside — parallelism lives at
/// the cell fan-out.
fn run_cell(id: usize, cell: &GridCell) -> CellRecord {
    let spec = &cell.spec;
    let compiled = spec.compile().expect("grid specs are valid");
    let data = compiled.generate(Some(1)).expect("scenario generation");
    let mut shot_rng = SeededRng::new(mix(spec.seed ^ 0x5807));
    let shots =
        few_shot_subset(&data.target_pool, spec.shots, &mut shot_rng).expect("few-shot draw");
    // The paper's network-management model is a neural classifier; the
    // MLP is also what the model-specific baselines embed against, so
    // every method competes on the model family the claim is about. The
    // default (paper-scale) budget is deliberate: the tournament ranks
    // methods, and rankings under a starved budget measure convergence
    // speed, not the methods themselves.
    let mut config = AdapterConfig::default().with_classifier(ClassifierKind::Mlp);
    config.fs.parallel = false;
    config.budget.threads = 1;
    let f1 = Method::ALL
        .iter()
        .map(|&method| {
            run_scenario_cell(
                method,
                &data.source_train,
                &shots,
                &data.target_test,
                &data.ground_truth_variant,
                &config,
                mix(spec.seed ^ method as u64),
            )
            .expect("cell run")
            .macro_f1
        })
        .collect();
    CellRecord {
        id,
        cell: cell.clone(),
        f1,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Dense ranks over mean macro-F1, descending: the best method is rank 1
/// and exact ties share a rank without gapping the next one.
fn dense_ranks(means: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..means.len()).collect();
    order.sort_by(|&a, &b| means[b].total_cmp(&means[a]));
    let mut ranks = vec![0usize; means.len()];
    let mut rank = 0usize;
    let mut prev = f64::INFINITY;
    for &i in &order {
        if means[i] != prev {
            rank += 1;
            prev = means[i];
        }
        ranks[i] = rank;
    }
    ranks
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verify = args.iter().any(|a| a == "--verify-determinism");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    let threads = resolve_threads(threads);
    let grid = build_grid(quick);
    let mode = if quick { "quick" } else { "full" };
    let ranked_count = grid.iter().filter(|c| c.in_model).count();
    println!(
        "tournament ({mode}): {} methods x {} cells ({} ranked + {} diagnostic) on {threads} thread(s)\n",
        Method::ALL.len(),
        grid.len(),
        ranked_count,
        grid.len() - ranked_count,
    );

    let start = Instant::now();
    let cells: Vec<CellRecord> = par_map(threads, &grid, run_cell);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "played {} cells in {elapsed:.1}s ({:.2}s/cell)\n",
        cells.len(),
        elapsed / cells.len().max(1) as f64
    );

    let checked = if verify {
        let n = cells.len().min(2);
        let again: Vec<CellRecord> = par_map(1, &grid[..n], run_cell);
        for (a, b) in cells[..n].iter().zip(&again) {
            assert!(
                a == b,
                "cell {} differs between {threads}-thread and sequential runs",
                a.id
            );
        }
        println!("determinism spot-check: {n} cells bit-identical at 1 vs {threads} thread(s)\n");
        n
    } else {
        0
    };

    // Only in-model cells rank; diagnostics are recorded but never
    // scored (see build_grid).
    let ranked_cells: Vec<&CellRecord> = cells.iter().filter(|c| c.cell.in_model).collect();
    let means: Vec<f64> = (0..Method::ALL.len())
        .map(|j| mean(&ranked_cells.iter().map(|c| c.f1[j]).collect::<Vec<f64>>()))
        .collect();
    let ranks = dense_ranks(&means);

    // Leaderboard, best first.
    let mut order: Vec<usize> = (0..Method::ALL.len()).collect();
    order.sort_by(|&a, &b| means[b].total_cmp(&means[a]));
    println!("{:>4} {:<12} {:>12}", "rank", "method", "mean_f1");
    for &j in &order {
        println!(
            "{:>4} {:<12} {:>12.3}",
            ranks[j],
            Method::ALL[j].slug(),
            means[j]
        );
    }
    let fsgan = Method::ALL
        .iter()
        .position(|&m| m == Method::FsGan)
        .expect("FsGan is registered");
    println!(
        "\nfsgan rank {} of {} (gate: <= {TARGET_FSGAN_RANK})",
        ranks[fsgan],
        Method::ALL.len()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"elapsed_s\": {elapsed:.2},");
    let _ = writeln!(
        json,
        "  \"description\": \"cross-method tournament: all registry \
         methods fit and scored on every cell of a topology x strength x \
         schedule scenario grid; per-method mean macro-F1 with dense \
         ranks (1 = best, ties share a rank) over the in-model cells; \
         cells with in_model=false leave the paper's operating envelope \
         (drift propagating through feature-to-feature edges) and are \
         recorded as diagnostics without ranking anything; cells are \
         pure functions of their spec so the tournament is bit-identical \
         at any thread count\","
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"id\": {},", c.id);
        let _ = writeln!(json, "      \"topology\": \"{}\",", c.cell.spec.topology);
        let _ = writeln!(json, "      \"strength\": {},", c.cell.spec.strength);
        let _ = writeln!(json, "      \"schedule\": \"{}\",", c.cell.spec.schedule);
        let _ = writeln!(json, "      \"seed\": {},", c.cell.spec.seed);
        let _ = writeln!(json, "      \"in_model\": {},", c.cell.in_model);
        let _ = writeln!(json, "      \"macro_f1\": {{");
        for (j, m) in Method::ALL.iter().enumerate() {
            let _ = writeln!(
                json,
                "        \"{}\": {:.6}{}",
                m.slug(),
                c.f1[j],
                if j + 1 < Method::ALL.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      }}");
        let _ = writeln!(json, "    }}{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"methods\": {{");
    for (j, m) in Method::ALL.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"mean_macro_f1\": {:.6}, \"rank\": {}}}{}",
            m.slug(),
            means[j],
            ranks[j],
            if j + 1 < Method::ALL.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"summary\": {{");
    let _ = writeln!(json, "    \"num_methods\": {},", Method::ALL.len());
    let _ = writeln!(json, "    \"num_cells\": {},", cells.len());
    let _ = writeln!(json, "    \"num_ranked_cells\": {},", ranked_cells.len());
    let _ = writeln!(json, "    \"fsgan_rank\": {},", ranks[fsgan]);
    let _ = writeln!(json, "    \"target_fsgan_rank\": {TARGET_FSGAN_RANK},");
    let _ = writeln!(json, "    \"determinism_checked_cells\": {checked},");
    let _ = writeln!(
        json,
        "    \"determinism_bit_identical\": {}",
        if verify { "true" } else { "null" }
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tournament.json");
    std::fs::write(path, &json).expect("write BENCH_tournament.json");
    println!("wrote {path}");
}
