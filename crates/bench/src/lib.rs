//! Shared harness for the table-regeneration benches.
//!
//! Every table and figure of the paper's evaluation has a bench target in
//! `benches/` (see `DESIGN.md` §5 for the index). Each bench prints the
//! paper-reported value next to the measured one. By default the benches
//! run **scaled-down** (small synthetic presets, reduced training budget,
//! few repeats) so `cargo bench` finishes in minutes; set `FSDA_FULL=1`
//! for paper-scale datasets and budgets, and `FSDA_REPEATS=n` to override
//! the repeat count (the paper uses 20).

use fsda_core::adapter::Budget;
use fsda_core::experiment::{ExperimentConfig, Scenario};
use fsda_data::synth5gc::Synth5gc;
use fsda_data::synth5gipc::{Synth5gipc, ThreeDomainBundle, NUM_GROUPS};

/// Scale knobs read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct BenchScale {
    /// Paper-scale datasets and budgets (`FSDA_FULL=1`).
    pub full: bool,
    /// Repeats per cell (`FSDA_REPEATS`, default 2 scaled / 5 full).
    pub repeats: usize,
    /// Base seed (`FSDA_SEED`, default 0).
    pub seed: u64,
}

impl BenchScale {
    /// Reads `FSDA_FULL`, `FSDA_REPEATS`, and `FSDA_SEED`.
    pub fn from_env() -> Self {
        let full = std::env::var("FSDA_FULL")
            .map(|v| v != "0")
            .unwrap_or(false);
        let repeats = std::env::var("FSDA_REPEATS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if full { 5 } else { 1 });
        let seed = std::env::var("FSDA_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        BenchScale {
            full,
            repeats,
            seed,
        }
    }

    /// The training budget for this scale.
    pub fn budget(&self) -> Budget {
        if self.full {
            Budget::full()
        } else {
            Budget::quick()
        }
    }

    /// Experiment configuration with the paper's 1/5/10-shot sweep.
    pub fn experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig {
            shots: vec![1, 5, 10],
            repeats: self.repeats,
            budget: self.budget(),
            seed: self.seed,
            parallel: true,
        }
    }

    /// Banner describing the scale, printed at the top of each bench.
    pub fn banner(&self) -> String {
        if self.full {
            format!(
                "scale: FULL (paper-scale datasets, full budget, {} repeats; paper uses 20)",
                self.repeats
            )
        } else {
            format!(
                "scale: reduced (small synthetic presets, quick budget, {} repeats) — \
                 set FSDA_FULL=1 for paper scale",
                self.repeats
            )
        }
    }
}

/// Builds the 5GC scenario plus its ground-truth variant set.
///
/// # Panics
///
/// Panics if generation fails (indicates a configuration bug).
pub fn scenario_5gc(scale: &BenchScale, seed: u64) -> (Scenario, Vec<usize>) {
    let gen = if scale.full {
        Synth5gc::full()
    } else {
        Synth5gc::small()
    };
    let b = gen.generate(seed).expect("5GC generation");
    (
        Scenario {
            name: "5GC".into(),
            source: b.source_train,
            target_pool: b.target_pool,
            pool_groups: None,
            num_groups: 16,
            target_test: b.target_test,
        },
        b.ground_truth_variant,
    )
}

/// Builds the 5GIPC scenario (fault-type few-shot groups) plus its
/// ground-truth variant set.
///
/// # Panics
///
/// Panics if generation fails.
pub fn scenario_5gipc(scale: &BenchScale, seed: u64) -> (Scenario, Vec<usize>) {
    let gen = if scale.full {
        Synth5gipc::full()
    } else {
        Synth5gipc::small()
    };
    let b = gen.generate(seed).expect("5GIPC generation");
    (
        Scenario {
            name: "5GIPC".into(),
            source: b.source_train,
            target_pool: b.target_pool,
            pool_groups: Some(b.target_pool_groups),
            num_groups: NUM_GROUPS,
            target_test: b.target_test,
        },
        b.ground_truth_variant,
    )
}

/// Builds the three-domain 5GIPC bundle for Table III.
///
/// # Panics
///
/// Panics if generation fails.
pub fn three_domain_5gipc(scale: &BenchScale, seed: u64) -> ThreeDomainBundle {
    let gen = if scale.full {
        Synth5gipc::full()
    } else {
        Synth5gipc::small()
    };
    gen.generate_three_domain(seed)
        .expect("5GIPC three-domain generation")
}

/// The values the paper reports, for side-by-side printing.
pub mod paper {
    use fsda_core::method::Method;

    /// Classifier-column order of the tables: TNet, MLP, RF, XGB.
    pub const COLS: usize = 4;

    /// Table I, 5GC block: `(method, [[k1 cols], [k5 cols], [k10 cols]])`.
    /// Model-specific methods repeat their single value across columns.
    pub const TABLE1_5GC: [(Method, [[f64; 4]; 3]); 13] = [
        (
            Method::FsGan,
            [
                [89.7, 89.6, 84.5, 83.6],
                [93.1, 92.5, 89.2, 89.3],
                [93.4, 92.7, 89.3, 89.6],
            ],
        ),
        (
            Method::Fs,
            [
                [86.8, 86.4, 81.7, 81.0],
                [88.2, 86.7, 82.0, 82.1],
                [88.6, 87.4, 82.5, 82.9],
            ],
        ),
        (
            Method::Cmt,
            [
                [63.7, 61.0, 57.6, 58.1],
                [71.8, 70.3, 68.6, 68.1],
                [76.2, 74.5, 71.7, 71.5],
            ],
        ),
        (
            Method::Icd,
            [
                [34.2, 35.7, 32.9, 32.8],
                [65.8, 63.2, 62.6, 62.5],
                [74.9, 72.0, 71.3, 71.3],
            ],
        ),
        (
            Method::SrcOnly,
            [
                [10.6, 11.8, 22.4, 22.6],
                [10.6, 11.8, 22.4, 22.6],
                [10.6, 11.8, 22.4, 22.6],
            ],
        ),
        (
            Method::TarOnly,
            [
                [16.5, 15.6, 25.6, 26.0],
                [56.1, 54.5, 57.3, 57.5],
                [60.8, 59.2, 59.4, 59.5],
            ],
        ),
        (
            Method::SourceAndTarget,
            [
                [37.0, 35.4, 32.3, 32.7],
                [59.5, 58.8, 61.5, 61.6],
                [66.0, 64.2, 63.7, 64.1],
            ],
        ),
        (
            Method::FineTune,
            [
                [37.8, 37.8, 37.8, 37.8],
                [56.5, 56.5, 56.5, 56.5],
                [64.5, 64.5, 64.5, 64.5],
            ],
        ),
        (
            Method::Coral,
            [
                [38.5, 37.9, 36.3, 36.4],
                [64.7, 62.5, 62.1, 62.2],
                [70.9, 69.5, 69.2, 69.6],
            ],
        ),
        (Method::Dann, [[33.6; 4], [61.9; 4], [71.3; 4]]),
        (Method::Scl, [[31.7; 4], [60.4; 4], [71.6; 4]]),
        (Method::MatchNet, [[43.8; 4], [68.9; 4], [72.3; 4]]),
        (Method::ProtoNet, [[45.4; 4], [65.3; 4], [70.8; 4]]),
    ];

    /// Table I, 5GIPC block.
    pub const TABLE1_5GIPC: [(Method, [[f64; 4]; 3]); 13] = [
        (
            Method::FsGan,
            [
                [80.5, 79.0, 80.2, 79.7],
                [85.5, 85.0, 85.8, 85.5],
                [86.1, 85.7, 86.5, 86.3],
            ],
        ),
        (
            Method::Fs,
            [
                [76.5, 75.8, 76.3, 76.1],
                [81.3, 80.8, 81.2, 80.9],
                [82.5, 82.0, 82.7, 82.4],
            ],
        ),
        (
            Method::Cmt,
            [
                [70.3, 69.5, 70.2, 70.0],
                [73.2, 72.5, 73.3, 72.9],
                [74.1, 73.7, 74.2, 74.0],
            ],
        ),
        (
            Method::Icd,
            [
                [66.8, 65.8, 66.3, 65.9],
                [71.5, 71.4, 71.8, 71.4],
                [74.0, 72.5, 73.3, 73.2],
            ],
        ),
        (
            Method::SrcOnly,
            [
                [51.3, 51.6, 53.5, 53.7],
                [51.3, 51.6, 53.5, 53.6],
                [51.3, 51.6, 53.5, 53.6],
            ],
        ),
        (
            Method::TarOnly,
            [
                [56.2, 55.5, 55.8, 55.6],
                [59.2, 58.8, 59.5, 59.3],
                [62.5, 62.0, 62.3, 62.1],
            ],
        ),
        (
            Method::SourceAndTarget,
            [
                [61.6, 61.0, 61.7, 61.3],
                [64.8, 64.3, 65.0, 64.7],
                [67.7, 67.0, 67.2, 67.3],
            ],
        ),
        (Method::FineTune, [[58.2; 4], [61.0; 4], [63.2; 4]]),
        (
            Method::Coral,
            [
                [66.2, 65.8, 66.2, 65.8],
                [68.5, 68.0, 67.8, 68.3],
                [70.5, 69.8, 70.3, 70.2],
            ],
        ),
        (Method::Dann, [[70.7; 4], [75.8; 4], [78.0; 4]]),
        (Method::Scl, [[69.8; 4], [75.7; 4], [77.8; 4]]),
        (Method::MatchNet, [[68.5; 4], [70.8; 4], [72.7; 4]]),
        (Method::ProtoNet, [[70.7; 4], [73.5; 4], [74.8; 4]]),
    ];

    /// Table II (TNet column): `(label, 5GC [k1,k5,k10], 5GIPC [k1,k5,k10])`.
    pub const TABLE2: [(&str, [f64; 3], [f64; 3]); 4] = [
        ("FS+GAN", [89.7, 93.1, 93.4], [80.5, 85.5, 86.1]),
        ("FS+NoCond", [89.3, 91.7, 93.0], [80.5, 84.1, 84.9]),
        ("FS+VAE", [88.4, 90.1, 91.3], [79.3, 82.8, 83.0]),
        ("FS+VanillaAE", [87.6, 89.1, 89.5], [77.4, 81.6, 83.0]),
    ];

    /// Table III (TNet): rows FS+GAN_1 / FS+GAN_2, cells
    /// `[target1 @ k1/k5/k10, target2 @ k1/k5/k10]`.
    pub const TABLE3: [(&str, [f64; 3], [f64; 3]); 2] = [
        ("FS+GAN_1", [78.6, 83.8, 85.0], [74.8, 79.1, 80.2]),
        ("FS+GAN_2", [74.4, 79.5, 81.7], [76.7, 84.1, 85.3]),
    ];

    /// §VI-C: variant-feature counts found by FS at 1/5/10 shots.
    pub const VARIANT_COUNTS_5GC: [usize; 3] = [35, 68, 75];
    /// §VI-C: 5GIPC variant-feature counts.
    pub const VARIANT_COUNTS_5GIPC: [usize; 3] = [23, 31, 37];
    /// §VI-C: maximum F1 deviation across random target selections.
    pub const VARIANCE_BOUND: f64 = 2.6;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults() {
        // No env override in tests: reduced scale.
        let s = BenchScale {
            full: false,
            repeats: 1,
            seed: 0,
        };
        assert_eq!(s.budget().nn_epochs, Budget::quick().nn_epochs);
        assert!(s.banner().contains("reduced"));
        let f = BenchScale {
            full: true,
            repeats: 5,
            seed: 0,
        };
        assert!(f.banner().contains("FULL"));
    }

    #[test]
    fn scenarios_build() {
        let s = BenchScale {
            full: false,
            repeats: 1,
            seed: 0,
        };
        let (gc, truth) = scenario_5gc(&s, 1);
        assert_eq!(gc.target_test.num_classes(), 16);
        assert!(!truth.is_empty());
        let (ipc, truth2) = scenario_5gipc(&s, 1);
        assert_eq!(ipc.target_test.num_classes(), 2);
        assert!(ipc.pool_groups.is_some());
        assert!(!truth2.is_empty());
    }

    #[test]
    fn paper_tables_have_consistent_shapes() {
        assert_eq!(paper::TABLE1_5GC.len(), 13);
        assert_eq!(paper::TABLE1_5GIPC.len(), 13);
        for (m, grid) in paper::TABLE1_5GC.iter() {
            let _ = m.label();
            for ks in grid {
                for &v in ks {
                    assert!((0.0..=100.0).contains(&v));
                }
            }
        }
    }
}
