//! Conditional-independence testing.
//!
//! The PC / F-node searches are parameterized over a [`CondIndepTest`] so
//! that alternative tests (e.g. the conservative marginal test used by the
//! ICD baseline) can be swapped in. The default is the classic Fisher-z test
//! on partial correlations, which handles the binary F-node as a 0/1
//! variable (point-biserial correlation).

use crate::{CausalError, Result};
use fsda_linalg::stats::{correlation_matrix, fisher_z_pvalue, partial_correlation};
use fsda_linalg::Matrix;

/// A conditional-independence oracle over a fixed dataset.
///
/// The trait requires [`Sync`] because the PC skeleton and the F-node
/// search fan their per-edge / per-feature queries out to a worker pool
/// (`fsda_linalg::par`): every worker holds a shared reference to the same
/// oracle, which is safe precisely because an oracle is immutable after
/// construction — [`FisherZ`] precomputes its correlation matrix once and
/// every query is read-only.
pub trait CondIndepTest: Sync {
    /// P-value of the null hypothesis `x_i ⟂ x_j | x_cond`.
    ///
    /// # Errors
    ///
    /// Implementations may fail on numerically degenerate conditioning sets.
    fn pvalue(&self, i: usize, j: usize, cond: &[usize]) -> Result<f64>;

    /// Number of variables in the dataset.
    fn num_vars(&self) -> usize;

    /// Number of samples backing the test.
    fn num_samples(&self) -> usize;

    /// Convenience: true when the independence hypothesis is **not**
    /// rejected at level `alpha` (i.e. the variables look independent).
    ///
    /// # Errors
    ///
    /// Propagates failures from [`CondIndepTest::pvalue`].
    fn independent(&self, i: usize, j: usize, cond: &[usize], alpha: f64) -> Result<bool> {
        Ok(self.pvalue(i, j, cond)? > alpha)
    }
}

/// Fisher-z conditional-independence test on partial correlations.
///
/// Precomputes the full correlation matrix once; each query inverts only the
/// `(2 + |cond|)`-dimensional submatrix, so queries with the small
/// conditioning sets used by PC are cheap even for hundreds of variables.
#[derive(Debug, Clone)]
pub struct FisherZ {
    corr: Matrix,
    n: usize,
}

impl FisherZ {
    /// Builds the test from a data matrix (rows are samples).
    ///
    /// # Errors
    ///
    /// Returns [`CausalError::InsufficientData`] when fewer than four
    /// samples are provided (the Fisher-z statistic needs `n - |cond| - 3 > 0`)
    /// and [`CausalError::NonFinite`] — localized to the first offending
    /// cell — when the data contains NaN/Inf values, which would silently
    /// poison the precomputed correlation matrix.
    pub fn new(data: &Matrix) -> Result<Self> {
        if data.rows() < 4 {
            return Err(CausalError::InsufficientData(format!(
                "Fisher-z needs >= 4 samples, got {}",
                data.rows()
            )));
        }
        for (r, row) in data.iter_rows().enumerate() {
            if let Some(c) = row.iter().position(|v| !v.is_finite()) {
                return Err(CausalError::NonFinite { row: r, col: c });
            }
        }
        let corr = correlation_matrix(data)?;
        Ok(FisherZ {
            corr,
            n: data.rows(),
        })
    }

    /// Builds the test directly from a precomputed correlation matrix and
    /// sample count (used by tests and by callers that already have it).
    ///
    /// # Panics
    ///
    /// Panics if `corr` is not square.
    pub fn from_correlation(corr: Matrix, n: usize) -> Self {
        assert_eq!(
            corr.rows(),
            corr.cols(),
            "from_correlation: matrix must be square"
        );
        FisherZ { corr, n }
    }

    /// The (partial) correlation underlying a query — exposed because the
    /// F-node search reports effect sizes alongside p-values.
    ///
    /// # Errors
    ///
    /// Fails when the conditioning submatrix is singular.
    pub fn partial_corr(&self, i: usize, j: usize, cond: &[usize]) -> Result<f64> {
        Ok(partial_correlation(&self.corr, i, j, cond)?)
    }
}

impl CondIndepTest for FisherZ {
    fn pvalue(&self, i: usize, j: usize, cond: &[usize]) -> Result<f64> {
        let r = self.partial_corr(i, j, cond)?;
        Ok(fisher_z_pvalue(r, self.n, cond.len()))
    }

    fn num_vars(&self) -> usize {
        self.corr.rows()
    }

    fn num_samples(&self) -> usize {
        self.n
    }
}

/// Appends a binary domain-indicator column (the F-node) to stacked
/// source/target data: source rows get `F = 0`, target rows `F = 1`.
///
/// Returns the combined matrix; the F-node is the **last** column, index
/// `source.cols()`.
///
/// # Errors
///
/// Returns [`CausalError::FeatureMismatch`] when the domains have different
/// widths and [`CausalError::InsufficientData`] when either domain is empty.
pub fn combine_with_fnode(source: &Matrix, target: &Matrix) -> Result<Matrix> {
    if source.cols() != target.cols() {
        return Err(CausalError::FeatureMismatch {
            source: source.cols(),
            target: target.cols(),
        });
    }
    if source.rows() == 0 || target.rows() == 0 {
        return Err(CausalError::InsufficientData(
            "both domains must be non-empty to form the F-node dataset".into(),
        ));
    }
    let d = source.cols();
    let n = source.rows() + target.rows();
    let mut out = Matrix::zeros(n, d + 1);
    for r in 0..source.rows() {
        out.row_mut(r)[..d].copy_from_slice(source.row(r));
        // F = 0 for observational (source) samples.
    }
    for r in 0..target.rows() {
        let dst = source.rows() + r;
        out.row_mut(dst)[..d].copy_from_slice(target.row(r));
        out.set(dst, d, 1.0);
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::SeededRng;

    fn chain_data(n: usize, seed: u64) -> Matrix {
        // x0 -> x1 -> x2 chain.
        let mut rng = SeededRng::new(seed);
        let mut m = Matrix::zeros(n, 3);
        for r in 0..n {
            let x0 = rng.normal(0.0, 1.0);
            let x1 = 1.5 * x0 + rng.normal(0.0, 0.4);
            let x2 = -1.2 * x1 + rng.normal(0.0, 0.4);
            m.set(r, 0, x0);
            m.set(r, 1, x1);
            m.set(r, 2, x2);
        }
        m
    }

    #[test]
    fn detects_chain_independencies() {
        let data = chain_data(2000, 1);
        let t = FisherZ::new(&data).unwrap();
        // Marginal x0, x2 dependent.
        assert!(!t.independent(0, 2, &[], 0.05).unwrap());
        // Given x1, x0 and x2 independent.
        assert!(t.independent(0, 2, &[1], 0.05).unwrap());
        // Adjacent pairs always dependent.
        assert!(!t.independent(0, 1, &[], 0.05).unwrap());
        assert!(!t.independent(1, 2, &[0], 0.05).unwrap());
    }

    #[test]
    fn rejects_tiny_datasets() {
        let m = Matrix::zeros(3, 2);
        assert!(matches!(
            FisherZ::new(&m),
            Err(CausalError::InsufficientData(_))
        ));
    }

    #[test]
    fn rejects_non_finite_cells_with_localization() {
        let mut m = chain_data(50, 4);
        m.set(17, 2, f64::NAN);
        assert_eq!(
            FisherZ::new(&m).unwrap_err(),
            CausalError::NonFinite { row: 17, col: 2 }
        );
        let mut m = chain_data(50, 5);
        m.set(3, 0, f64::INFINITY);
        assert_eq!(
            FisherZ::new(&m).unwrap_err(),
            CausalError::NonFinite { row: 3, col: 0 }
        );
    }

    #[test]
    fn tolerates_zero_variance_columns() {
        // A dead counter (constant column) must not break the test or leak
        // spurious dependence.
        let mut rng = SeededRng::new(5);
        let mut m = Matrix::zeros(500, 3);
        for r in 0..500 {
            m.set(r, 0, rng.normal(0.0, 1.0));
            m.set(r, 1, 7.5); // dead counter
            m.set(r, 2, rng.normal(0.0, 1.0));
        }
        let t = FisherZ::new(&m).unwrap();
        assert!(t.independent(0, 1, &[], 0.05).unwrap());
        // Conditioning on the dead counter behaves like not conditioning.
        let marginal = t.pvalue(0, 2, &[]).unwrap();
        let conditioned = t.pvalue(0, 2, &[1]).unwrap();
        assert!(conditioned.is_finite());
        assert!((marginal - conditioned).abs() < 0.05);
    }

    #[test]
    fn accessors() {
        let data = chain_data(100, 2);
        let t = FisherZ::new(&data).unwrap();
        assert_eq!(t.num_vars(), 3);
        assert_eq!(t.num_samples(), 100);
    }

    #[test]
    fn combine_with_fnode_layout() {
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let tgt = Matrix::from_rows(&[&[5.0, 6.0]]);
        let c = combine_with_fnode(&src, &tgt).unwrap();
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.get(0, 2), 0.0);
        assert_eq!(c.get(1, 2), 0.0);
        assert_eq!(c.get(2, 2), 1.0);
        assert_eq!(c.get(2, 0), 5.0);
    }

    #[test]
    fn combine_rejects_mismatched_widths() {
        let src = Matrix::zeros(2, 3);
        let tgt = Matrix::zeros(2, 4);
        assert!(matches!(
            combine_with_fnode(&src, &tgt),
            Err(CausalError::FeatureMismatch {
                source: 3,
                target: 4
            })
        ));
    }

    #[test]
    fn combine_rejects_empty_domains() {
        let src = Matrix::zeros(0, 2);
        let tgt = Matrix::zeros(2, 2);
        assert!(matches!(
            combine_with_fnode(&src, &tgt),
            Err(CausalError::InsufficientData(_))
        ));
    }

    #[test]
    fn fnode_correlates_with_shifted_feature() {
        let mut rng = SeededRng::new(3);
        let src = Matrix::from_fn(400, 2, |_, _| rng.normal(0.0, 1.0));
        let tgt = Matrix::from_fn(80, 2, |_, c| {
            if c == 0 {
                rng.normal(2.5, 1.0)
            } else {
                rng.normal(0.0, 1.0)
            }
        });
        let combined = combine_with_fnode(&src, &tgt).unwrap();
        let t = FisherZ::new(&combined).unwrap();
        let f = 2; // F-node index
        assert!(
            !t.independent(0, f, &[], 0.01).unwrap(),
            "shifted feature depends on F"
        );
        assert!(
            t.independent(1, f, &[], 0.01).unwrap(),
            "invariant feature independent of F"
        );
    }
}
