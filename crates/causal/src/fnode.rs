//! Targeted F-node search: identify the features intervened on by the
//! domain shift.
//!
//! This is the heart of the paper's FS method. Rather than learning the
//! whole causal graph over hundreds of features, only edges incident on the
//! F-node (domain indicator) are tested — the paper notes this is what makes
//! FS efficient ("these tests focus solely on direct relationships with the
//! F-node, rather than constructing the entire causal graph"). The F-node is
//! constrained to have no incoming edges, since it was added manually.
//!
//! The search mirrors the PC skeleton restricted to one node: start with
//! `F` adjacent to every feature, then for growing conditioning-set sizes
//! remove the edge `F - X` as soon as some subset `S` of the *other current
//! F-neighbours* renders `X ⟂ F | S`. Conditioning on F-neighbours is what
//! separates features that merely correlate with intervened features from
//! the intervention targets themselves (Eq. 2 of the paper:
//! `X ⟂ F | Pa(X)`).

use crate::ci::{combine_with_fnode, CondIndepTest, FisherZ};
use crate::graph::for_each_subset;
use crate::Result;
use fsda_linalg::par::{par_map, resolve_threads};
use fsda_linalg::Matrix;

/// Configuration of the F-node search.
#[derive(Debug, Clone)]
pub struct FnodeConfig {
    /// Significance level of the CI tests (features whose test rejects at
    /// this level remain F-neighbours, i.e. are declared variant).
    pub alpha: f64,
    /// Maximum conditioning-set size.
    pub max_cond_size: usize,
    /// Cap on the number of conditioning candidates per feature: the
    /// candidates are the other F-neighbours most correlated with the
    /// feature under test. Keeps the subset enumeration tractable at
    /// 442 features.
    pub max_candidates: usize,
    /// Fan the per-feature CI tests of each stage out to a worker pool.
    /// Every stage already evaluates features against a snapshot of the
    /// F-adjacency, so the result is bit-identical to the sequential path;
    /// only wall-clock changes.
    pub parallel: bool,
    /// Worker threads when `parallel` is set; `None` uses every available
    /// core. Ignored when `parallel` is `false`.
    pub num_threads: Option<usize>,
}

impl Default for FnodeConfig {
    fn default() -> Self {
        FnodeConfig {
            alpha: 0.01,
            max_cond_size: 1,
            max_candidates: 6,
            parallel: false,
            num_threads: None,
        }
    }
}

impl FnodeConfig {
    /// Worker count this configuration resolves to (1 when sequential).
    pub fn effective_threads(&self) -> usize {
        if self.parallel {
            resolve_threads(self.num_threads)
        } else {
            1
        }
    }
}

/// Outcome of the F-node search.
#[derive(Debug, Clone)]
pub struct FnodeResult {
    /// Indices of domain-variant features (the intervention targets `R`).
    pub variant: Vec<usize>,
    /// Indices of domain-invariant features (`V \ R`).
    pub invariant: Vec<usize>,
    /// Marginal correlation of each feature with the F-node (effect size).
    pub f_correlation: Vec<f64>,
    /// Number of CI tests performed.
    pub tests_run: usize,
}

impl FnodeResult {
    /// Fraction of features declared variant.
    pub fn variant_fraction(&self) -> f64 {
        let total = self.variant.len() + self.invariant.len();
        if total == 0 {
            return 0.0;
        }
        self.variant.len() as f64 / total as f64
    }
}

/// Identifies the features intervened on by the domain shift.
///
/// `source` and `target` are feature matrices (rows are samples) over the
/// same feature set. Returns the variant/invariant partition.
///
/// # Errors
///
/// Fails when the domains have mismatched widths, when either domain is
/// empty, or when a CI test degenerates numerically.
///
/// # Example
///
/// See the crate-level example.
pub fn find_intervened_features(
    source: &Matrix,
    target: &Matrix,
    config: &FnodeConfig,
) -> Result<FnodeResult> {
    let combined = combine_with_fnode(source, target)?;
    let test = FisherZ::new(&combined)?;
    find_intervened_features_with(&test, source.cols(), config)
}

/// Same as [`find_intervened_features`] but with a caller-supplied CI test
/// over the combined dataset, whose last variable must be the F-node.
///
/// # Errors
///
/// Propagates CI-test failures.
///
/// # Panics
///
/// Panics if `test.num_vars() != num_features + 1`.
pub fn find_intervened_features_with(
    test: &FisherZ,
    num_features: usize,
    config: &FnodeConfig,
) -> Result<FnodeResult> {
    staged_search(test, num_features, config, None)
}

/// The staged search shared by the cold and warm entry points.
///
/// `prefer` optionally marks features whose membership in the *previous*
/// skeleton should rank them first among conditioning candidates (causal
/// mechanism transfer: mechanisms persist across domains, so yesterday's
/// variant set is the best guess at today's mediators). `None` reproduces
/// the cold search bit-for-bit.
pub(crate) fn staged_search(
    test: &FisherZ,
    num_features: usize,
    config: &FnodeConfig,
    prefer: Option<&[bool]>,
) -> Result<FnodeResult> {
    assert_eq!(
        test.num_vars(),
        num_features + 1,
        "CI test must cover the features plus the trailing F-node"
    );
    if let Some(p) = prefer {
        assert_eq!(p.len(), num_features, "prefer mask must cover all features");
    }
    let f = num_features;
    let mut tests_run = 0usize;
    let threads = config.effective_threads();
    let features: Vec<usize> = (0..num_features).collect();

    // Effect sizes: marginal correlation with F. Each query is independent,
    // so the pool applies; errors propagate in feature order exactly as the
    // sequential loop would.
    let mut f_correlation = Vec::with_capacity(num_features);
    for r in par_map(threads, &features, |_, &x| test.partial_corr(x, f, &[])) {
        f_correlation.push(r?);
    }

    // Stage 0: marginal tests — the initial F-adjacency.
    let stage_start = fsda_telemetry::enabled().then(std::time::Instant::now);
    let mut adjacent: Vec<bool> = Vec::with_capacity(num_features);
    for r in par_map(threads, &features, |_, &x| {
        test.independent(x, f, &[], config.alpha)
    }) {
        tests_run += 1;
        adjacent.push(!r?);
    }
    if let Some(start) = stage_start {
        fsda_telemetry::duration("causal.fnode.stage0.seconds", start.elapsed().as_secs_f64());
    }

    // Stages 1..=max_cond_size: condition on other current F-neighbours.
    for cond_size in 1..=config.max_cond_size {
        let stage_start = fsda_telemetry::enabled().then(std::time::Instant::now);
        // PC-stable style: snapshot the adjacency for this stage so the
        // outcome depends on neither feature iteration order nor the worker
        // schedule — each feature is a pure function of the snapshot.
        let snapshot: Vec<usize> = (0..num_features).filter(|&x| adjacent[x]).collect();
        if snapshot.len() <= cond_size {
            break;
        }
        let outcomes = par_map(threads, &snapshot, |_, &x| {
            evaluate_feature(test, &snapshot, x, f, cond_size, config, prefer)
        });
        // Sequential fold in snapshot (ascending feature) order: the test
        // counter, error propagation, and adjacency updates all happen here.
        for (&x, (local_tests, separated, err)) in snapshot.iter().zip(outcomes) {
            tests_run += local_tests;
            if let Some(e) = err {
                return Err(e);
            }
            if separated {
                adjacent[x] = false;
            }
        }
        if let Some(start) = stage_start {
            fsda_telemetry::duration(
                &format!("causal.fnode.stage{cond_size}.seconds"),
                start.elapsed().as_secs_f64(),
            );
        }
    }

    let variant: Vec<usize> = (0..num_features).filter(|&x| adjacent[x]).collect();
    let invariant: Vec<usize> = (0..num_features).filter(|&x| !adjacent[x]).collect();
    fsda_telemetry::counter("causal.fnode.ci_tests", tests_run as u64);
    fsda_telemetry::counter("causal.fnode.searches", 1);
    fsda_telemetry::gauge("causal.fnode.variant_features", variant.len() as f64);
    Ok(FnodeResult {
        variant,
        invariant,
        f_correlation,
        tests_run,
    })
}

/// Evaluates one feature against one stage's F-adjacency snapshot: ranks the
/// other F-neighbours as conditioning candidates and searches size-`cond_size`
/// subsets for one separating `x` from the F-node.
///
/// Pure function of its arguments — the unit of work handed to the pool.
/// Returns `(tests_performed, separated, first_error)`.
fn evaluate_feature(
    test: &FisherZ,
    snapshot: &[usize],
    x: usize,
    f: usize,
    cond_size: usize,
    config: &FnodeConfig,
    prefer: Option<&[bool]>,
) -> (usize, bool, Option<crate::CausalError>) {
    // Conditioning candidates: other F-neighbours, ranked by
    // |corr(candidate, x)| so the most plausible mediators are tried first,
    // truncated for tractability. A warm start additionally ranks members
    // of the previous skeleton ahead of newcomers (stable sort: ties keep
    // the correlation order), so separating sets are found in fewer subsets
    // when the drift mechanism persists.
    let mut scored: Vec<(usize, f64)> = snapshot
        .iter()
        .copied()
        .filter(|&c| c != x)
        .map(|c| {
            let r = test.partial_corr(c, x, &[]).unwrap_or(0.0);
            (c, r.abs())
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    if let Some(p) = prefer {
        scored.sort_by_key(|&(c, _)| !p[c]);
    }
    let candidates: Vec<usize> = scored
        .into_iter()
        .take(config.max_candidates)
        .map(|(c, _)| c)
        .collect();
    if candidates.len() < cond_size {
        return (0, false, None);
    }
    let mut err: Option<crate::CausalError> = None;
    let mut local_tests = 0usize;
    let separated = for_each_subset(&candidates, cond_size, |cond| {
        local_tests += 1;
        match test.independent(x, f, cond, config.alpha) {
            Ok(true) => true,
            Ok(false) => false,
            Err(e) => {
                err = Some(e);
                true
            }
        }
    });
    (local_tests, separated && err.is_none(), err)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::SeededRng;

    /// Source: x0..x4 from a small SCM. Target: soft intervention shifts the
    /// mechanism of x1 (mean shift) and x3 (scale change); x2 is a child of
    /// x1 so it shifts *indirectly* but should be separated by conditioning
    /// on x1.
    fn two_domain_data(n_src: usize, n_tgt: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let gen = |rng: &mut SeededRng, shift: bool| {
            let x0 = rng.normal(0.0, 1.0);
            let x1 = if shift {
                rng.normal(3.0, 1.0)
            } else {
                rng.normal(0.0, 1.0)
            };
            let x2 = 1.2 * x1 + rng.normal(0.0, 0.4);
            let x3 = if shift {
                rng.normal(0.0, 3.0)
            } else {
                rng.normal(0.0, 1.0)
            };
            let x4 = 0.8 * x0 + rng.normal(0.0, 0.4);
            [x0, x1, x2, x3, x4]
        };
        let mut src = Matrix::zeros(n_src, 5);
        for r in 0..n_src {
            src.row_mut(r).copy_from_slice(&gen(&mut rng, false));
        }
        let mut tgt = Matrix::zeros(n_tgt, 5);
        for r in 0..n_tgt {
            tgt.row_mut(r).copy_from_slice(&gen(&mut rng, true));
        }
        (src, tgt)
    }

    #[test]
    fn identifies_mean_shift_target() {
        let (src, tgt) = two_domain_data(1000, 200, 1);
        let res = find_intervened_features(&src, &tgt, &FnodeConfig::default()).unwrap();
        assert!(
            res.variant.contains(&1),
            "x1 (mean-shifted) must be variant: {:?}",
            res.variant
        );
        assert!(res.invariant.contains(&0), "x0 is invariant");
        assert!(res.invariant.contains(&4), "x4 is invariant");
    }

    #[test]
    fn separates_descendant_of_intervened_feature() {
        // x2 = f(x1): marginally shifted, but x2 ⟂ F | x1, so conditioning
        // should remove it from the variant set.
        let (src, tgt) = two_domain_data(3000, 600, 2);
        let cfg = FnodeConfig {
            alpha: 0.01,
            max_cond_size: 1,
            max_candidates: 10,
            ..FnodeConfig::default()
        };
        let res = find_intervened_features(&src, &tgt, &cfg).unwrap();
        assert!(res.variant.contains(&1));
        assert!(
            res.invariant.contains(&2),
            "x2 should be separated by conditioning on x1: variant={:?}",
            res.variant
        );
    }

    #[test]
    fn no_shift_means_no_variant_features() {
        let mut rng = SeededRng::new(3);
        let src = Matrix::from_fn(800, 4, |_, _| rng.normal(0.0, 1.0));
        let tgt = Matrix::from_fn(160, 4, |_, _| rng.normal(0.0, 1.0));
        let cfg = FnodeConfig {
            alpha: 0.001,
            ..FnodeConfig::default()
        };
        let res = find_intervened_features(&src, &tgt, &cfg).unwrap();
        assert!(
            res.variant.len() <= 1,
            "identical domains should yield (almost) no variant features: {:?}",
            res.variant
        );
    }

    #[test]
    fn more_target_samples_find_more_variant_features() {
        // A weak shift that is statistically invisible with 1 shot but
        // detectable with many — mirrors the paper's §VI-C observation that
        // FS finds more variant features as target samples grow.
        let build = |n_tgt: usize, seed: u64| {
            let mut rng = SeededRng::new(seed);
            let src = Matrix::from_fn(500, 6, |_, _| rng.normal(0.0, 1.0));
            let tgt = Matrix::from_fn(n_tgt, 6, |_, c| {
                if c < 3 {
                    rng.normal(0.9, 1.0) // weak shift on x0..x2
                } else {
                    rng.normal(0.0, 1.0)
                }
            });
            (src, tgt)
        };
        let cfg = FnodeConfig::default();
        let counts: Vec<usize> = [4usize, 60]
            .iter()
            .map(|&n| {
                let (src, tgt) = build(n, 7);
                find_intervened_features(&src, &tgt, &cfg)
                    .unwrap()
                    .variant
                    .len()
            })
            .collect();
        assert!(
            counts[1] >= counts[0],
            "detection count should not decrease with more samples: {counts:?}"
        );
        assert!(
            counts[1] >= 2,
            "large sample should detect the shifted block: {counts:?}"
        );
    }

    #[test]
    fn result_partition_is_complete_and_disjoint() {
        let (src, tgt) = two_domain_data(400, 80, 4);
        let res = find_intervened_features(&src, &tgt, &FnodeConfig::default()).unwrap();
        let mut all: Vec<usize> = res.variant.iter().chain(&res.invariant).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..5).collect::<Vec<_>>());
        assert_eq!(res.f_correlation.len(), 5);
        assert!(res.tests_run >= 5);
        let frac = res.variant_fraction();
        assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn mismatched_domains_error() {
        let src = Matrix::zeros(10, 3);
        let tgt = Matrix::zeros(10, 4);
        assert!(find_intervened_features(&src, &tgt, &FnodeConfig::default()).is_err());
    }
}
