//! Graph structures for constraint-based causal discovery.

use std::collections::BTreeSet;

/// Edge mark between two adjacent nodes of a partially-directed graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Undirected `a - b`.
    Undirected,
    /// Directed `a -> b` (stored on the ordered pair).
    Directed,
}

/// A partially-directed graph (CPDAG during PC) over `n` nodes.
///
/// Adjacency is kept as a dense symmetric boolean structure plus a set of
/// directed marks; node count is small (features of one dataset), so the
/// dense representation is simplest and fast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// `adj[i*n + j]` — i and j are adjacent (symmetric).
    adj: Vec<bool>,
    /// `dir[i*n + j]` — edge is oriented i -> j.
    dir: Vec<bool>,
}

impl Graph {
    /// Creates an empty graph over `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            n,
            adj: vec![false; n * n],
            dir: vec![false; n * n],
        }
    }

    /// Creates the complete undirected graph over `n` nodes.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g.adj[i * n + j] = true;
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of (undirected-counted-once) edges.
    pub fn num_edges(&self) -> usize {
        let mut count = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.adj[i * self.n + j] {
                    count += 1;
                }
            }
        }
        count
    }

    /// True when `i` and `j` are adjacent (in either direction).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "adjacent: node out of bounds");
        self.adj[i * self.n + j]
    }

    /// Adds an undirected edge `i - j`.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds or `i == j`.
    pub fn add_edge(&mut self, i: usize, j: usize) {
        assert!(
            i < self.n && j < self.n && i != j,
            "add_edge: invalid pair ({i},{j})"
        );
        self.adj[i * self.n + j] = true;
        self.adj[j * self.n + i] = true;
    }

    /// Removes any edge between `i` and `j`.
    pub fn remove_edge(&mut self, i: usize, j: usize) {
        self.adj[i * self.n + j] = false;
        self.adj[j * self.n + i] = false;
        self.dir[i * self.n + j] = false;
        self.dir[j * self.n + i] = false;
    }

    /// Orients an existing edge as `i -> j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` and `j` are not adjacent.
    pub fn orient(&mut self, i: usize, j: usize) {
        assert!(self.adjacent(i, j), "orient: ({i},{j}) not adjacent");
        self.dir[i * self.n + j] = true;
        self.dir[j * self.n + i] = false;
    }

    /// True when the edge is oriented `i -> j`.
    pub fn is_directed(&self, i: usize, j: usize) -> bool {
        self.adj[i * self.n + j] && self.dir[i * self.n + j]
    }

    /// True when `i - j` is adjacent and not oriented either way.
    pub fn is_undirected(&self, i: usize, j: usize) -> bool {
        self.adj[i * self.n + j] && !self.dir[i * self.n + j] && !self.dir[j * self.n + i]
    }

    /// All neighbours of `i` (regardless of orientation), ascending.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        (0..self.n)
            .filter(|&j| j != i && self.adj[i * self.n + j])
            .collect()
    }

    /// Parents of `i`: nodes `p` with `p -> i`.
    pub fn parents(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&p| self.is_directed(p, i)).collect()
    }

    /// Children of `i`: nodes `c` with `i -> c`.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.n).filter(|&c| self.is_directed(i, c)).collect()
    }

    /// True when the directed part of the graph contains a path `from -> ... -> to`.
    pub fn has_directed_path(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.n];
        while let Some(u) = stack.pop() {
            if u == to {
                return true;
            }
            if seen[u] {
                continue;
            }
            seen[u] = true;
            for c in self.children(u) {
                stack.push(c);
            }
        }
        false
    }
}

/// Separating sets recorded during skeleton discovery: `sepset(i, j)` is the
/// conditioning set that rendered `i` and `j` independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SepSets {
    inner: std::collections::BTreeMap<(usize, usize), BTreeSet<usize>>,
}

impl SepSets {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(i: usize, j: usize) -> (usize, usize) {
        if i < j {
            (i, j)
        } else {
            (j, i)
        }
    }

    /// Records the separating set for the pair `(i, j)`.
    pub fn insert(&mut self, i: usize, j: usize, set: impl IntoIterator<Item = usize>) {
        self.inner
            .insert(Self::key(i, j), set.into_iter().collect());
    }

    /// Returns the separating set for `(i, j)` if one was recorded.
    pub fn get(&self, i: usize, j: usize) -> Option<&BTreeSet<usize>> {
        self.inner.get(&Self::key(i, j))
    }

    /// True when a separating set was recorded and contains `k`.
    pub fn contains(&self, i: usize, j: usize, k: usize) -> bool {
        self.get(i, j).is_some_and(|s| s.contains(&k))
    }

    /// Number of recorded pairs.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no pair has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

/// Enumerates all size-`k` subsets of `items`, invoking `f` on each;
/// stops early (returning `true`) when `f` returns `true`.
///
/// Used by PC to iterate candidate conditioning sets deterministically.
pub fn for_each_subset(items: &[usize], k: usize, mut f: impl FnMut(&[usize]) -> bool) -> bool {
    fn rec(
        items: &[usize],
        k: usize,
        start: usize,
        current: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]) -> bool,
    ) -> bool {
        if current.len() == k {
            return f(current);
        }
        for idx in start..items.len() {
            current.push(items[idx]);
            if rec(items, k, idx + 1, current, f) {
                return true;
            }
            current.pop();
        }
        false
    }
    if k > items.len() {
        return false;
    }
    let mut current = Vec::with_capacity(k);
    rec(items, k, 0, &mut current, &mut f)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_complete() {
        let e = Graph::empty(4);
        assert_eq!(e.num_edges(), 0);
        let c = Graph::complete(4);
        assert_eq!(c.num_edges(), 6);
        assert!(c.adjacent(0, 3));
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        assert!(g.adjacent(0, 1) && g.adjacent(1, 0));
        assert!(g.is_undirected(0, 1));
        g.remove_edge(0, 1);
        assert!(!g.adjacent(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn orientation() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        g.orient(0, 1);
        assert!(g.is_directed(0, 1));
        assert!(!g.is_directed(1, 0));
        assert!(!g.is_undirected(0, 1));
        assert_eq!(g.parents(1), vec![0]);
        assert_eq!(g.children(0), vec![1]);
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Graph::empty(5);
        g.add_edge(2, 4);
        g.add_edge(2, 0);
        assert_eq!(g.neighbors(2), vec![0, 4]);
    }

    #[test]
    fn directed_path_detection() {
        let mut g = Graph::empty(4);
        g.add_edge(0, 1);
        g.orient(0, 1);
        g.add_edge(1, 2);
        g.orient(1, 2);
        g.add_edge(3, 2);
        assert!(g.has_directed_path(0, 2));
        assert!(!g.has_directed_path(2, 0));
        assert!(!g.has_directed_path(0, 3));
    }

    #[test]
    fn sepsets_symmetric_key() {
        let mut s = SepSets::new();
        s.insert(3, 1, [7, 8]);
        assert!(s.get(1, 3).is_some());
        assert!(s.contains(3, 1, 7));
        assert!(!s.contains(3, 1, 9));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn subsets_enumeration_counts() {
        let items = [1, 2, 3, 4];
        let mut count = 0;
        for_each_subset(&items, 2, |_| {
            count += 1;
            false
        });
        assert_eq!(count, 6);
        // k = 0 yields exactly the empty set.
        let mut zero = 0;
        for_each_subset(&items, 0, |s| {
            assert!(s.is_empty());
            zero += 1;
            false
        });
        assert_eq!(zero, 1);
        // k > len yields nothing.
        assert!(!for_each_subset(&items, 5, |_| true));
    }

    #[test]
    fn subsets_early_stop() {
        let items = [0, 1, 2];
        let mut seen = 0;
        let stopped = for_each_subset(&items, 1, |s| {
            seen += 1;
            s[0] == 1
        });
        assert!(stopped);
        assert_eq!(seen, 2);
    }

    #[test]
    #[should_panic(expected = "invalid pair")]
    fn self_loop_rejected() {
        Graph::empty(2).add_edge(1, 1);
    }
}
