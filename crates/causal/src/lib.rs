//! Constraint-based causal discovery for the `fsda` workspace.
//!
//! The paper's feature-separation (FS) method casts domain shift as *soft
//! interventions* on an unknown subset of features: source samples are
//! observational data, target samples are interventional data, and an added
//! **F-node** (the domain indicator) is connected — in the causal graph over
//! the combined dataset — exactly to the features whose mechanisms the shift
//! altered. Identifying the F-node's neighbours therefore identifies the
//! domain-variant features.
//!
//! This crate provides the machinery:
//!
//! * [`ci`] — conditional-independence testing (Fisher-z on partial
//!   correlations, with the binary F-node handled as a 0/1 variable).
//! * [`graph`] — undirected/partially-directed graph structures with
//!   separating-set bookkeeping.
//! * [`pc`] — the full PC algorithm (skeleton, v-structures, Meek rules),
//!   usable on its own for whole-graph discovery.
//! * [`fnode`] — the Ψ-FCI-inspired *targeted* search the paper actually
//!   runs: only edges incident on the F-node are tested, which is what makes
//!   FS tractable on 442-feature data.
//! * [`score`] — precision/recall/F1 of a detected intervention-target set
//!   against a known ground truth (SCM-generated data records one).
//! * [`warm`] — cached CI-test sufficient statistics for warm-started
//!   re-detection: the source-side moments are folded once, each new target
//!   window merges in `O(n_tgt · d²)`, and the staged search is seeded with
//!   the previous skeleton.
//!
//! # Example
//!
//! ```
//! use fsda_linalg::{Matrix, SeededRng};
//! use fsda_causal::fnode::{FnodeConfig, find_intervened_features};
//!
//! // Source: x0 ~ N(0,1); target: x0 ~ N(3,1). x1 invariant.
//! let mut rng = SeededRng::new(1);
//! let src = Matrix::from_fn(300, 2, |_, _| rng.normal(0.0, 1.0));
//! let tgt = Matrix::from_fn(60, 2, |_, c| if c == 0 { rng.normal(3.0, 1.0) } else { rng.normal(0.0, 1.0) });
//! let result = find_intervened_features(&src, &tgt, &FnodeConfig::default())?;
//! assert!(result.variant.contains(&0));
//! assert!(!result.variant.contains(&1));
//! # Ok::<(), fsda_causal::CausalError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod ci;
pub mod fnode;
pub mod graph;
pub mod pc;
pub mod score;
pub mod warm;

pub use graph::Graph;

/// Errors from causal-discovery routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CausalError {
    /// Input data was empty or too small for the requested test.
    InsufficientData(String),
    /// The two domains have different feature counts.
    FeatureMismatch {
        /// Feature count in the source domain.
        source: usize,
        /// Feature count in the target domain.
        target: usize,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(String),
    /// The input data contains a NaN/Inf cell; the payload localizes it.
    NonFinite {
        /// Row index of the first offending cell.
        row: usize,
        /// Column index of the first offending cell.
        col: usize,
    },
}

impl std::fmt::Display for CausalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CausalError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            CausalError::FeatureMismatch { source, target } => {
                write!(
                    f,
                    "feature count mismatch: source {source} vs target {target}"
                )
            }
            CausalError::Linalg(msg) => write!(f, "linear algebra failure: {msg}"),
            CausalError::NonFinite { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
        }
    }
}

impl std::error::Error for CausalError {}

impl From<fsda_linalg::LinalgError> for CausalError {
    fn from(e: fsda_linalg::LinalgError) -> Self {
        CausalError::Linalg(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CausalError>;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = CausalError::FeatureMismatch {
            source: 3,
            target: 4,
        };
        assert!(e.to_string().contains('3'));
        assert!(!CausalError::InsufficientData("x".into())
            .to_string()
            .is_empty());
    }

    #[test]
    fn linalg_error_converts() {
        let e: CausalError = fsda_linalg::LinalgError::Singular.into();
        assert!(matches!(e, CausalError::Linalg(_)));
    }
}
