//! The PC algorithm: skeleton discovery, v-structure orientation, and Meek
//! rules.
//!
//! The paper replaces Ψ-FCI's FCI step with PC because the network datasets
//! have "numerous observable features" and no latent confounders are
//! assumed. This module implements the general algorithm; the F-node search
//! in [`crate::fnode`] reuses the same skeleton logic restricted to one
//! node's adjacencies.

use crate::ci::CondIndepTest;
use crate::graph::{for_each_subset, Graph, SepSets};
use crate::Result;
use fsda_linalg::par::{par_map, resolve_threads};

/// Configuration for [`pc`].
///
/// # Parallel vs sequential equivalence
///
/// The skeleton phase is *PC-stable*: each conditioning-set-size round
/// tests every surviving edge against a snapshot of the adjacency taken at
/// the start of the round, and removals are applied afterwards in canonical
/// edge order. Because every edge's test is then a pure function of the
/// snapshot, fanning the edges out to a worker pool cannot change the
/// result — `parallel` is a pure performance knob:
///
/// ```
/// use fsda_causal::ci::FisherZ;
/// use fsda_causal::pc::{pc, PcConfig};
/// use fsda_linalg::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(7);
/// let data = Matrix::from_fn(500, 6, |_, c| {
///     let base = rng.normal(0.0, 1.0);
///     if c % 2 == 1 { 0.9 * base + rng.normal(0.0, 0.5) } else { base }
/// });
/// let test = FisherZ::new(&data)?;
/// let seq = pc(&test, &PcConfig::default())?;
/// let par = pc(&test, &PcConfig { parallel: true, num_threads: Some(4), ..PcConfig::default() })?;
/// assert_eq!(seq.graph, par.graph);
/// assert_eq!(seq.sepsets, par.sepsets);
/// assert_eq!(seq.tests_run, par.tests_run);
/// # Ok::<(), fsda_causal::CausalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PcConfig {
    /// Significance level for the CI tests.
    pub alpha: f64,
    /// Maximum conditioning-set size during skeleton discovery.
    pub max_cond_size: usize,
    /// Fan each round's edge-wise CI tests out to a worker pool. The
    /// output is bit-identical to the sequential path (see the type-level
    /// docs); only wall-clock changes.
    pub parallel: bool,
    /// Worker threads when `parallel` is set; `None` uses every available
    /// core. Ignored when `parallel` is `false`.
    pub num_threads: Option<usize>,
}

impl Default for PcConfig {
    fn default() -> Self {
        PcConfig {
            alpha: 0.01,
            max_cond_size: 3,
            parallel: false,
            num_threads: None,
        }
    }
}

impl PcConfig {
    /// Worker count this configuration resolves to (1 when sequential).
    pub fn effective_threads(&self) -> usize {
        if self.parallel {
            resolve_threads(self.num_threads)
        } else {
            1
        }
    }
}

/// Output of the PC algorithm: a CPDAG and the separating sets found.
#[derive(Debug, Clone)]
pub struct PcResult {
    /// The learned CPDAG.
    pub graph: Graph,
    /// Separating sets recorded when edges were removed.
    pub sepsets: SepSets,
    /// Number of CI tests performed (for the running-time analysis).
    pub tests_run: usize,
}

/// Runs the PC algorithm with the given CI oracle.
///
/// # Errors
///
/// Propagates failures of the CI test (e.g. numerically singular
/// conditioning sets).
pub fn pc(test: &dyn CondIndepTest, config: &PcConfig) -> Result<PcResult> {
    let (graph, sepsets, tests_run) = skeleton(test, config, None)?;
    let mut result = PcResult {
        graph,
        sepsets,
        tests_run,
    };
    orient_v_structures(&mut result.graph, &result.sepsets);
    apply_meek_rules(&mut result.graph);
    Ok(result)
}

/// Skeleton phase of PC.
///
/// When `forbidden_outgoing` is `Some(f)`, node `f` is treated as a root
/// with no outgoing edges — used for the manually-added F-node, which can
/// influence features but cannot be influenced by them.
///
/// Returns the skeleton (undirected graph), separating sets, and the number
/// of CI tests performed.
pub(crate) fn skeleton(
    test: &dyn CondIndepTest,
    config: &PcConfig,
    _forbidden_outgoing: Option<usize>,
) -> Result<(Graph, SepSets, usize)> {
    let n = test.num_vars();
    let mut graph = Graph::complete(n);
    let mut sepsets = SepSets::new();
    let mut tests_run = 0usize;
    let threads = config.effective_threads();
    for cond_size in 0..=config.max_cond_size {
        // Telemetry: time each PC-stable round; the format! only runs when
        // a recorder is installed, so uninstrumented searches stay free.
        let round_start = fsda_telemetry::enabled().then(std::time::Instant::now);
        // PC-stable: snapshot the adjacency at the start of the round. Every
        // edge is tested against this snapshot, so the per-edge outcomes are
        // independent of both each other and the evaluation schedule — which
        // is what makes the parallel fan-out below exact rather than
        // approximate.
        let neighbors: Vec<Vec<usize>> = (0..n).map(|i| graph.neighbors(i)).collect();
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|&(i, j)| graph.adjacent(i, j))
            .collect();
        let outcomes = par_map(threads, &edges, |_, &(i, j)| {
            evaluate_edge(test, &neighbors, i, j, cond_size, config.alpha)
        });
        // Apply results sequentially in canonical (i < j lexicographic) edge
        // order: removals, sepset insertions, the test counter, and error
        // propagation all happen here, so the fold is identical for every
        // thread count.
        let mut removed_any = false;
        for (&(i, j), outcome) in edges.iter().zip(outcomes) {
            tests_run += outcome.tests;
            if let Some(e) = outcome.err {
                return Err(e);
            }
            if let Some((a, b, sep)) = outcome.removal {
                graph.remove_edge(i, j);
                sepsets.insert(a, b, sep);
                removed_any = true;
            }
        }
        if let Some(start) = round_start {
            fsda_telemetry::duration(
                &format!("causal.pc.depth{cond_size}.seconds"),
                start.elapsed().as_secs_f64(),
            );
        }
        if !removed_any && cond_size > 0 {
            break;
        }
    }
    fsda_telemetry::counter("causal.pc.ci_tests", tests_run as u64);
    fsda_telemetry::counter("causal.pc.searches", 1);
    Ok((graph, sepsets, tests_run))
}

/// Result of testing one edge against one round's adjacency snapshot.
struct EdgeOutcome {
    /// CI tests performed while evaluating this edge.
    tests: usize,
    /// `Some((a, b, sepset))` when a separating set was found; `(a, b)` is
    /// the direction whose candidate set produced it.
    removal: Option<(usize, usize, Vec<usize>)>,
    /// First CI-test failure, if any (wins over `removal`).
    err: Option<crate::CausalError>,
}

/// Tests edge `(i, j)` against the round snapshot: for each direction, every
/// size-`cond_size` subset of the snapshot neighbours of the near endpoint
/// (minus the far endpoint) is tried until one separates the pair.
///
/// Pure function of its arguments — this is the unit of work handed to the
/// worker pool, and the reason the pool needs nothing beyond `&self` access
/// to the oracle.
fn evaluate_edge(
    test: &dyn CondIndepTest,
    neighbors: &[Vec<usize>],
    i: usize,
    j: usize,
    cond_size: usize,
    alpha: f64,
) -> EdgeOutcome {
    let mut tests = 0usize;
    for &(a, b) in &[(i, j), (j, i)] {
        let mut candidates = neighbors[a].clone();
        candidates.retain(|&k| k != b);
        if candidates.len() < cond_size {
            continue;
        }
        let mut err: Option<crate::CausalError> = None;
        let mut sep: Option<Vec<usize>> = None;
        for_each_subset(&candidates, cond_size, |cond| {
            tests += 1;
            match test.independent(a, b, cond, alpha) {
                Ok(true) => {
                    sep = Some(cond.to_vec());
                    true
                }
                Ok(false) => false,
                Err(e) => {
                    err = Some(e);
                    true
                }
            }
        });
        if err.is_some() {
            return EdgeOutcome {
                tests,
                removal: None,
                err,
            };
        }
        if let Some(sep) = sep {
            return EdgeOutcome {
                tests,
                removal: Some((a, b, sep)),
                err: None,
            };
        }
    }
    EdgeOutcome {
        tests,
        removal: None,
        err: None,
    }
}

/// Orients unshielded colliders `i -> k <- j` where `k` is not in
/// `sepset(i, j)`.
pub fn orient_v_structures(graph: &mut Graph, sepsets: &SepSets) {
    let n = graph.num_nodes();
    for k in 0..n {
        let neigh = graph.neighbors(k);
        for (a_idx, &i) in neigh.iter().enumerate() {
            for &j in &neigh[a_idx + 1..] {
                if graph.adjacent(i, j) {
                    continue; // shielded
                }
                if !sepsets.contains(i, j, k) && sepsets.get(i, j).is_some() {
                    // Only orient if it does not contradict existing marks.
                    if !graph.is_directed(k, i) {
                        graph.orient(i, k);
                    }
                    if !graph.is_directed(k, j) {
                        graph.orient(j, k);
                    }
                }
            }
        }
    }
}

/// Applies Meek's orientation rules R1–R3 until fixpoint.
pub fn apply_meek_rules(graph: &mut Graph) {
    let n = graph.num_nodes();
    loop {
        let mut changed = false;
        for a in 0..n {
            for b in 0..n {
                if a == b || !graph.is_undirected(a, b) {
                    continue;
                }
                // R1: c -> a - b with c, b non-adjacent => a -> b.
                let r1 = graph
                    .parents(a)
                    .into_iter()
                    .any(|c| c != b && !graph.adjacent(c, b));
                if r1 {
                    graph.orient(a, b);
                    changed = true;
                    continue;
                }
                // R2: a -> c -> b and a - b => a -> b.
                let r2 = graph
                    .children(a)
                    .into_iter()
                    .any(|c| graph.is_directed(c, b));
                if r2 {
                    graph.orient(a, b);
                    changed = true;
                    continue;
                }
                // R3: a - c1 -> b, a - c2 -> b, c1/c2 non-adjacent => a -> b.
                let cs: Vec<usize> = (0..n)
                    .filter(|&c| {
                        c != a && c != b && graph.is_undirected(a, c) && graph.is_directed(c, b)
                    })
                    .collect();
                let mut r3 = false;
                'outer: for (x, &c1) in cs.iter().enumerate() {
                    for &c2 in &cs[x + 1..] {
                        if !graph.adjacent(c1, c2) {
                            r3 = true;
                            break 'outer;
                        }
                    }
                }
                if r3 {
                    graph.orient(a, b);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ci::FisherZ;
    use fsda_linalg::{Matrix, SeededRng};

    /// Generates data from the collider x0 -> x2 <- x1.
    fn collider_data(n: usize, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        let mut m = Matrix::zeros(n, 3);
        for r in 0..n {
            let x0 = rng.normal(0.0, 1.0);
            let x1 = rng.normal(0.0, 1.0);
            let x2 = x0 + x1 + rng.normal(0.0, 0.3);
            m.set(r, 0, x0);
            m.set(r, 1, x1);
            m.set(r, 2, x2);
        }
        m
    }

    /// Chain x0 -> x1 -> x2.
    fn chain_data(n: usize, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        let mut m = Matrix::zeros(n, 3);
        for r in 0..n {
            let x0 = rng.normal(0.0, 1.0);
            let x1 = 1.3 * x0 + rng.normal(0.0, 0.5);
            let x2 = 0.9 * x1 + rng.normal(0.0, 0.5);
            m.set(r, 0, x0);
            m.set(r, 1, x1);
            m.set(r, 2, x2);
        }
        m
    }

    #[test]
    fn recovers_chain_skeleton() {
        let data = chain_data(3000, 1);
        let test = FisherZ::new(&data).unwrap();
        let result = pc(&test, &PcConfig::default()).unwrap();
        assert!(result.graph.adjacent(0, 1));
        assert!(result.graph.adjacent(1, 2));
        assert!(
            !result.graph.adjacent(0, 2),
            "chain endpoints must be separated by x1"
        );
        assert!(result.tests_run > 0);
    }

    #[test]
    fn recovers_collider_orientation() {
        let data = collider_data(3000, 2);
        let test = FisherZ::new(&data).unwrap();
        let result = pc(&test, &PcConfig::default()).unwrap();
        assert!(result.graph.adjacent(0, 2));
        assert!(result.graph.adjacent(1, 2));
        assert!(!result.graph.adjacent(0, 1));
        // Collider must be oriented into x2.
        assert!(result.graph.is_directed(0, 2), "x0 -> x2");
        assert!(result.graph.is_directed(1, 2), "x1 -> x2");
    }

    #[test]
    fn independent_variables_give_empty_graph() {
        let mut rng = SeededRng::new(3);
        let data = Matrix::from_fn(2000, 4, |_, _| rng.normal(0.0, 1.0));
        let test = FisherZ::new(&data).unwrap();
        let result = pc(
            &test,
            &PcConfig {
                alpha: 0.001,
                max_cond_size: 2,
                ..PcConfig::default()
            },
        )
        .unwrap();
        assert_eq!(result.graph.num_edges(), 0);
    }

    #[test]
    fn meek_r1_orients_chain_tail() {
        // c -> a - b, c/b non-adjacent: R1 gives a -> b.
        let mut g = Graph::empty(3);
        g.add_edge(0, 1); // c - a
        g.orient(0, 1); // c -> a
        g.add_edge(1, 2); // a - b
        apply_meek_rules(&mut g);
        assert!(g.is_directed(1, 2));
    }

    #[test]
    fn meek_r2_orients_transitive() {
        // a -> c -> b and a - b => a -> b.
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        g.orient(0, 1); // a -> c
        g.add_edge(1, 2);
        g.orient(1, 2); // c -> b
        g.add_edge(0, 2); // a - b
        apply_meek_rules(&mut g);
        assert!(g.is_directed(0, 2));
    }

    #[test]
    fn v_structure_requires_recorded_sepset() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        // No sepset recorded for (0,1): no orientation happens.
        let sepsets = SepSets::new();
        orient_v_structures(&mut g, &sepsets);
        assert!(g.is_undirected(0, 2));
        assert!(g.is_undirected(1, 2));
    }
}
