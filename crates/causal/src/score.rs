//! Target-recovery scoring: how well a detected intervention set matches
//! a known ground truth.
//!
//! SCM-generated data (`fsda_data::scm`, `fsda_data::scenario`) records
//! which feature columns the domain shift actually touched; this module
//! turns a detector's output into precision/recall/F1 against that set.
//! It is the scoring half of the scenario fuzzing harness — every sweep
//! cell calls [`score_target_recovery`] on the FS method's variant set.

use std::collections::BTreeSet;

/// Precision/recall/F1 of a detected intervention-target set against the
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryScore {
    /// Fraction of detected targets that are true targets. An empty
    /// detection is vacuously precise (1.0).
    pub precision: f64,
    /// Fraction of true targets that were detected. An empty ground truth
    /// is vacuously recalled (1.0).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f1: f64,
    /// Correctly detected targets.
    pub true_positives: usize,
    /// Detected columns that are not true targets.
    pub false_positives: usize,
    /// True targets the detector missed.
    pub false_negatives: usize,
}

/// Scores a detected target set against the known ground truth. Duplicate
/// column indices in either input count once.
///
/// The edge-case conventions match
/// `fsda_core::fs::FeatureSeparation::score_against`: empty detection →
/// precision 1.0, empty truth → recall 1.0.
///
/// # Example
///
/// ```
/// use fsda_causal::score::score_target_recovery;
///
/// let s = score_target_recovery(&[0, 3, 7], &[0, 3, 5]);
/// assert_eq!(s.true_positives, 2);
/// assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
/// assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn score_target_recovery(detected: &[usize], truth: &[usize]) -> RecoveryScore {
    let detected: BTreeSet<usize> = detected.iter().copied().collect();
    let truth: BTreeSet<usize> = truth.iter().copied().collect();
    let true_positives = detected.intersection(&truth).count();
    let false_positives = detected.len() - true_positives;
    let false_negatives = truth.len() - true_positives;
    let precision = if detected.is_empty() {
        1.0
    } else {
        true_positives as f64 / detected.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        true_positives as f64 / truth.len() as f64
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    RecoveryScore {
        precision,
        recall,
        f1,
        true_positives,
        false_positives,
        false_negatives,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recovery() {
        let s = score_target_recovery(&[1, 2, 3], &[3, 2, 1]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(
            (s.true_positives, s.false_positives, s.false_negatives),
            (3, 0, 0)
        );
    }

    #[test]
    fn partial_overlap() {
        let s = score_target_recovery(&[0, 1], &[1, 2, 3]);
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.f1 - 0.4).abs() < 1e-12);
        assert_eq!(
            (s.true_positives, s.false_positives, s.false_negatives),
            (1, 1, 2)
        );
    }

    #[test]
    fn empty_edge_cases() {
        let s = score_target_recovery(&[], &[1, 2]);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 0.0, 0.0));
        let s = score_target_recovery(&[1, 2], &[]);
        assert_eq!((s.precision, s.recall), (0.0, 1.0));
        let s = score_target_recovery(&[], &[]);
        assert_eq!((s.precision, s.recall, s.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn duplicates_count_once() {
        let s = score_target_recovery(&[1, 1, 1, 2], &[1, 2, 2]);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
    }
}
