//! Warm-started re-detection: cached CI-test sufficient statistics.
//!
//! A closed drift loop re-runs the F-node search every time the monitor
//! fires, but the *source* half of the combined dataset never changes —
//! only a small target window does. [`CiCache`] therefore precomputes the
//! source-side sufficient statistics (per-feature sums and the Gram matrix
//! of cross-products) **once**; each re-detection merges the cheap
//! `O(n_tgt · d²)` target contribution, assembles the combined correlation
//! matrix, and builds a [`FisherZ`] oracle without ever touching the source
//! rows again. For the usual regime (thousands of source rows, a few dozen
//! target shots) this removes the dominant `O(n_src · d²)` cost of a cold
//! [`FisherZ::new`] over the stacked dataset.
//!
//! [`find_intervened_features_warm`] additionally seeds the staged search
//! with the *previous* skeleton: features that were variant last time are
//! ranked first among conditioning candidates. Causal mechanism transfer
//! (Teshima et al., arXiv 2002.03497) is the justification — mechanisms
//! persist across domains, only the intervened nodes move — so yesterday's
//! skeleton is the best prior for today's mediators and separating sets are
//! found after enumerating fewer subsets.
//!
//! The warm path is deterministic (same cache + same window ⇒ same result)
//! but **not** bit-identical to the cold path: merging moments sums in a
//! different order than the two-pass
//! [`correlation_matrix`](fsda_linalg::stats::correlation_matrix), so
//! correlations may differ
//! in the last ulps. Callers that need the cold contract (or whose
//! feature count changed) must fall back to
//! [`find_intervened_features`](crate::fnode::find_intervened_features) —
//! `fsda_core` does exactly that when the cache dimension mismatches.

use crate::ci::FisherZ;
use crate::fnode::{staged_search, FnodeConfig, FnodeResult};
use crate::{CausalError, Result};
use fsda_linalg::Matrix;

/// Source-side sufficient statistics for the combined F-node dataset.
///
/// Built once from the (normalized) source feature matrix; every
/// re-detection against a new target window costs only the target-side
/// moments. The F-node column is implicit: source rows contribute `F = 0`,
/// so its sums and cross-products with the features come entirely from the
/// target window.
#[derive(Debug, Clone)]
pub struct CiCache {
    d: usize,
    n_src: usize,
    /// Per-feature sums over the source rows (length `d`).
    src_sums: Vec<f64>,
    /// Upper triangle of the source Gram matrix `Σ x_i x_j` (d × d).
    src_gram: Matrix,
}

impl CiCache {
    /// Accumulates the source-side statistics. `source` rows are samples.
    ///
    /// # Errors
    ///
    /// Returns [`CausalError::InsufficientData`] when `source` has fewer
    /// than three rows (the combined Fisher-z dataset needs at least four
    /// samples and a window contributes at least one) and
    /// [`CausalError::NonFinite`] — localized to the first offending cell —
    /// on NaN/Inf values, which would silently poison every later merge.
    pub fn new(source: &Matrix) -> Result<Self> {
        if source.rows() < 3 {
            return Err(CausalError::InsufficientData(format!(
                "CiCache needs >= 3 source rows, got {}",
                source.rows()
            )));
        }
        for (r, row) in source.iter_rows().enumerate() {
            if let Some(c) = row.iter().position(|v| !v.is_finite()) {
                return Err(CausalError::NonFinite { row: r, col: c });
            }
        }
        let d = source.cols();
        let mut src_sums = vec![0.0f64; d];
        let mut src_gram = Matrix::zeros(d, d);
        for row in source.iter_rows() {
            for i in 0..d {
                src_sums[i] += row[i];
                for j in i..d {
                    let v = src_gram.get(i, j) + row[i] * row[j];
                    src_gram.set(i, j, v);
                }
            }
        }
        Ok(CiCache {
            d,
            n_src: source.rows(),
            src_sums,
            src_gram,
        })
    }

    /// Number of features the cache was built over.
    pub fn num_features(&self) -> usize {
        self.d
    }

    /// Number of source rows folded into the cache.
    pub fn source_rows(&self) -> usize {
        self.n_src
    }

    /// Builds the Fisher-z oracle over `source ∪ target` + trailing F-node
    /// by merging the target window's moments into the cached source
    /// statistics. Cost is `O(n_tgt · d²)` — independent of `n_src`.
    ///
    /// # Errors
    ///
    /// Returns [`CausalError::FeatureMismatch`] when the window width
    /// differs from the cached feature count, [`CausalError::NonFinite`]
    /// (row/col localized to the *window*) on corrupt cells, and
    /// [`CausalError::InsufficientData`] on an empty window.
    pub fn fisher_z(&self, target: &Matrix) -> Result<FisherZ> {
        if target.cols() != self.d {
            return Err(CausalError::FeatureMismatch {
                source: self.d,
                target: target.cols(),
            });
        }
        if target.rows() == 0 {
            return Err(CausalError::InsufficientData(
                "warm re-detection needs a non-empty target window".into(),
            ));
        }
        for (r, row) in target.iter_rows().enumerate() {
            if let Some(c) = row.iter().position(|v| !v.is_finite()) {
                return Err(CausalError::NonFinite { row: r, col: c });
            }
        }
        let d = self.d;
        let n_tgt = target.rows();
        let n = self.n_src + n_tgt;

        // Merge moments over the d features + the trailing F-node. Source
        // rows have F = 0, so every F-term is a pure target-side quantity:
        // Σ F = n_tgt, Σ F² = n_tgt, Σ F·x_i = Σ_target x_i.
        let mut sums = vec![0.0f64; d + 1];
        sums[..d].copy_from_slice(&self.src_sums);
        let mut gram = Matrix::zeros(d + 1, d + 1);
        for i in 0..d {
            for j in i..d {
                gram.set(i, j, self.src_gram.get(i, j));
            }
        }
        let mut tgt_sums = vec![0.0f64; d];
        for row in target.iter_rows() {
            for i in 0..d {
                tgt_sums[i] += row[i];
                for j in i..d {
                    let v = gram.get(i, j) + row[i] * row[j];
                    gram.set(i, j, v);
                }
            }
        }
        for i in 0..d {
            sums[i] += tgt_sums[i];
            gram.set(i, d, tgt_sums[i]);
        }
        sums[d] = n_tgt as f64;
        gram.set(d, d, n_tgt as f64);

        // Moments → correlation, with the same degeneracy contract as
        // `fsda_linalg::stats::correlation_matrix`: identity diagonal,
        // r = 0 against (numerically) constant columns, clamped to [-1, 1].
        let nf = n as f64;
        let denom = (n - 1) as f64;
        let cov = |gram: &Matrix, sums: &[f64], i: usize, j: usize| -> f64 {
            let (a, b) = if i <= j { (i, j) } else { (j, i) };
            (gram.get(a, b) - sums[i] * sums[j] / nf) / denom
        };
        let mut corr = Matrix::identity(d + 1);
        // Moment subtraction can leave a tiny negative variance for
        // constant columns; clamp before the sqrt.
        let stds: Vec<f64> = (0..=d)
            .map(|i| cov(&gram, &sums, i, i).max(0.0).sqrt())
            .collect();
        for i in 0..=d {
            for j in (i + 1)..=d {
                let r = if stds[i] < 1e-12 || stds[j] < 1e-12 {
                    0.0
                } else {
                    (cov(&gram, &sums, i, j) / (stds[i] * stds[j])).clamp(-1.0, 1.0)
                };
                corr.set(i, j, r);
                corr.set(j, i, r);
            }
        }
        Ok(FisherZ::from_correlation(corr, n))
    }
}

/// Warm-started F-node search: cached source statistics + previous-skeleton
/// conditioning priority.
///
/// `prev_variant` is the variant set of the previous separation; its
/// members are ranked first among conditioning candidates (see the module
/// docs for why). Indices outside `0..cache.num_features()` are an error —
/// the caller's skeleton belongs to a different feature space and must cold
/// start instead.
///
/// # Errors
///
/// Propagates [`CiCache::fisher_z`] failures and rejects out-of-range
/// `prev_variant` indices with [`CausalError::FeatureMismatch`].
pub fn find_intervened_features_warm(
    cache: &CiCache,
    target: &Matrix,
    prev_variant: &[usize],
    config: &FnodeConfig,
) -> Result<FnodeResult> {
    let d = cache.num_features();
    if let Some(&bad) = prev_variant.iter().find(|&&x| x >= d) {
        return Err(CausalError::FeatureMismatch {
            source: d,
            target: bad + 1,
        });
    }
    let test = cache.fisher_z(target)?;
    let mut prefer = vec![false; d];
    for &x in prev_variant {
        prefer[x] = true;
    }
    let result = staged_search(&test, d, config, Some(&prefer))?;
    fsda_telemetry::counter("causal.fnode.warm_searches", 1);
    Ok(result)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ci::{combine_with_fnode, CondIndepTest};
    use crate::fnode::find_intervened_features;
    use fsda_linalg::stats::correlation_matrix;
    use fsda_linalg::SeededRng;

    /// Small SCM with a shifted block: x1 mean-shifted, x3 scale-shifted,
    /// x2 a child of x1 (indirectly shifted, separable by conditioning).
    fn two_domain_data(n_src: usize, n_tgt: usize, seed: u64) -> (Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let gen = |rng: &mut SeededRng, shift: bool| {
            let x0 = rng.normal(0.0, 1.0);
            let x1 = if shift {
                rng.normal(3.0, 1.0)
            } else {
                rng.normal(0.0, 1.0)
            };
            let x2 = 1.2 * x1 + rng.normal(0.0, 0.4);
            let x3 = if shift {
                rng.normal(0.0, 3.0)
            } else {
                rng.normal(0.0, 1.0)
            };
            let x4 = 0.8 * x0 + rng.normal(0.0, 0.4);
            [x0, x1, x2, x3, x4]
        };
        let mut src = Matrix::zeros(n_src, 5);
        for r in 0..n_src {
            src.row_mut(r).copy_from_slice(&gen(&mut rng, false));
        }
        let mut tgt = Matrix::zeros(n_tgt, 5);
        for r in 0..n_tgt {
            tgt.row_mut(r).copy_from_slice(&gen(&mut rng, true));
        }
        (src, tgt)
    }

    #[test]
    fn cached_correlation_matches_recomputed() {
        let (src, tgt) = two_domain_data(600, 120, 11);
        let cache = CiCache::new(&src).unwrap();
        let warm = cache.fisher_z(&tgt).unwrap();
        let combined = combine_with_fnode(&src, &tgt).unwrap();
        let cold = correlation_matrix(&combined).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                let a = warm.partial_corr(i, j, &[]).unwrap();
                let b = cold.get(i, j);
                assert!((a - b).abs() < 1e-9, "corr[{i}][{j}]: warm {a} vs cold {b}");
            }
        }
        assert_eq!(warm.num_samples(), 720);
        assert_eq!(warm.num_vars(), 6);
    }

    #[test]
    fn warm_search_matches_cold_partition() {
        let (src, tgt) = two_domain_data(2000, 300, 3);
        let cfg = FnodeConfig {
            max_candidates: 10,
            ..FnodeConfig::default()
        };
        let cold = find_intervened_features(&src, &tgt, &cfg).unwrap();
        let cache = CiCache::new(&src).unwrap();
        // Warm-start from the cold skeleton (the steady-state case).
        let warm = find_intervened_features_warm(&cache, &tgt, &cold.variant, &cfg).unwrap();
        assert_eq!(warm.variant, cold.variant, "partitions must agree");
        assert_eq!(warm.invariant, cold.invariant);
        // And from a stale/empty skeleton (first re-detection).
        let warm0 = find_intervened_features_warm(&cache, &tgt, &[], &cfg).unwrap();
        assert_eq!(warm0.variant, cold.variant);
    }

    #[test]
    fn warm_search_is_deterministic() {
        let (src, tgt) = two_domain_data(800, 150, 7);
        let cache = CiCache::new(&src).unwrap();
        let cfg = FnodeConfig::default();
        let a = find_intervened_features_warm(&cache, &tgt, &[1, 3], &cfg).unwrap();
        let b = find_intervened_features_warm(&cache, &tgt, &[1, 3], &cfg).unwrap();
        assert_eq!(a.variant, b.variant);
        assert_eq!(a.tests_run, b.tests_run);
        assert_eq!(a.f_correlation, b.f_correlation);
    }

    #[test]
    fn rejects_mismatched_window_width() {
        let (src, _) = two_domain_data(100, 10, 1);
        let cache = CiCache::new(&src).unwrap();
        let narrow = Matrix::zeros(10, 3);
        assert!(matches!(
            cache.fisher_z(&narrow),
            Err(CausalError::FeatureMismatch {
                source: 5,
                target: 3
            })
        ));
    }

    #[test]
    fn rejects_corrupt_window_with_localization() {
        let (src, mut tgt) = two_domain_data(100, 20, 2);
        tgt.set(7, 3, f64::NAN);
        assert_eq!(
            cache_err(&src, &tgt),
            CausalError::NonFinite { row: 7, col: 3 }
        );
        let (src, mut tgt) = two_domain_data(100, 20, 4);
        tgt.set(0, 1, f64::INFINITY);
        assert_eq!(
            cache_err(&src, &tgt),
            CausalError::NonFinite { row: 0, col: 1 }
        );
    }

    fn cache_err(src: &Matrix, tgt: &Matrix) -> CausalError {
        CiCache::new(src).unwrap().fisher_z(tgt).unwrap_err()
    }

    #[test]
    fn rejects_empty_window_and_stale_skeleton() {
        let (src, tgt) = two_domain_data(100, 10, 5);
        let cache = CiCache::new(&src).unwrap();
        assert!(matches!(
            cache.fisher_z(&Matrix::zeros(0, 5)),
            Err(CausalError::InsufficientData(_))
        ));
        assert!(matches!(
            find_intervened_features_warm(&cache, &tgt, &[9], &FnodeConfig::default()),
            Err(CausalError::FeatureMismatch { .. })
        ));
    }

    #[test]
    fn rejects_corrupt_or_tiny_source() {
        let mut src = Matrix::zeros(10, 3);
        src.set(4, 2, f64::NAN);
        assert_eq!(
            CiCache::new(&src).unwrap_err(),
            CausalError::NonFinite { row: 4, col: 2 }
        );
        assert!(matches!(
            CiCache::new(&Matrix::zeros(2, 3)),
            Err(CausalError::InsufficientData(_))
        ));
    }

    #[test]
    fn tolerates_constant_columns() {
        let mut rng = SeededRng::new(9);
        let src = Matrix::from_fn(
            300,
            3,
            |_, c| if c == 1 { 7.5 } else { rng.normal(0.0, 1.0) },
        );
        let tgt = Matrix::from_fn(
            60,
            3,
            |_, c| if c == 1 { 7.5 } else { rng.normal(0.0, 1.0) },
        );
        let cache = CiCache::new(&src).unwrap();
        let test = cache.fisher_z(&tgt).unwrap();
        // Dead counter correlates 0 with everything, including the F-node.
        assert_eq!(test.partial_corr(1, 3, &[]).unwrap(), 0.0);
        let res = find_intervened_features_warm(&cache, &tgt, &[], &FnodeConfig::default());
        assert!(res.is_ok());
    }
}
