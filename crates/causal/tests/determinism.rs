//! Parallel-vs-sequential equivalence tests.
//!
//! The parallel execution layer's contract (see `docs/ARCHITECTURE.md`,
//! "Parallelism and determinism") is that `parallel` / `num_threads` are
//! pure performance knobs: the learned structures must be **bit-identical**
//! to the sequential path for every thread count. These tests enforce that
//! on seeded SCM data, for both the full PC algorithm and the targeted
//! F-node search.

use fsda_causal::ci::{combine_with_fnode, FisherZ};
use fsda_causal::fnode::{find_intervened_features, FnodeConfig};
use fsda_causal::pc::{pc, PcConfig};
use fsda_linalg::{Matrix, SeededRng};

/// Linear-Gaussian SCM over `d` variables: every eighth variable is a root,
/// the rest load on the previous variable plus two random earlier parents —
/// enough structure that all conditioning-set sizes get exercised.
fn scm_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = SeededRng::new(seed);
    let mut m = Matrix::zeros(n, d);
    for r in 0..n {
        for c in 0..d {
            let v = if c % 8 == 0 {
                rng.normal(0.0, 1.0)
            } else {
                let p2 = (c * 7 + 3) % c;
                0.7 * m.get(r, c - 1) + 0.3 * m.get(r, p2) + rng.normal(0.0, 0.6)
            };
            m.set(r, c, v);
        }
    }
    m
}

#[test]
fn pc_parallel_is_bit_identical_to_sequential() {
    let data = scm_data(400, 24, 11);
    let test = FisherZ::new(&data).unwrap();
    let seq = pc(
        &test,
        &PcConfig {
            max_cond_size: 2,
            ..PcConfig::default()
        },
    )
    .unwrap();
    assert!(
        seq.graph.num_edges() > 0,
        "SCM should yield a nonempty skeleton"
    );
    for threads in [2usize, 3, 8] {
        let par = pc(
            &test,
            &PcConfig {
                max_cond_size: 2,
                parallel: true,
                num_threads: Some(threads),
                ..PcConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            seq.graph, par.graph,
            "CPDAG must not depend on thread count {threads}"
        );
        assert_eq!(
            seq.sepsets, par.sepsets,
            "sepsets must not depend on thread count {threads}"
        );
        assert_eq!(
            seq.tests_run, par.tests_run,
            "test count must not depend on thread count"
        );
    }
}

#[test]
fn pc_parallel_with_default_thread_count_matches() {
    let data = scm_data(300, 12, 5);
    let test = FisherZ::new(&data).unwrap();
    let seq = pc(&test, &PcConfig::default()).unwrap();
    let par = pc(
        &test,
        &PcConfig {
            parallel: true,
            ..PcConfig::default()
        },
    )
    .unwrap();
    assert_eq!(seq.graph, par.graph);
    assert_eq!(seq.sepsets, par.sepsets);
    assert_eq!(seq.tests_run, par.tests_run);
}

#[test]
fn fnode_search_parallel_is_bit_identical_to_sequential() {
    // Source vs target with a mean shift on a block of features, so the
    // search has both variant and invariant features to separate.
    let mut rng = SeededRng::new(21);
    let src = Matrix::from_fn(600, 20, |_, c| {
        if c == 0 {
            rng.normal(0.0, 1.0)
        } else {
            rng.normal(0.0, 1.0) * 0.6
        }
    });
    let tgt = Matrix::from_fn(80, 20, |_, c| {
        if c < 6 {
            rng.normal(1.5, 1.0)
        } else {
            rng.normal(0.0, 1.0) * 0.6
        }
    });
    let seq = find_intervened_features(&src, &tgt, &FnodeConfig::default()).unwrap();
    for threads in [2usize, 5] {
        let par = find_intervened_features(
            &src,
            &tgt,
            &FnodeConfig {
                parallel: true,
                num_threads: Some(threads),
                ..FnodeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            seq.variant, par.variant,
            "variant set must not depend on thread count"
        );
        assert_eq!(seq.invariant, par.invariant);
        assert_eq!(seq.tests_run, par.tests_run);
        assert_eq!(
            seq.f_correlation, par.f_correlation,
            "effect sizes must be bit-identical"
        );
    }
}

#[test]
fn fnode_combined_oracle_equivalence() {
    // Same check through the explicit-oracle entry point.
    let mut rng = SeededRng::new(33);
    let src = Matrix::from_fn(300, 8, |_, _| rng.normal(0.0, 1.0));
    let tgt = Matrix::from_fn(40, 8, |_, c| {
        if c % 3 == 0 {
            rng.normal(2.0, 1.0)
        } else {
            rng.normal(0.0, 1.0)
        }
    });
    let combined = combine_with_fnode(&src, &tgt).unwrap();
    let oracle = FisherZ::new(&combined).unwrap();
    let seq =
        fsda_causal::fnode::find_intervened_features_with(&oracle, 8, &FnodeConfig::default())
            .unwrap();
    let par = fsda_causal::fnode::find_intervened_features_with(
        &oracle,
        8,
        &FnodeConfig {
            parallel: true,
            num_threads: Some(4),
            ..FnodeConfig::default()
        },
    )
    .unwrap();
    assert_eq!(seq.variant, par.variant);
    assert_eq!(seq.tests_run, par.tests_run);
}
