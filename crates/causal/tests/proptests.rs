//! Property-based tests for causal discovery: graph axioms and F-node
//! search invariants.

use fsda_causal::fnode::{find_intervened_features, FnodeConfig};
use fsda_causal::graph::{for_each_subset, Graph, SepSets};
use fsda_linalg::{Matrix, SeededRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn edge_add_remove_is_inverse(n in 2usize..10, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let mut g = Graph::empty(n);
        let i = rng.index(n);
        let mut j = rng.index(n);
        if j == i {
            j = (j + 1) % n;
        }
        g.add_edge(i, j);
        prop_assert!(g.adjacent(i, j) && g.adjacent(j, i));
        prop_assert_eq!(g.num_edges(), 1);
        g.remove_edge(i, j);
        prop_assert!(!g.adjacent(i, j));
        prop_assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn complete_graph_edge_count(n in 1usize..12) {
        let g = Graph::complete(n);
        prop_assert_eq!(g.num_edges(), n * (n - 1) / 2);
        for i in 0..n {
            prop_assert_eq!(g.neighbors(i).len(), n - 1);
        }
    }

    #[test]
    fn orientation_is_antisymmetric(n in 2usize..8, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let mut g = Graph::empty(n);
        let i = rng.index(n - 1);
        let j = i + 1;
        g.add_edge(i, j);
        g.orient(i, j);
        prop_assert!(g.is_directed(i, j));
        prop_assert!(!g.is_directed(j, i));
        prop_assert!(!g.is_undirected(i, j));
        // Re-orienting the other way flips it.
        g.orient(j, i);
        prop_assert!(g.is_directed(j, i));
        prop_assert!(!g.is_directed(i, j));
    }

    #[test]
    fn sepsets_are_order_insensitive(i in 0usize..20, j in 0usize..20, k in 0usize..20) {
        prop_assume!(i != j);
        let mut s = SepSets::new();
        s.insert(i, j, [k]);
        prop_assert!(s.get(j, i).is_some());
        prop_assert!(s.contains(j, i, k));
    }

    #[test]
    fn subset_enumeration_matches_binomial(n in 0usize..8, k in 0usize..5) {
        let items: Vec<usize> = (0..n).collect();
        let mut count = 0usize;
        for_each_subset(&items, k, |s| {
            assert_eq!(s.len(), k);
            count += 1;
            false
        });
        let binom = |n: usize, k: usize| -> usize {
            if k > n {
                return 0;
            }
            let mut r = 1usize;
            for i in 0..k {
                r = r * (n - i) / (i + 1);
            }
            r
        };
        prop_assert_eq!(count, binom(n, k));
    }

    #[test]
    fn fisherz_new_never_panics(seed in 0u64..1000, n in 0usize..30, d in 1usize..8) {
        use fsda_causal::ci::{CondIndepTest, FisherZ};
        let mut rng = SeededRng::new(seed);
        let mut x = rng.normal_matrix(n, d, 0.0, 10.0);
        // Telemetry pathologies: non-finite cells and dead columns.
        if n > 0 {
            for _ in 0..rng.index(4) {
                let (r, c) = (rng.index(n), rng.index(d));
                let v = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][rng.index(3)];
                x.set(r, c, v);
            }
            if rng.index(2) == 0 {
                let c = rng.index(d);
                for r in 0..n {
                    x.set(r, c, -3.0);
                }
            }
        }
        // Contract: construction returns Ok or a typed Err, never panics,
        // and an Ok test yields p-values that are probabilities even when
        // conditioning on degenerate (constant) columns.
        match FisherZ::new(&x) {
            Ok(test) if d >= 3 => {
                let p = test.pvalue(0, 1, &[2]).unwrap();
                prop_assert!((0.0..=1.0).contains(&p));
            }
            Ok(_) | Err(_) => {}
        }
    }

    #[test]
    fn fnode_partition_is_complete(seed in 0u64..50, d in 2usize..6) {
        let mut rng = SeededRng::new(seed);
        let src = rng.normal_matrix(200, d, 0.0, 1.0);
        let tgt = Matrix::from_fn(40, d, |_, c| {
            if c == 0 {
                rng.normal(2.5, 1.0)
            } else {
                rng.normal(0.0, 1.0)
            }
        });
        let res = find_intervened_features(&src, &tgt, &FnodeConfig::default()).unwrap();
        let mut all: Vec<usize> = res.variant.iter().chain(&res.invariant).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), d);
        prop_assert_eq!(res.f_correlation.len(), d);
        prop_assert!(res.f_correlation.iter().all(|r| r.abs() <= 1.0));
    }
}
