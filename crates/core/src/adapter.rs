//! The FS and FS+GAN adapters: Sections V-A and V-C of the paper, glued
//! into deployable objects.
//!
//! [`FsAdapter`] trains the network-management classifier on the
//! *invariant* features of the source domain only. [`FsGanAdapter`] trains
//! the classifier on **all** features of the source domain and uses a
//! [`Reconstructor`] (conditional GAN by default) to map each test sample's
//! variant features back into the source distribution at inference — the
//! full two-step method, requiring no classifier retraining ever.

use crate::fs::{FeatureSeparation, FsConfig};
use crate::persist::{
    find_section, read_classifier_snapshot, read_container, read_normalizer, read_recon_snapshot,
    read_separation, write_classifier_snapshot, write_container, write_normalizer,
    write_recon_snapshot, write_separation, Decoder, Encoder, TAG_CLSF, TAG_FSEP, TAG_META,
    TAG_NORM, TAG_RECN,
};
use crate::serve::{sanitize_batch, sanitize_fit_features, FitError, GuardConfig, ServeError};
use crate::{CoreError, Result};
use fsda_data::Dataset;
use fsda_gan::autoencoder::{AeConfig, VanillaAe};
use fsda_gan::cond_gan::{CondGan, CondGanConfig};
use fsda_gan::vae::{Vae, VaeConfig};
use fsda_gan::{restore_reconstructor, Reconstructor, TrainOutcome, WatchdogConfig};
use fsda_linalg::par::{par_map, resolve_threads};
use fsda_linalg::Matrix;
use fsda_models::classifier::argmax_rows;
use fsda_models::forest::{ForestConfig, RandomForest};
use fsda_models::gbdt::{GbdtConfig, GradientBoosting};
use fsda_models::mlp::{MlpClassifier, MlpConfig};
use fsda_models::restore_classifier;
use fsda_models::tnet::{TnetClassifier, TnetConfig};
use fsda_models::{Classifier, ClassifierKind};

/// Compute budget shared by every trained component. The `full()` values
/// correspond to the paper's settings; `quick()` keeps unit tests and CI
/// fast while exercising identical code paths.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Epochs for classifier neural networks (MLP/TNet/DANN/SCL).
    pub nn_epochs: usize,
    /// Epochs for GAN / VAE / AE reconstructors (paper: 500 for the GAN).
    pub gan_epochs: usize,
    /// Epochs for embedding networks (MatchNet/ProtoNet/SCL encoders).
    pub emb_epochs: usize,
    /// Trees in the random forest.
    pub forest_trees: usize,
    /// Boosting rounds for XGB.
    pub gbdt_rounds: usize,
    /// Worker threads for tree ensembles.
    pub threads: usize,
}

impl Budget {
    /// Paper-scale budget.
    pub fn full() -> Self {
        Budget {
            nn_epochs: 60,
            gan_epochs: 300,
            emb_epochs: 60,
            forest_trees: 100,
            gbdt_rounds: 40,
            threads: 8,
        }
    }

    /// Reduced budget for tests and smoke runs. The GAN keeps a larger
    /// share of its schedule than the other nets because its paper-faithful
    /// learning rate (2e-4) needs steps to converge.
    pub fn quick() -> Self {
        Budget {
            nn_epochs: 20,
            gan_epochs: 150,
            emb_epochs: 20,
            forest_trees: 50,
            gbdt_rounds: 10,
            threads: 4,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::full()
    }
}

/// Builds a classifier of the given kind under a budget.
pub fn build_classifier(kind: ClassifierKind, seed: u64, budget: &Budget) -> Box<dyn Classifier> {
    match kind {
        ClassifierKind::Tnet => Box::new(TnetClassifier::new(
            TnetConfig {
                epochs: budget.nn_epochs,
                ..TnetConfig::default()
            },
            seed,
        )),
        ClassifierKind::Mlp => Box::new(MlpClassifier::new(
            MlpConfig {
                epochs: budget.nn_epochs,
                ..MlpConfig::default()
            },
            seed,
        )),
        ClassifierKind::RandomForest => Box::new(RandomForest::new(
            ForestConfig {
                num_trees: budget.forest_trees,
                threads: budget.threads,
                ..ForestConfig::default()
            },
            seed,
        )),
        ClassifierKind::Xgb => Box::new(GradientBoosting::new(
            GbdtConfig {
                rounds: budget.gbdt_rounds,
                ..GbdtConfig::default()
            },
            seed,
        )),
    }
}

/// Reconstruction families for the variant features (Table II ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconKind {
    /// Conditional GAN with label-conditioned discriminator (FS+GAN).
    Gan,
    /// GAN without label conditioning (FS+NoCond).
    GanNoCond,
    /// Conditional VAE (FS+VAE).
    Vae,
    /// Vanilla autoencoder (FS+VanillaAE).
    VanillaAe,
}

impl ReconKind {
    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            ReconKind::Gan => "FS+GAN",
            ReconKind::GanNoCond => "FS+NoCond",
            ReconKind::Vae => "FS+VAE",
            ReconKind::VanillaAe => "FS+VanillaAE",
        }
    }
}

/// Builds a reconstructor of the given kind, sized per the paper's rules:
/// datasets with more than 250 features use noise dim 30 / hidden 256 (the
/// 5GC settings), smaller ones 15 / 128 (the 5GIPC settings).
pub fn build_reconstructor(
    kind: ReconKind,
    num_features: usize,
    seed: u64,
    budget: &Budget,
    watchdog: WatchdogConfig,
) -> Box<dyn Reconstructor> {
    let base = if num_features > 250 {
        CondGanConfig::for_5gc()
    } else {
        CondGanConfig::for_5gipc()
    };
    let hidden = base.hidden;
    match kind {
        ReconKind::Gan => Box::new(CondGan::new(
            CondGanConfig {
                epochs: budget.gan_epochs,
                watchdog,
                ..base
            },
            seed,
        )),
        ReconKind::GanNoCond => Box::new(CondGan::new(
            CondGanConfig {
                epochs: budget.gan_epochs,
                watchdog,
                ..base
            }
            .without_label_conditioning(),
            seed,
        )),
        ReconKind::Vae => Box::new(Vae::new(
            VaeConfig {
                hidden,
                epochs: budget.gan_epochs,
                watchdog,
                ..VaeConfig::default()
            },
            seed,
        )),
        ReconKind::VanillaAe => Box::new(VanillaAe::new(
            AeConfig {
                hidden,
                epochs: budget.gan_epochs,
                watchdog,
                ..AeConfig::default()
            },
            seed,
        )),
    }
}

/// Configuration shared by [`FsAdapter`] and [`FsGanAdapter`].
#[derive(Debug, Clone)]
pub struct AdapterConfig {
    /// Feature-separation settings.
    pub fs: FsConfig,
    /// Reconstruction family (FS+GAN ignores this only in [`FsAdapter`]).
    pub recon: ReconKind,
    /// Classifier family.
    pub classifier: ClassifierKind,
    /// Compute budget.
    pub budget: Budget,
    /// Divergence-watchdog policy applied to reconstructor training. The
    /// default detects NaN/Inf losses and rolls back to the last finite
    /// snapshot while leaving healthy runs bit-identical to unguarded
    /// training.
    pub watchdog: WatchdogConfig,
}

impl Default for AdapterConfig {
    fn default() -> Self {
        AdapterConfig {
            fs: FsConfig::default(),
            recon: ReconKind::Gan,
            classifier: ClassifierKind::Tnet,
            budget: Budget::full(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl AdapterConfig {
    /// Reduced-budget configuration for tests.
    pub fn quick() -> Self {
        AdapterConfig {
            budget: Budget::quick(),
            ..AdapterConfig::default()
        }
    }

    /// Builder-style classifier override.
    pub fn with_classifier(mut self, kind: ClassifierKind) -> Self {
        self.classifier = kind;
        self
    }

    /// Builder-style reconstructor override.
    pub fn with_recon(mut self, kind: ReconKind) -> Self {
        self.recon = kind;
        self
    }
}

/// Why an [`FsGanAdapter`] is serving without a reconstructor: the FS step
/// produced a degenerate partition, so serving falls back to plain
/// normalized pass-through. Both modes are usable (the classifier still
/// runs); the flag exists so operators can tell a deliberate fallback from
/// a healthy pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// FS found no variant features: nothing drifted detectably, and
    /// pass-through is the *correct* behaviour, not a fallback.
    NoVariantFeatures,
    /// FS declared every feature variant: the reconstructor would have
    /// nothing to condition on, so variant features pass through
    /// unreconstructed and accuracy degrades toward SrcOnly.
    NoInvariantFeatures,
}

impl std::fmt::Display for DegradedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedMode::NoVariantFeatures => write!(f, "no variant features (no drift found)"),
            DegradedMode::NoInvariantFeatures => {
                write!(f, "no invariant features (nothing to condition on)")
            }
        }
    }
}

/// Artifact-kind byte identifying an [`FsAdapter`] artifact.
const ARTIFACT_FS: u8 = 0;
/// Artifact-kind byte identifying an [`FsGanAdapter`] artifact.
const ARTIFACT_FSGAN: u8 = 1;

/// Derives one independent noise seed per serving row (splitmix64 mix).
/// Row `r` always gets the same seed no matter how rows are chunked across
/// worker threads, which is what makes [`FsGanAdapter::reconstruct_batch`]
/// bit-identical to the per-sample loop at every thread count.
fn row_seed(base: u64, row: u64) -> u64 {
    let mut z = base ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decodes the FSEP + NORM sections back into a [`FeatureSeparation`].
fn decode_separation(sections: &[([u8; 4], &[u8])]) -> Result<FeatureSeparation> {
    let mut dec = Decoder::new(find_section(sections, TAG_FSEP)?);
    let parts = read_separation(&mut dec)?;
    dec.expect_end()?;
    let mut dec = Decoder::new(find_section(sections, TAG_NORM)?);
    let normalizer = read_normalizer(&mut dec)?;
    dec.expect_end()?;
    if normalizer.num_features() != parts.num_features {
        return Err(CoreError::Persist(format!(
            "FS section declares {} features but the normalizer holds {}",
            parts.num_features,
            normalizer.num_features()
        )));
    }
    FeatureSeparation::from_parts(
        parts.variant,
        parts.invariant,
        normalizer,
        parts.tests_run,
        parts.config,
    )
}

/// Decodes the META section: `(artifact kind, seed, num_classes)`.
fn decode_meta(sections: &[([u8; 4], &[u8])]) -> Result<(u8, u64, usize)> {
    let mut dec = Decoder::new(find_section(sections, TAG_META)?);
    let kind = dec.take_u8()?;
    let seed = dec.take_u64()?;
    let num_classes = dec.take_usize()?;
    dec.expect_end()?;
    Ok((kind, seed, num_classes))
}

fn encode_meta(kind: u8, seed: u64, num_classes: usize) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(kind);
    enc.put_u64(seed);
    enc.put_usize(num_classes);
    enc.into_bytes()
}

/// FS-only adapter: classifier trained on the invariant features of the
/// source domain.
pub struct FsAdapter {
    separation: FeatureSeparation,
    classifier: Box<dyn Classifier>,
    num_classes: usize,
    seed: u64,
}

impl std::fmt::Debug for FsAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsAdapter")
            .field("variant_features", &self.separation.variant().len())
            .field("classifier", &self.classifier.name())
            .finish()
    }
}

impl FsAdapter {
    /// Runs feature separation and trains the classifier on the invariant
    /// source features.
    ///
    /// # Errors
    ///
    /// Propagates separation and training failures; fails when separation
    /// leaves no invariant features.
    pub fn fit(
        source: &Dataset,
        target_shots: &Dataset,
        config: &AdapterConfig,
        seed: u64,
    ) -> Result<Self> {
        let separation = FeatureSeparation::fit(source, target_shots, &config.fs)?;
        if separation.invariant().is_empty() {
            return Err(CoreError::InvalidInput(
                "feature separation declared every feature variant".into(),
            ));
        }
        let (inv, _) = separation.split_normalized(source.features());
        let mut classifier = build_classifier(config.classifier, seed, &config.budget);
        classifier.fit(&inv, source.labels(), source.num_classes())?;
        Ok(FsAdapter {
            separation,
            classifier,
            num_classes: source.num_classes(),
            seed,
        })
    }

    /// The underlying feature separation.
    pub fn separation(&self) -> &FeatureSeparation {
        &self.separation
    }

    /// Predicts labels for raw (unnormalized) target features.
    ///
    /// This is the unguarded fast path: NaN/Inf cells propagate into the
    /// classifier unchecked. Use [`FsAdapter::try_predict`] on untrusted
    /// telemetry.
    ///
    /// # Panics
    ///
    /// Panics when `features` has a different column count than the fitted
    /// data.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let (inv, _) = self.separation.split_normalized(features);
        self.classifier.predict(&inv)
    }

    /// Guarded variant of [`FsAdapter::predict`]: validates the batch
    /// against the source-fitted normalizer and `guard` (rejecting or
    /// repairing corrupt cells) before classification.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a column-count mismatch, and
    /// the localized [`ServeError::NonFinite`] / [`ServeError::OutOfRange`]
    /// of the first corrupt cell under [`crate::InputPolicy::Reject`].
    pub fn try_predict(
        &self,
        features: &Matrix,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let repaired = sanitize_batch(features, self.separation.normalizer(), guard)?;
        Ok(self.predict(repaired.as_ref().unwrap_or(features)))
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Serializes the fitted pipeline into a versioned artifact (see
    /// [`crate::persist`] for the format).
    ///
    /// # Errors
    ///
    /// Fails when the classifier family does not support snapshots.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut fsep = Encoder::new();
        write_separation(&mut fsep, &self.separation);
        let mut norm = Encoder::new();
        write_normalizer(&mut norm, self.separation.normalizer());
        let mut clsf = Encoder::new();
        write_classifier_snapshot(&mut clsf, &self.classifier.snapshot()?);
        Ok(write_container(&[
            (
                TAG_META,
                encode_meta(ARTIFACT_FS, self.seed, self.num_classes),
            ),
            (TAG_FSEP, fsep.into_bytes()),
            (TAG_NORM, norm.into_bytes()),
            (TAG_CLSF, clsf.into_bytes()),
        ]))
    }

    /// Deserializes an artifact written by [`FsAdapter::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] on structural problems (bad magic,
    /// wrong version, failed checksum, truncation, wrong artifact kind) and
    /// the component errors on semantically invalid state.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let sections = read_container(bytes)?;
        let (kind, seed, num_classes) = decode_meta(&sections)?;
        if kind != ARTIFACT_FS {
            return Err(CoreError::Persist(format!(
                "artifact kind {kind} is not an FS artifact"
            )));
        }
        let separation = decode_separation(&sections)?;
        let mut dec = Decoder::new(find_section(&sections, TAG_CLSF)?);
        let snapshot = read_classifier_snapshot(&mut dec)?;
        dec.expect_end()?;
        let classifier = restore_classifier(&snapshot)?;
        Ok(FsAdapter {
            separation,
            classifier,
            num_classes,
            seed,
        })
    }

    /// Writes the artifact produced by [`FsAdapter::to_bytes`] to disk.
    ///
    /// # Errors
    ///
    /// As [`FsAdapter::to_bytes`], plus I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let bytes = self.to_bytes()?;
        std::fs::write(path.as_ref(), bytes)
            .map_err(|e| CoreError::Persist(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Reads and deserializes an artifact written by [`FsAdapter::save`].
    ///
    /// # Errors
    ///
    /// As [`FsAdapter::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| CoreError::Persist(format!("read {}: {e}", path.as_ref().display())))?;
        FsAdapter::from_bytes(&bytes)
    }
}

/// The full FS+GAN adapter (Fig. 1 of the paper).
pub struct FsGanAdapter {
    separation: FeatureSeparation,
    reconstructor: Option<Box<dyn Reconstructor>>,
    classifier: Box<dyn Classifier>,
    num_classes: usize,
    seed: u64,
}

impl std::fmt::Debug for FsGanAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FsGanAdapter")
            .field("variant_features", &self.separation.variant().len())
            .field(
                "reconstructor",
                &self
                    .reconstructor
                    .as_ref()
                    .map(|r| r.name())
                    .unwrap_or("none"),
            )
            .field("classifier", &self.classifier.name())
            .finish()
    }
}

impl FsGanAdapter {
    /// Fits the full pipeline: FS, then the reconstructor on source data
    /// only, then the classifier on all normalized source features.
    ///
    /// When FS finds no variant features the reconstructor is skipped and
    /// prediction degenerates to plain source-trained classification (the
    /// correct behaviour when no drift is detectable).
    ///
    /// # Errors
    ///
    /// Propagates separation, reconstruction, and training failures.
    pub fn fit(
        source: &Dataset,
        target_shots: &Dataset,
        config: &AdapterConfig,
        seed: u64,
    ) -> Result<Self> {
        let separation = FeatureSeparation::fit(source, target_shots, &config.fs)?;
        let (inv, var) = separation.split_normalized(source.features());
        // Degenerate partitions (all-variant or all-invariant) skip the
        // reconstructor and serve as normalized pass-through; see
        // [`FsGanAdapter::degraded`].
        let reconstructor = if separation.variant().is_empty() || separation.invariant().is_empty()
        {
            None
        } else {
            let mut recon = build_reconstructor(
                config.recon,
                source.num_features(),
                seed ^ 0x6A17,
                &config.budget,
                config.watchdog,
            );
            recon.fit(&inv, &var, &source.one_hot_labels())?;
            Some(recon)
        };
        // The network-management model: trained once, on source only, with
        // ALL features — never retrained afterwards.
        let normalized = separation.normalizer().transform(source.features());
        let mut classifier = build_classifier(config.classifier, seed, &config.budget);
        classifier.fit(&normalized, source.labels(), source.num_classes())?;
        Ok(FsGanAdapter {
            separation,
            reconstructor,
            classifier,
            num_classes: source.num_classes(),
            seed,
        })
    }

    /// Guarded variant of [`FsGanAdapter::fit`]: validates both training
    /// sets against `guard.policy` before fitting (rejecting or repairing
    /// NaN/Inf cells) and fails when the reconstructor's watchdog reports
    /// divergence, so a successfully returned adapter is always
    /// serviceable.
    ///
    /// # Errors
    ///
    /// [`FitError::CorruptSource`] / [`FitError::CorruptShots`] localize
    /// the first non-finite training cell under [`crate::InputPolicy::Reject`];
    /// [`FitError::ReconstructionDiverged`] reports watchdog exhaustion;
    /// everything the infallible path raises arrives as [`FitError::Core`].
    pub fn try_fit(
        source: &Dataset,
        target_shots: &Dataset,
        config: &AdapterConfig,
        seed: u64,
        guard: &GuardConfig,
    ) -> std::result::Result<Self, FitError> {
        let repaired_src = sanitize_fit_features(source.features(), guard.policy)
            .map_err(|(row, col)| FitError::CorruptSource { row, col })?;
        let repaired_shots = sanitize_fit_features(target_shots.features(), guard.policy)
            .map_err(|(row, col)| FitError::CorruptShots { row, col })?;
        let src_owned;
        let source = match repaired_src {
            Some(features) => {
                src_owned = Dataset::new(features, source.labels().to_vec(), source.num_classes())
                    .map_err(|e| FitError::Core(e.into()))?;
                &src_owned
            }
            None => source,
        };
        let shots_owned;
        let target_shots = match repaired_shots {
            Some(features) => {
                shots_owned = Dataset::new(
                    features,
                    target_shots.labels().to_vec(),
                    target_shots.num_classes(),
                )
                .map_err(|e| FitError::Core(e.into()))?;
                &shots_owned
            }
            None => target_shots,
        };
        let adapter = Self::fit(source, target_shots, config, seed)?;
        if let Some(TrainOutcome::Diverged { epoch }) = adapter.train_outcome() {
            return Err(FitError::ReconstructionDiverged { epoch });
        }
        Ok(adapter)
    }

    /// The underlying feature separation.
    pub fn separation(&self) -> &FeatureSeparation {
        &self.separation
    }

    /// Name of the fitted reconstructor, `None` in degraded pass-through
    /// mode.
    pub fn reconstructor_name(&self) -> Option<&str> {
        self.reconstructor.as_deref().map(Reconstructor::name)
    }

    /// Whether this adapter serves in a degraded pass-through mode (no
    /// reconstructor), and why. `None` for a healthy pipeline.
    pub fn degraded(&self) -> Option<DegradedMode> {
        if self.reconstructor.is_some() {
            None
        } else if self.separation.variant().is_empty() {
            Some(DegradedMode::NoVariantFeatures)
        } else {
            Some(DegradedMode::NoInvariantFeatures)
        }
    }

    /// How the reconstructor's guarded training ended. `None` when there is
    /// no reconstructor (degraded modes) or the adapter was restored from
    /// an artifact (training history is not persisted).
    pub fn train_outcome(&self) -> Option<TrainOutcome> {
        self.reconstructor.as_ref().and_then(|r| r.train_outcome())
    }

    /// Transforms raw target features into source-like normalized samples:
    /// invariant features pass through, variant features are reconstructed
    /// by the generator (Eq. 10–11).
    pub fn transform(&self, features: &Matrix) -> Matrix {
        self.transform_seeded(features, self.seed ^ 0x11FE)
    }

    fn transform_seeded(&self, features: &Matrix, noise_seed: u64) -> Matrix {
        let (inv, var) = self.separation.split_normalized(features);
        match &self.reconstructor {
            Some(recon) => {
                let var_hat = recon.reconstruct(&inv, noise_seed);
                self.separation.reassemble(&inv, &var_hat)
            }
            None => self.separation.reassemble(&inv, &var),
        }
    }

    /// Predicts labels for raw target features with M = 1 Monte-Carlo
    /// reconstruction (Eq. 12; the paper shows M = 1 suffices for small
    /// noise vectors).
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        let transformed = self.transform(features);
        self.classifier.predict(&transformed)
    }

    /// Monte-Carlo prediction with `m` generator draws, averaging class
    /// probabilities (the general Eq. before Eq. 10).
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn predict_mc(&self, features: &Matrix, m: usize) -> Vec<usize> {
        assert!(m > 0, "predict_mc: m must be >= 1");
        let mut acc = self
            .classifier
            .predict_proba(&self.transform_seeded(features, self.seed ^ 0x11FE));
        for i in 1..m {
            let transformed =
                self.transform_seeded(features, self.seed ^ 0x11FE ^ (i as u64) << 32);
            let probs = self.classifier.predict_proba(&transformed);
            acc = match acc.try_add(&probs) {
                Ok(sum) => sum,
                // One classifier, one row count: every draw has the same
                // (rows × classes) shape.
                Err(e) => panic!("predict_proba shape invariant: {e}"),
            };
        }
        argmax_rows(&acc)
    }

    /// Class-probability predictions (M = 1).
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        self.classifier.predict_proba(&self.transform(features))
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The batched serving hot path: transforms raw target features like
    /// [`FsGanAdapter::transform`], but with one independent noise seed per
    /// row and the normalization + generator forward passes amortized over
    /// row chunks on the shared worker pool (`threads: None` uses every
    /// core).
    ///
    /// The output is **bit-identical for every thread count**, including
    /// the per-sample reference loop [`FsGanAdapter::reconstruct_scalar`]:
    /// row `r`'s noise depends only on the adapter seed and `r`, never on
    /// how rows are chunked or scheduled.
    ///
    /// This is the unguarded fast path: input is assumed validated.
    /// NaN/Inf cells propagate garbage-in/garbage-out into the output; use
    /// [`FsGanAdapter::try_reconstruct_batch`] on untrusted telemetry.
    ///
    /// # Panics
    ///
    /// Panics when `features` has a different column count than the fitted
    /// data.
    pub fn reconstruct_batch(&self, features: &Matrix, threads: Option<usize>) -> Matrix {
        if features.rows() == 0 {
            return self.separation.normalizer().transform(features);
        }
        let threads = resolve_threads(threads);
        let rows = features.rows();
        let chunk = rows.div_ceil(threads).max(1);
        let chunks: Vec<(usize, usize)> = (0..rows)
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(rows)))
            .collect();
        let base = self.seed ^ 0x11FE;
        let separation = &self.separation;
        let recon = self.reconstructor.as_deref();
        let parts = par_map(threads, &chunks, |_, &(start, end)| {
            let idx: Vec<usize> = (start..end).collect();
            let block = features.select_rows(&idx);
            let (inv, var) = separation.split_normalized(&block);
            match recon {
                Some(r) => {
                    let seeds: Vec<u64> =
                        (start..end).map(|row| row_seed(base, row as u64)).collect();
                    let var_hat = r.reconstruct_rows(&inv, &seeds);
                    separation.reassemble(&inv, &var_hat)
                }
                None => separation.reassemble(&inv, &var),
            }
        });
        let mut out = parts[0].clone();
        for part in &parts[1..] {
            out = match out.vstack(part) {
                Ok(stacked) => stacked,
                // Every chunk is a row slice of the same reassembled
                // matrix, so widths cannot differ.
                Err(e) => panic!("chunk width invariant: {e}"),
            };
        }
        out
    }

    /// Per-sample reference loop for [`FsGanAdapter::reconstruct_batch`]:
    /// transforms one row at a time through the scalar reconstruction
    /// entry point. Slow by construction; exists so tests and benches can
    /// pin the batched path to it bit-for-bit.
    pub fn reconstruct_scalar(&self, features: &Matrix) -> Matrix {
        let base = self.seed ^ 0x11FE;
        let mut out = Matrix::zeros(features.rows(), features.cols());
        for r in 0..features.rows() {
            let row = features.select_rows(&[r]);
            let (inv, var) = self.separation.split_normalized(&row);
            let transformed = match &self.reconstructor {
                Some(recon) => {
                    let var_hat = recon.reconstruct(&inv, row_seed(base, r as u64));
                    self.separation.reassemble(&inv, &var_hat)
                }
                None => self.separation.reassemble(&inv, &var),
            };
            out.row_mut(r).copy_from_slice(transformed.row(0));
        }
        out
    }

    /// Batched prediction: [`FsGanAdapter::reconstruct_batch`] followed by
    /// one full-batch classifier pass. Like the reconstruction itself, the
    /// predictions are identical for every thread count.
    ///
    /// This is the unguarded fast path; it inherits the contract of
    /// [`FsGanAdapter::reconstruct_batch`]. Use
    /// [`FsGanAdapter::try_predict_batch`] on untrusted telemetry.
    ///
    /// # Panics
    ///
    /// Panics when `features` has a different column count than the fitted
    /// data.
    pub fn predict_batch(&self, features: &Matrix, threads: Option<usize>) -> Vec<usize> {
        self.classifier
            .predict(&self.reconstruct_batch(features, threads))
    }

    /// Guarded variant of [`FsGanAdapter::reconstruct_batch`]: validates
    /// the batch against the source-fitted normalizer and `guard` before
    /// reconstruction (rejecting or repairing corrupt cells), then verifies
    /// the output is fully finite. A clean batch takes the identical
    /// reconstruction path and returns bit-identical output.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a column-count mismatch;
    /// [`ServeError::NonFinite`] / [`ServeError::OutOfRange`] localizing
    /// the first corrupt input cell under [`crate::InputPolicy::Reject`];
    /// [`ServeError::NonFiniteOutput`] when the pipeline itself emits a
    /// non-finite value (corrupt artifact or diverged reconstructor).
    pub fn try_reconstruct_batch(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Matrix, ServeError> {
        let repaired = sanitize_batch(features, self.separation.normalizer(), guard)?;
        let clean = repaired.as_ref().unwrap_or(features);
        let out = self.reconstruct_batch(clean, threads);
        for r in 0..out.rows() {
            if let Some(c) = out.row(r).iter().position(|v| !v.is_finite()) {
                return Err(ServeError::NonFiniteOutput { row: r, col: c });
            }
        }
        Ok(out)
    }

    /// Guarded variant of [`FsGanAdapter::predict_batch`]:
    /// [`FsGanAdapter::try_reconstruct_batch`] followed by one full-batch
    /// classifier pass, so predictions are never derived from non-finite
    /// reconstructions.
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::try_reconstruct_batch`].
    pub fn try_predict_batch(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        Ok(self
            .classifier
            .predict(&self.try_reconstruct_batch(features, threads, guard)?))
    }

    /// Serializes the fitted pipeline — FS partition with config
    /// provenance, normalizer statistics, reconstructor weights (including
    /// batch-norm running statistics), classifier state — into a versioned
    /// artifact (see [`crate::persist`] for the format).
    ///
    /// # Errors
    ///
    /// Fails when the classifier family does not support snapshots.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut fsep = Encoder::new();
        write_separation(&mut fsep, &self.separation);
        let mut norm = Encoder::new();
        write_normalizer(&mut norm, self.separation.normalizer());
        let mut recn = Encoder::new();
        match &self.reconstructor {
            Some(recon) => {
                recn.put_bool(true);
                write_recon_snapshot(&mut recn, &recon.snapshot()?);
            }
            None => recn.put_bool(false),
        }
        let mut clsf = Encoder::new();
        write_classifier_snapshot(&mut clsf, &self.classifier.snapshot()?);
        Ok(write_container(&[
            (
                TAG_META,
                encode_meta(ARTIFACT_FSGAN, self.seed, self.num_classes),
            ),
            (TAG_FSEP, fsep.into_bytes()),
            (TAG_NORM, norm.into_bytes()),
            (TAG_RECN, recn.into_bytes()),
            (TAG_CLSF, clsf.into_bytes()),
        ]))
    }

    /// Deserializes an artifact written by [`FsGanAdapter::to_bytes`]. The
    /// reloaded adapter reconstructs and predicts bit-identically to the
    /// one that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] on structural problems (bad magic,
    /// wrong version, failed checksum, truncation, wrong artifact kind) and
    /// the component errors on semantically invalid state.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let sections = read_container(bytes)?;
        let (kind, seed, num_classes) = decode_meta(&sections)?;
        if kind != ARTIFACT_FSGAN {
            return Err(CoreError::Persist(format!(
                "artifact kind {kind} is not an FS+GAN artifact"
            )));
        }
        let separation = decode_separation(&sections)?;
        let mut dec = Decoder::new(find_section(&sections, TAG_RECN)?);
        let reconstructor = if dec.take_bool()? {
            let snapshot = read_recon_snapshot(&mut dec)?;
            dec.expect_end()?;
            Some(restore_reconstructor(&snapshot)?)
        } else {
            dec.expect_end()?;
            None
        };
        let mut dec = Decoder::new(find_section(&sections, TAG_CLSF)?);
        let snapshot = read_classifier_snapshot(&mut dec)?;
        dec.expect_end()?;
        let classifier = restore_classifier(&snapshot)?;
        Ok(FsGanAdapter {
            separation,
            reconstructor,
            classifier,
            num_classes,
            seed,
        })
    }

    /// Writes the artifact produced by [`FsGanAdapter::to_bytes`] to disk.
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::to_bytes`], plus I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let bytes = self.to_bytes()?;
        std::fs::write(path.as_ref(), bytes)
            .map_err(|e| CoreError::Persist(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Reads and deserializes an artifact written by
    /// [`FsGanAdapter::save`].
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| CoreError::Persist(format!("read {}: {e}", path.as_ref().display())))?;
        FsGanAdapter::from_bytes(&bytes)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::serve::InputPolicy;
    use fsda_data::fewshot::few_shot_subset;
    use fsda_data::synth5gc::Synth5gc;
    use fsda_linalg::SeededRng;
    use fsda_models::metrics::macro_f1;

    fn setup(seed: u64) -> (fsda_data::synth5gc::Synth5gcBundle, Dataset) {
        let bundle = Synth5gc::small().generate(seed).unwrap();
        let mut rng = SeededRng::new(seed ^ 0xAB);
        let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
        (bundle, shots)
    }

    #[test]
    fn fs_adapter_beats_source_only() {
        let (bundle, shots) = setup(1);
        let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
        let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 7).unwrap();
        let pred_fs = fs.predict(bundle.target_test.features());
        let f1_fs = macro_f1(bundle.target_test.labels(), &pred_fs, 16);

        // SrcOnly comparison: same classifier on all features.
        let norm = fs.separation().normalizer();
        let mut src_only = build_classifier(ClassifierKind::RandomForest, 7, &Budget::quick());
        src_only
            .fit(
                &norm.transform(bundle.source_train.features()),
                bundle.source_train.labels(),
                16,
            )
            .unwrap();
        let pred_src = src_only.predict(&norm.transform(bundle.target_test.features()));
        let f1_src = macro_f1(bundle.target_test.labels(), &pred_src, 16);
        assert!(
            f1_fs > f1_src + 0.1,
            "FS ({f1_fs:.3}) must clearly beat SrcOnly ({f1_src:.3}) under drift"
        );
    }

    #[test]
    fn fs_gan_adapter_beats_source_only() {
        let (bundle, shots) = setup(2);
        let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
        let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 9).unwrap();
        let pred = adapter.predict(bundle.target_test.features());
        let f1 = macro_f1(bundle.target_test.labels(), &pred, 16);

        let norm = adapter.separation().normalizer();
        let mut src_only = build_classifier(ClassifierKind::RandomForest, 9, &Budget::quick());
        src_only
            .fit(
                &norm.transform(bundle.source_train.features()),
                bundle.source_train.labels(),
                16,
            )
            .unwrap();
        let pred_src = src_only.predict(&norm.transform(bundle.target_test.features()));
        let f1_src = macro_f1(bundle.target_test.labels(), &pred_src, 16);
        assert!(
            f1 > f1_src + 0.05,
            "FS+GAN ({f1:.3}) must clearly beat SrcOnly ({f1_src:.3}) under drift"
        );
        assert!(
            f1 > 0.3,
            "FS+GAN should recover substantial performance, got {f1:.3}"
        );
    }

    #[test]
    fn transform_restores_source_range_on_variant_columns() {
        let (bundle, shots) = setup(3);
        let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
        let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 11).unwrap();
        let transformed = adapter.transform(bundle.target_test.features());
        // Variant columns were reconstructed by the tanh generator: bounded.
        for &c in adapter.separation().variant() {
            let col = transformed.col(c);
            assert!(
                col.iter().all(|v| v.abs() <= 1.0 + 1e-9),
                "column {c} out of range"
            );
        }
    }

    #[test]
    fn mc_prediction_with_small_noise_matches_single_draw() {
        let (bundle, shots) = setup(4);
        let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
        let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 13).unwrap();
        let single = adapter.predict(bundle.target_test.features());
        let mc = adapter.predict_mc(bundle.target_test.features(), 3);
        let agreement =
            single.iter().zip(&mc).filter(|(a, b)| a == b).count() as f64 / single.len() as f64;
        assert!(agreement > 0.8, "M=1 vs M=3 agreement {agreement}");
    }

    #[test]
    fn budget_and_config_builders() {
        let cfg = AdapterConfig::quick()
            .with_classifier(ClassifierKind::Xgb)
            .with_recon(ReconKind::Vae);
        assert_eq!(cfg.classifier, ClassifierKind::Xgb);
        assert_eq!(cfg.recon, ReconKind::Vae);
        assert!(Budget::full().gan_epochs > Budget::quick().gan_epochs);
        assert_eq!(ReconKind::Gan.label(), "FS+GAN");
        assert_eq!(ReconKind::VanillaAe.label(), "FS+VanillaAE");
    }

    #[test]
    fn save_load_round_trip_is_bit_identical() {
        let (bundle, shots) = setup(7);
        let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
        let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 17).unwrap();
        let bytes = adapter.to_bytes().unwrap();
        let loaded = FsGanAdapter::from_bytes(&bytes).unwrap();
        // Encode -> decode -> encode is byte-identical.
        assert_eq!(loaded.to_bytes().unwrap(), bytes);
        let x = bundle.target_test.features();
        assert_eq!(loaded.predict(x), adapter.predict(x));
        assert_eq!(loaded.transform(x), adapter.transform(x));
        assert_eq!(
            loaded.reconstruct_batch(x, Some(2)),
            adapter.reconstruct_batch(x, Some(2))
        );
        assert_eq!(
            loaded.separation().variant(),
            adapter.separation().variant()
        );
        assert_eq!(loaded.num_classes(), adapter.num_classes());
    }

    #[test]
    fn fs_adapter_round_trips_and_kinds_are_checked() {
        let (bundle, shots) = setup(9);
        let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
        let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 19).unwrap();
        let bytes = fs.to_bytes().unwrap();
        let loaded = FsAdapter::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.to_bytes().unwrap(), bytes);
        let x = bundle.target_test.features();
        assert_eq!(loaded.predict(x), fs.predict(x));
        // An FS artifact is not an FS+GAN artifact and vice versa.
        assert!(matches!(
            FsGanAdapter::from_bytes(&bytes),
            Err(CoreError::Persist(_))
        ));
    }

    #[test]
    fn batched_reconstruction_is_thread_count_invariant() {
        let (bundle, shots) = setup(11);
        let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
        let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 23).unwrap();
        let x = bundle.target_test.features();
        let scalar = adapter.reconstruct_scalar(x);
        for threads in [1, 2, 4] {
            assert_eq!(
                adapter.reconstruct_batch(x, Some(threads)),
                scalar,
                "threads = {threads}"
            );
        }
        assert_eq!(
            adapter.predict_batch(x, Some(1)),
            adapter.predict_batch(x, Some(4))
        );
    }

    #[test]
    fn reconstructor_factory_sizes_by_features() {
        // Just verify both paths construct.
        let small = build_reconstructor(
            ReconKind::Gan,
            100,
            1,
            &Budget::quick(),
            WatchdogConfig::default(),
        );
        let large = build_reconstructor(
            ReconKind::GanNoCond,
            400,
            1,
            &Budget::quick(),
            WatchdogConfig::default(),
        );
        assert_eq!(small.name(), "gan");
        assert_eq!(large.name(), "gan-nocond");
    }

    #[test]
    fn try_predict_batch_guards_malformed_batches() {
        let (bundle, shots) = setup(21);
        let cfg = AdapterConfig::quick();
        let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 23).unwrap();
        let clean = bundle.target_test.features();

        // Clean data: the guarded path matches the unguarded one exactly.
        let reject = GuardConfig::default();
        assert_eq!(
            adapter.try_predict_batch(clean, None, &reject).unwrap(),
            adapter.predict_batch(clean, None)
        );

        // A NaN cell is rejected with exact localization...
        let mut poisoned = clean.clone();
        poisoned.set(3, 2, f64::NAN);
        assert_eq!(
            adapter.try_predict_batch(&poisoned, None, &reject),
            Err(ServeError::NonFinite { row: 3, col: 2 })
        );
        // ...and repaired under the non-reject policies.
        for policy in [InputPolicy::ImputeSourceMean, InputPolicy::Clamp] {
            let guard = GuardConfig::default().with_policy(policy);
            let recon = adapter
                .try_reconstruct_batch(&poisoned, None, &guard)
                .unwrap();
            assert!(
                (0..recon.rows()).all(|r| recon.row(r).iter().all(|v| v.is_finite())),
                "{policy:?} must yield finite reconstructions"
            );
            adapter.try_predict_batch(&poisoned, None, &guard).unwrap();
        }

        // Wrong width fails before any numeric work.
        let narrow = Matrix::zeros(2, clean.cols() - 1);
        assert!(matches!(
            adapter.try_predict_batch(&narrow, None, &reject),
            Err(ServeError::DimensionMismatch { .. })
        ));

        // FsAdapter mirrors the same guard.
        let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 23).unwrap();
        assert_eq!(fs.try_predict(clean, &reject).unwrap(), fs.predict(clean));
        assert_eq!(
            fs.try_predict(&poisoned, &reject),
            Err(ServeError::NonFinite { row: 3, col: 2 })
        );
    }

    #[test]
    fn try_fit_localizes_corrupt_training_cells() {
        let (bundle, shots) = setup(22);
        let cfg = AdapterConfig::quick();
        let reject = GuardConfig::default();

        let mut bad_features = bundle.source_train.features().clone();
        bad_features.set(5, 1, f64::INFINITY);
        let bad_source = Dataset::new(
            bad_features,
            bundle.source_train.labels().to_vec(),
            bundle.source_train.num_classes(),
        )
        .unwrap();
        assert!(matches!(
            FsGanAdapter::try_fit(&bad_source, &shots, &cfg, 3, &reject),
            Err(FitError::CorruptSource { row: 5, col: 1 })
        ));

        let mut bad_shot_features = shots.features().clone();
        bad_shot_features.set(0, 0, f64::NAN);
        let bad_shots = Dataset::new(
            bad_shot_features,
            shots.labels().to_vec(),
            shots.num_classes(),
        )
        .unwrap();
        assert!(matches!(
            FsGanAdapter::try_fit(&bundle.source_train, &bad_shots, &cfg, 3, &reject),
            Err(FitError::CorruptShots { row: 0, col: 0 })
        ));

        // Under the impute policy the same corrupt source still fits, and
        // the repaired adapter serves finite predictions.
        let impute = GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean);
        let adapter = FsGanAdapter::try_fit(&bad_source, &shots, &cfg, 3, &impute).unwrap();
        assert!(adapter.degraded().is_none());
        let preds = adapter.predict(bundle.target_test.features());
        assert_eq!(preds.len(), bundle.target_test.len());
    }

    #[test]
    fn degenerate_separations_serve_pass_through() {
        let (bundle, shots) = setup(24);

        // Shift every column far outside the source support: every feature
        // is domain-variant, the reconstructor has nothing to condition on.
        let shifted = Matrix::from_fn(shots.len(), shots.num_features(), |r, c| {
            shots.features().get(r, c) + 1e4
        });
        let all_variant_shots =
            Dataset::new(shifted, shots.labels().to_vec(), shots.num_classes()).unwrap();
        let cfg = AdapterConfig {
            fs: FsConfig {
                alpha: 0.5,
                ..FsConfig::default()
            },
            ..AdapterConfig::quick()
        };
        let adapter =
            FsGanAdapter::fit(&bundle.source_train, &all_variant_shots, &cfg, 31).unwrap();
        assert_eq!(adapter.degraded(), Some(DegradedMode::NoInvariantFeatures));
        assert_eq!(
            adapter.separation().mode(),
            crate::fs::SeparationMode::AllVariant
        );
        let health = crate::report::format_pipeline_health(&adapter);
        assert!(
            health.contains("pass-through") && health.contains("no invariant"),
            "unexpected health line: {health}"
        );

        // Pass-through serving: reconstruction is just normalization.
        let batch = bundle.target_test.features();
        let recon = adapter.reconstruct_batch(batch, None);
        let expected = adapter.separation().normalizer().transform(batch);
        for r in 0..recon.rows() {
            assert_eq!(recon.row(r), expected.row(r));
        }
        assert_eq!(adapter.predict(batch).len(), bundle.target_test.len());

        // Shots drawn from the source domain itself: no drift, every
        // feature is invariant (the strict alpha suppresses chance
        // rejections).
        let mut rng = SeededRng::new(24 ^ 0xCD);
        let same_domain_shots = few_shot_subset(&bundle.source_train, 10, &mut rng).unwrap();
        let cfg_inv = AdapterConfig {
            fs: FsConfig {
                alpha: 1e-12,
                ..FsConfig::default()
            },
            ..AdapterConfig::quick()
        };
        let adapter_inv =
            FsGanAdapter::fit(&bundle.source_train, &same_domain_shots, &cfg_inv, 31).unwrap();
        assert_eq!(
            adapter_inv.degraded(),
            Some(DegradedMode::NoVariantFeatures)
        );
        assert_eq!(
            adapter_inv.separation().mode(),
            crate::fs::SeparationMode::AllInvariant
        );
        assert_eq!(adapter_inv.predict(batch).len(), bundle.target_test.len());
    }
}
