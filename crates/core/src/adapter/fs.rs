//! FS-only adapter: classifier trained on the invariant features of the
//! source domain.

use super::{build_classifier, decode_meta, decode_separation, encode_meta, AdapterConfig};
use crate::fs::FeatureSeparation;
use crate::persist::{
    find_section, read_classifier_snapshot, read_container, write_classifier_snapshot,
    write_container, write_normalizer, write_separation, Decoder, Encoder, TAG_CLSF, TAG_FSEP,
    TAG_META, TAG_NORM,
};
use crate::pipeline::observe;
use crate::serve::{sanitize_batch, GuardConfig, ServeError};
use crate::{CoreError, Result};
use fsda_data::Dataset;
use fsda_linalg::Matrix;
use fsda_models::restore_classifier;
use fsda_models::{Classifier, InferPrecision};

/// The trained components of an [`FsAdapter`], present only after `fit`.
struct FittedFs {
    separation: FeatureSeparation,
    classifier: Box<dyn Classifier>,
    num_classes: usize,
}

/// FS-only adapter: classifier trained on the invariant features of the
/// source domain.
pub struct FsAdapter {
    config: AdapterConfig,
    seed: u64,
    fitted: Option<FittedFs>,
}

impl std::fmt::Debug for FsAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.fitted {
            Some(fitted) => f
                .debug_struct("FsAdapter")
                .field("variant_features", &fitted.separation.variant().len())
                .field("classifier", &fitted.classifier.name())
                .finish(),
            None => f.debug_struct("FsAdapter").field("fitted", &false).finish(),
        }
    }
}

impl FsAdapter {
    /// Creates an unfitted adapter; train it with
    /// [`DriftMitigator::fit`](crate::pipeline::DriftMitigator::fit).
    pub fn new(config: AdapterConfig, seed: u64) -> Self {
        FsAdapter {
            config,
            seed,
            fitted: None,
        }
    }

    /// Runs feature separation and trains the classifier on the invariant
    /// source features.
    ///
    /// # Errors
    ///
    /// Propagates separation and training failures; fails when separation
    /// leaves no invariant features.
    pub fn fit(
        source: &Dataset,
        target_shots: &Dataset,
        config: &AdapterConfig,
        seed: u64,
    ) -> Result<Self> {
        let mut adapter = FsAdapter::new(config.clone(), seed);
        adapter.fit_in_place(source, target_shots)?;
        Ok(adapter)
    }

    /// Trains this adapter's components from its stored config and seed.
    pub(crate) fn fit_in_place(&mut self, source: &Dataset, target_shots: &Dataset) -> Result<()> {
        let stage = observe::start_stage();
        let separation = FeatureSeparation::fit(source, target_shots, &self.config.fs)?;
        observe::finish_stage(stage, "separation");
        self.fit_components(source, separation)
    }

    /// Fits the classifier behind a **precomputed** separation — the warm
    /// re-fit path (see
    /// [`FsGanAdapter::fit_with_separation`](super::FsGanAdapter::fit_with_separation)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the separation's feature
    /// space disagrees with `source` or leaves no invariant features, and
    /// propagates training failures.
    pub fn fit_with_separation(
        source: &Dataset,
        separation: FeatureSeparation,
        config: &AdapterConfig,
        seed: u64,
    ) -> Result<Self> {
        if separation.num_features() != source.num_features() {
            return Err(CoreError::InvalidInput(format!(
                "separation covers {} features, source has {}",
                separation.num_features(),
                source.num_features()
            )));
        }
        let mut adapter = FsAdapter::new(config.clone(), seed);
        adapter.fit_components(source, separation)?;
        Ok(adapter)
    }

    /// The source-side training shared by both fit paths.
    fn fit_components(&mut self, source: &Dataset, separation: FeatureSeparation) -> Result<()> {
        if separation.invariant().is_empty() {
            return Err(CoreError::InvalidInput(
                "feature separation declared every feature variant".into(),
            ));
        }
        let (inv, _) = separation.split_normalized(source.features());
        let stage = observe::start_stage();
        let mut classifier =
            build_classifier(self.config.classifier, self.seed, &self.config.budget);
        classifier.fit(&inv, source.labels(), source.num_classes())?;
        observe::finish_stage(stage, "classifier");
        self.fitted = Some(FittedFs {
            separation,
            classifier,
            num_classes: source.num_classes(),
        });
        Ok(())
    }

    fn fitted(&self) -> &FittedFs {
        match &self.fitted {
            Some(fitted) => fitted,
            None => panic!("FsAdapter: use before fit"),
        }
    }

    /// Whether the adapter has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// The configuration this adapter was built with.
    pub fn config(&self) -> &AdapterConfig {
        &self.config
    }

    /// The underlying feature separation.
    ///
    /// # Panics
    ///
    /// Panics when the adapter has not been fitted.
    pub fn separation(&self) -> &FeatureSeparation {
        &self.fitted().separation
    }

    /// Predicts labels for raw (unnormalized) target features.
    ///
    /// This is the unguarded fast path: NaN/Inf cells propagate into the
    /// classifier unchecked. Use [`FsAdapter::try_predict`] on untrusted
    /// telemetry.
    ///
    /// # Panics
    ///
    /// Panics when `features` has a different column count than the fitted
    /// data, or when the adapter has not been fitted.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        self.predict_with(features, InferPrecision::F64Exact)
    }

    /// [`FsAdapter::predict`] at an explicit numeric precision.
    /// [`InferPrecision::F64Exact`] is bit-identical to `predict`;
    /// [`InferPrecision::F32Fast`] runs the classifier's compiled
    /// single-precision plan when it has one (neural families), trading a
    /// small bounded divergence for throughput.
    ///
    /// # Panics
    ///
    /// As [`FsAdapter::predict`].
    pub fn predict_with(&self, features: &Matrix, precision: InferPrecision) -> Vec<usize> {
        let fitted = self.fitted();
        let (inv, _) = fitted.separation.split_normalized(features);
        fitted.classifier.predict_with(&inv, precision)
    }

    /// Guarded variant of [`FsAdapter::predict`]: validates the batch
    /// against the source-fitted normalizer and `guard` (rejecting or
    /// repairing corrupt cells) before classification.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a column-count mismatch, and
    /// the localized [`ServeError::NonFinite`] / [`ServeError::OutOfRange`]
    /// of the first corrupt cell under [`crate::InputPolicy::Reject`].
    pub fn try_predict(
        &self,
        features: &Matrix,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        self.try_predict_with(features, guard, InferPrecision::F64Exact)
    }

    /// [`FsAdapter::try_predict`] at an explicit numeric precision. The
    /// input validation is identical at both precisions; only the
    /// classifier forward pass changes.
    ///
    /// # Errors
    ///
    /// As [`FsAdapter::try_predict`].
    pub fn try_predict_with(
        &self,
        features: &Matrix,
        guard: &GuardConfig,
        precision: InferPrecision,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let repaired = sanitize_batch(features, self.fitted().separation.normalizer(), guard)?;
        Ok(self.predict_with(repaired.as_ref().unwrap_or(features), precision))
    }

    /// Number of classes.
    ///
    /// # Panics
    ///
    /// Panics when the adapter has not been fitted.
    pub fn num_classes(&self) -> usize {
        self.fitted().num_classes
    }

    /// Serializes the fitted pipeline into a versioned artifact (see
    /// [`crate::persist`] for the format).
    ///
    /// # Errors
    ///
    /// Fails when the classifier family does not support snapshots, or when
    /// the adapter has not been fitted.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let fitted = match &self.fitted {
            Some(fitted) => fitted,
            None => {
                return Err(CoreError::InvalidInput(
                    "FsAdapter: to_bytes before fit".into(),
                ))
            }
        };
        let mut fsep = Encoder::new();
        write_separation(&mut fsep, &fitted.separation);
        let mut norm = Encoder::new();
        write_normalizer(&mut norm, fitted.separation.normalizer());
        let mut clsf = Encoder::new();
        write_classifier_snapshot(&mut clsf, &fitted.classifier.snapshot()?);
        Ok(write_container(&[
            (
                TAG_META,
                encode_meta(super::ARTIFACT_FS, self.seed, fitted.num_classes),
            ),
            (TAG_FSEP, fsep.into_bytes()),
            (TAG_NORM, norm.into_bytes()),
            (TAG_CLSF, clsf.into_bytes()),
        ]))
    }

    /// Deserializes an artifact written by [`FsAdapter::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] on structural problems (bad magic,
    /// wrong version, failed checksum, truncation, wrong artifact kind) and
    /// the component errors on semantically invalid state.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let sections = read_container(bytes)?;
        let (kind, seed, num_classes) = decode_meta(&sections)?;
        if kind != super::ARTIFACT_FS {
            return Err(CoreError::Persist(format!(
                "artifact kind {kind} is not an FS artifact"
            )));
        }
        let separation = decode_separation(&sections)?;
        let mut dec = Decoder::new(find_section(&sections, TAG_CLSF)?);
        let snapshot = read_classifier_snapshot(&mut dec)?;
        dec.expect_end()?;
        let classifier = restore_classifier(&snapshot)?;
        Ok(FsAdapter {
            config: AdapterConfig::default(),
            seed,
            fitted: Some(FittedFs {
                separation,
                classifier,
                num_classes,
            }),
        })
    }

    /// Writes the artifact produced by [`FsAdapter::to_bytes`] to disk.
    ///
    /// # Errors
    ///
    /// As [`FsAdapter::to_bytes`], plus I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let bytes = self.to_bytes()?;
        std::fs::write(path.as_ref(), bytes)
            .map_err(|e| CoreError::Persist(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Reads and deserializes an artifact written by [`FsAdapter::save`].
    ///
    /// # Errors
    ///
    /// As [`FsAdapter::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| CoreError::Persist(format!("read {}: {e}", path.as_ref().display())))?;
        FsAdapter::from_bytes(&bytes)
    }
}

impl crate::pipeline::DriftMitigator for FsAdapter {
    fn method(&self) -> crate::Method {
        crate::Method::Fs
    }

    fn is_fitted(&self) -> bool {
        FsAdapter::is_fitted(self)
    }

    fn num_classes(&self) -> usize {
        FsAdapter::num_classes(self)
    }

    fn fit(&mut self, source: &Dataset, target_shots: &Dataset) -> Result<()> {
        let _span = observe::call_span(observe::Call::Fit, crate::Method::Fs);
        self.fit_in_place(source, target_shots)
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::Predict, crate::Method::Fs);
        FsAdapter::predict(self, features)
    }

    fn predict_batch(&self, features: &Matrix, _threads: Option<usize>) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::PredictBatch, crate::Method::Fs);
        FsAdapter::predict(self, features)
    }

    fn try_predict_batch(
        &self,
        features: &Matrix,
        _threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let _span = observe::call_span(observe::Call::TryPredictBatch, crate::Method::Fs);
        self.try_predict(features, guard)
    }

    fn predict_batch_with(
        &self,
        features: &Matrix,
        _threads: Option<usize>,
        precision: InferPrecision,
    ) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::PredictBatch, crate::Method::Fs);
        observe::note_precision(precision);
        FsAdapter::predict_with(self, features, precision)
    }

    fn try_predict_batch_with(
        &self,
        features: &Matrix,
        _threads: Option<usize>,
        guard: &GuardConfig,
        precision: InferPrecision,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let _span = observe::call_span(observe::Call::TryPredictBatch, crate::Method::Fs);
        observe::note_precision(precision);
        self.try_predict_with(features, guard, precision)
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        FsAdapter::to_bytes(self)
    }

    fn variant_features(&self) -> Option<Vec<usize>> {
        self.is_fitted()
            .then(|| self.separation().variant().to_vec())
    }
}
