//! The full FS+GAN adapter (Fig. 1 of the paper): classifier trained on
//! **all** features of the source domain, served behind a [`Reconstructor`]
//! that maps each test sample's variant features back into the source
//! distribution at inference — no classifier retraining ever.

use super::{
    build_classifier, build_reconstructor, decode_meta, decode_separation, encode_meta, row_seed,
    AdapterConfig, DegradedMode, ReconKind,
};
use crate::fs::FeatureSeparation;
use crate::persist::{
    find_section, read_classifier_snapshot, read_container, read_recon_snapshot,
    write_classifier_snapshot, write_container, write_normalizer, write_recon_snapshot,
    write_separation, Decoder, Encoder, TAG_CLSF, TAG_FSEP, TAG_META, TAG_NORM, TAG_RECN,
};
use crate::pipeline::observe;
use crate::serve::{sanitize_batch, FitError, GuardConfig, ServeError};
use crate::{CoreError, Result};
use fsda_data::Dataset;
use fsda_gan::{restore_reconstructor, Reconstructor, TrainOutcome};
use fsda_linalg::par::{par_map, resolve_threads};
use fsda_linalg::Matrix;
use fsda_models::classifier::argmax_rows;
use fsda_models::restore_classifier;
use fsda_models::{Classifier, InferPrecision};

/// The trained components of an [`FsGanAdapter`], present only after `fit`.
struct FittedFsGan {
    separation: FeatureSeparation,
    reconstructor: Option<Box<dyn Reconstructor>>,
    classifier: Box<dyn Classifier>,
    num_classes: usize,
}

/// The full FS+GAN adapter (Fig. 1 of the paper).
pub struct FsGanAdapter {
    config: AdapterConfig,
    seed: u64,
    fitted: Option<FittedFsGan>,
}

/// Monte-Carlo draws averaged by every prediction entry point (the
/// general expectation the paper states before Eq. 10). The paper's M = 1
/// shortcut is justified only "for small noise vectors"; the default
/// generator draws a 30-dimensional noise block, and a single draw leaks
/// that sampling variance straight into the served labels (several points
/// of macro-F1 on the scenario grids). Eight draws sit where agreement
/// with the many-draw label stabilises (the `mc_ablation` bench uses
/// M = 9 as its reference); beyond that the curve is flat and the cost
/// is linear in draws. Reconstruction entry points
/// ([`FsGanAdapter::reconstruct_batch`] and friends) still expose single
/// draws — callers that want samples get samples, but a *label* is a
/// posterior summary and is averaged.
pub const MC_DRAWS: u64 = 8;

impl std::fmt::Debug for FsGanAdapter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.fitted {
            Some(fitted) => f
                .debug_struct("FsGanAdapter")
                .field("variant_features", &fitted.separation.variant().len())
                .field(
                    "reconstructor",
                    &fitted
                        .reconstructor
                        .as_ref()
                        .map(|r| r.name())
                        .unwrap_or("none"),
                )
                .field("classifier", &fitted.classifier.name())
                .finish(),
            None => f
                .debug_struct("FsGanAdapter")
                .field("fitted", &false)
                .finish(),
        }
    }
}

impl FsGanAdapter {
    /// Creates an unfitted adapter; train it with
    /// [`DriftMitigator::fit`](crate::pipeline::DriftMitigator::fit).
    pub fn new(config: AdapterConfig, seed: u64) -> Self {
        FsGanAdapter {
            config,
            seed,
            fitted: None,
        }
    }

    /// Fits the full pipeline: FS, then the reconstructor on source data
    /// only, then the classifier on all normalized source features.
    ///
    /// When FS finds no variant features the reconstructor is skipped and
    /// prediction degenerates to plain source-trained classification (the
    /// correct behaviour when no drift is detectable).
    ///
    /// # Errors
    ///
    /// Propagates separation, reconstruction, and training failures.
    pub fn fit(
        source: &Dataset,
        target_shots: &Dataset,
        config: &AdapterConfig,
        seed: u64,
    ) -> Result<Self> {
        let mut adapter = FsGanAdapter::new(config.clone(), seed);
        adapter.fit_in_place(source, target_shots)?;
        Ok(adapter)
    }

    /// Trains this adapter's components from its stored config and seed.
    pub(crate) fn fit_in_place(&mut self, source: &Dataset, target_shots: &Dataset) -> Result<()> {
        let stage = observe::start_stage();
        let separation = FeatureSeparation::fit(source, target_shots, &self.config.fs)?;
        observe::finish_stage(stage, "separation");
        self.fit_components(source, separation)
    }

    /// Fits the reconstructor + classifier behind a **precomputed**
    /// separation — the warm re-fit path: a drift controller that already
    /// re-separated through a [`crate::fs::SeparationCache`] skips the
    /// F-node search entirely and only pays for the source-side training.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidInput`] when the separation's
    /// feature space disagrees with `source`, and propagates reconstruction
    /// / training failures.
    pub fn fit_with_separation(
        source: &Dataset,
        separation: FeatureSeparation,
        config: &AdapterConfig,
        seed: u64,
    ) -> Result<Self> {
        if separation.num_features() != source.num_features() {
            return Err(crate::CoreError::InvalidInput(format!(
                "separation covers {} features, source has {}",
                separation.num_features(),
                source.num_features()
            )));
        }
        let mut adapter = FsGanAdapter::new(config.clone(), seed);
        adapter.fit_components(source, separation)?;
        Ok(adapter)
    }

    /// The source-side training shared by [`fit_in_place`]
    /// (`FsGanAdapter::fit_in_place`) and
    /// [`FsGanAdapter::fit_with_separation`].
    fn fit_components(&mut self, source: &Dataset, separation: FeatureSeparation) -> Result<()> {
        let (inv, var) = separation.split_normalized(source.features());
        // Degenerate partitions (all-variant or all-invariant) skip the
        // reconstructor and serve as normalized pass-through; see
        // [`FsGanAdapter::degraded`].
        let reconstructor = if separation.variant().is_empty() || separation.invariant().is_empty()
        {
            None
        } else {
            let stage = observe::start_stage();
            let mut recon = build_reconstructor(
                self.config.recon,
                source.num_features(),
                self.seed ^ 0x6A17,
                &self.config.budget,
                self.config.watchdog,
            );
            recon.fit(&inv, &var, &source.one_hot_labels())?;
            observe::finish_stage(stage, "reconstruction");
            Some(recon)
        };
        // The network-management model: trained once, on source only, with
        // ALL features — never retrained afterwards.
        let normalized = separation.normalizer().transform(source.features());
        let stage = observe::start_stage();
        let mut classifier =
            build_classifier(self.config.classifier, self.seed, &self.config.budget);
        classifier.fit(&normalized, source.labels(), source.num_classes())?;
        observe::finish_stage(stage, "classifier");
        self.fitted = Some(FittedFsGan {
            separation,
            reconstructor,
            classifier,
            num_classes: source.num_classes(),
        });
        Ok(())
    }

    /// Guarded variant of [`FsGanAdapter::fit`]: validates both training
    /// sets against `guard.policy` before fitting (rejecting or repairing
    /// NaN/Inf cells) and fails when the reconstructor's watchdog reports
    /// divergence, so a successfully returned adapter is always
    /// serviceable.
    ///
    /// # Errors
    ///
    /// [`FitError::CorruptSource`] / [`FitError::CorruptShots`] localize
    /// the first non-finite training cell under [`crate::InputPolicy::Reject`];
    /// [`FitError::ReconstructionDiverged`] reports watchdog exhaustion;
    /// everything the infallible path raises arrives as [`FitError::Core`].
    pub fn try_fit(
        source: &Dataset,
        target_shots: &Dataset,
        config: &AdapterConfig,
        seed: u64,
        guard: &GuardConfig,
    ) -> std::result::Result<Self, FitError> {
        let mut adapter = FsGanAdapter::new(config.clone(), seed);
        adapter.try_fit_in_place(source, target_shots, guard)?;
        Ok(adapter)
    }

    /// Guarded in-place training from the stored config and seed.
    pub(crate) fn try_fit_in_place(
        &mut self,
        source: &Dataset,
        target_shots: &Dataset,
        guard: &GuardConfig,
    ) -> std::result::Result<(), FitError> {
        let (src, shots) =
            crate::pipeline::fit_common::sanitize_fit_pair(source, target_shots, guard.policy)?;
        self.fit_in_place(
            src.as_ref().unwrap_or(source),
            shots.as_ref().unwrap_or(target_shots),
        )?;
        if let Some(TrainOutcome::Diverged { epoch }) = self.train_outcome() {
            return Err(FitError::ReconstructionDiverged { epoch });
        }
        Ok(())
    }

    fn fitted(&self) -> &FittedFsGan {
        match &self.fitted {
            Some(fitted) => fitted,
            None => panic!("FsGanAdapter: use before fit"),
        }
    }

    /// Whether the adapter has been fitted.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// The configuration this adapter was built with.
    pub fn config(&self) -> &AdapterConfig {
        &self.config
    }

    /// The underlying feature separation.
    ///
    /// # Panics
    ///
    /// Panics when the adapter has not been fitted.
    pub fn separation(&self) -> &FeatureSeparation {
        &self.fitted().separation
    }

    /// Name of the fitted reconstructor, `None` in degraded pass-through
    /// mode.
    pub fn reconstructor_name(&self) -> Option<&str> {
        self.fitted()
            .reconstructor
            .as_deref()
            .map(Reconstructor::name)
    }

    /// Whether this adapter serves in a degraded pass-through mode (no
    /// reconstructor), and why. `None` for a healthy pipeline.
    pub fn degraded(&self) -> Option<DegradedMode> {
        let fitted = self.fitted();
        if fitted.reconstructor.is_some() {
            None
        } else if fitted.separation.variant().is_empty() {
            Some(DegradedMode::NoVariantFeatures)
        } else {
            Some(DegradedMode::NoInvariantFeatures)
        }
    }

    /// How the reconstructor's guarded training ended. `None` when there is
    /// no reconstructor (degraded modes) or the adapter was restored from
    /// an artifact (training history is not persisted).
    pub fn train_outcome(&self) -> Option<TrainOutcome> {
        self.fitted()
            .reconstructor
            .as_ref()
            .and_then(|r| r.train_outcome())
    }

    /// Transforms raw target features into source-like normalized samples:
    /// invariant features pass through, variant features are reconstructed
    /// by the generator (Eq. 10–11).
    pub fn transform(&self, features: &Matrix) -> Matrix {
        self.transform_seeded(features, self.seed ^ 0x11FE)
    }

    fn transform_seeded(&self, features: &Matrix, noise_seed: u64) -> Matrix {
        let fitted = self.fitted();
        let (inv, var) = fitted.separation.split_normalized(features);
        match &fitted.reconstructor {
            Some(recon) => {
                let var_hat = recon.reconstruct(&inv, noise_seed);
                fitted.separation.reassemble(&inv, &var_hat)
            }
            None => fitted.separation.reassemble(&inv, &var),
        }
    }

    /// Predicts labels for raw target features, averaging class
    /// probabilities over [`MC_DRAWS`] generator draws (Eq. 12 via the
    /// general expectation before Eq. 10). Identical to
    /// [`FsGanAdapter::predict_batch`] with the default thread count.
    pub fn predict(&self, features: &Matrix) -> Vec<usize> {
        argmax_rows(&self.mc_proba_with(features, None, InferPrecision::F64Exact))
    }

    /// Monte-Carlo prediction with an explicit number of generator draws
    /// `m`, averaging class probabilities (the general Eq. before Eq. 10).
    /// Draws use the same per-row seeding as the batch serving path, so
    /// `m` = [`MC_DRAWS`] reproduces [`FsGanAdapter::predict`] exactly.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn predict_mc(&self, features: &Matrix, m: usize) -> Vec<usize> {
        assert!(m > 0, "predict_mc: m must be >= 1");
        argmax_rows(&self.mc_proba_draws(features, None, InferPrecision::F64Exact, m as u64))
    }

    /// Class-probability predictions averaged over [`MC_DRAWS`] draws.
    pub fn predict_proba(&self, features: &Matrix) -> Matrix {
        self.mc_proba_with(features, None, InferPrecision::F64Exact)
    }

    /// Mean class probabilities over [`MC_DRAWS`] reconstruction draws.
    fn mc_proba_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
    ) -> Matrix {
        self.mc_proba_draws(features, threads, precision, MC_DRAWS)
    }

    /// Infallible MC accumulation: the finite check is the accumulator's
    /// only error source, and it is disabled here.
    fn mc_proba_draws(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
        draws: u64,
    ) -> Matrix {
        match self.mc_proba_checked(features, threads, precision, draws, false) {
            Ok(probs) => probs,
            Err(e) => unreachable!("unchecked MC accumulation reported {e}"),
        }
    }

    /// The shared Monte-Carlo accumulator behind every prediction entry
    /// point: reconstructs `draws` independent draws (per-row seeded, so
    /// the result is chunking- and thread-count-invariant), averages the
    /// classifier's probabilities, and — when `check_finite` is set —
    /// fails with the guarded path's [`ServeError::NonFiniteOutput`] on
    /// the first non-finite reconstructed cell of any draw. Degraded
    /// (pass-through) adapters collapse to a single draw: without a
    /// reconstructor every draw is identical.
    fn mc_proba_checked(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
        draws: u64,
        check_finite: bool,
    ) -> std::result::Result<Matrix, ServeError> {
        let fitted = self.fitted();
        let draws = if fitted.reconstructor.is_some() {
            draws.max(1)
        } else {
            1
        };
        let draw_probs = |draw: u64| -> std::result::Result<Matrix, ServeError> {
            let out = self.reconstruct_batch_draw(features, threads, precision, draw);
            if check_finite {
                for r in 0..out.rows() {
                    if let Some(c) = out.row(r).iter().position(|v| !v.is_finite()) {
                        return Err(ServeError::NonFiniteOutput { row: r, col: c });
                    }
                }
            }
            Ok(fitted.classifier.predict_proba_with(&out, precision))
        };
        let mut acc = draw_probs(0)?;
        for draw in 1..draws {
            // One classifier, one row count: every draw has the same
            // (rows × classes) shape.
            acc = acc
                .try_add(&draw_probs(draw)?)
                .unwrap_or_else(|e| panic!("predict_proba shape invariant: {e}"));
        }
        Ok(acc.scale(1.0 / draws as f64))
    }

    /// Number of classes.
    ///
    /// # Panics
    ///
    /// Panics when the adapter has not been fitted.
    pub fn num_classes(&self) -> usize {
        self.fitted().num_classes
    }

    /// The batched serving hot path: transforms raw target features like
    /// [`FsGanAdapter::transform`], but with one independent noise seed per
    /// row and the normalization + generator forward passes amortized over
    /// row chunks on the shared worker pool (`threads: None` uses every
    /// core).
    ///
    /// The output is **bit-identical for every thread count**, including
    /// the per-sample reference loop [`FsGanAdapter::reconstruct_scalar`]:
    /// row `r`'s noise depends only on the adapter seed and `r`, never on
    /// how rows are chunked or scheduled.
    ///
    /// This is the unguarded fast path: input is assumed validated.
    /// NaN/Inf cells propagate garbage-in/garbage-out into the output; use
    /// [`FsGanAdapter::try_reconstruct_batch`] on untrusted telemetry.
    ///
    /// # Panics
    ///
    /// Panics when `features` has a different column count than the fitted
    /// data.
    pub fn reconstruct_batch(&self, features: &Matrix, threads: Option<usize>) -> Matrix {
        self.reconstruct_batch_with(features, threads, InferPrecision::F64Exact)
    }

    /// [`FsGanAdapter::reconstruct_batch`] at an explicit numeric
    /// precision. [`InferPrecision::F64Exact`] is bit-identical to
    /// `reconstruct_batch` (and to [`FsGanAdapter::reconstruct_scalar`]);
    /// [`InferPrecision::F32Fast`] runs the reconstructor's compiled
    /// single-precision plan, trading a small bounded divergence for
    /// throughput. The separation/normalization arithmetic around the
    /// generator always stays in `f64`.
    ///
    /// # Panics
    ///
    /// As [`FsGanAdapter::reconstruct_batch`].
    pub fn reconstruct_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
    ) -> Matrix {
        self.reconstruct_batch_draw(features, threads, precision, 0)
    }

    /// One Monte-Carlo reconstruction draw: like
    /// [`FsGanAdapter::reconstruct_batch_with`] but with the noise stream
    /// offset by `draw`, so draw 0 is bit-identical to the public batch
    /// path and further draws give independent generator samples with the
    /// same per-row (chunking-invariant) seeding discipline.
    fn reconstruct_batch_draw(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
        draw: u64,
    ) -> Matrix {
        let fitted = self.fitted();
        if features.rows() == 0 {
            return fitted.separation.normalizer().transform(features);
        }
        let threads = resolve_threads(threads);
        let rows = features.rows();
        let chunk = rows.div_ceil(threads).max(1);
        let chunks: Vec<(usize, usize)> = (0..rows)
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(rows)))
            .collect();
        let base = self.seed ^ 0x11FE ^ (draw << 32);
        let separation = &fitted.separation;
        let recon = fitted.reconstructor.as_deref();
        let parts = par_map(threads, &chunks, |_, &(start, end)| {
            let idx: Vec<usize> = (start..end).collect();
            let block = features.select_rows(&idx);
            let (inv, var) = separation.split_normalized(&block);
            match recon {
                Some(r) => {
                    let seeds: Vec<u64> =
                        (start..end).map(|row| row_seed(base, row as u64)).collect();
                    let var_hat = r.reconstruct_rows_with(&inv, &seeds, precision);
                    separation.reassemble(&inv, &var_hat)
                }
                None => separation.reassemble(&inv, &var),
            }
        });
        // Copy each chunk into a preallocated output instead of folding
        // with vstack, which cloned the first chunk and reallocated the
        // accumulator once per remaining chunk.
        let mut out = Matrix::zeros(rows, features.cols());
        for (part, &(start, end)) in parts.iter().zip(&chunks) {
            assert_eq!(part.rows(), end - start, "chunk row invariant");
            for (i, r) in (start..end).enumerate() {
                out.row_mut(r).copy_from_slice(part.row(i));
            }
        }
        out
    }

    /// Per-sample reference loop for [`FsGanAdapter::reconstruct_batch`]:
    /// transforms one row at a time through the scalar reconstruction
    /// entry point. Slow by construction; exists so tests and benches can
    /// pin the batched path to it bit-for-bit.
    pub fn reconstruct_scalar(&self, features: &Matrix) -> Matrix {
        let fitted = self.fitted();
        let base = self.seed ^ 0x11FE;
        let mut out = Matrix::zeros(features.rows(), features.cols());
        for r in 0..features.rows() {
            let row = features.select_rows(&[r]);
            let (inv, var) = fitted.separation.split_normalized(&row);
            let transformed = match &fitted.reconstructor {
                Some(recon) => {
                    let var_hat = recon.reconstruct(&inv, row_seed(base, r as u64));
                    fitted.separation.reassemble(&inv, &var_hat)
                }
                None => fitted.separation.reassemble(&inv, &var),
            };
            out.row_mut(r).copy_from_slice(transformed.row(0));
        }
        out
    }

    /// Batched prediction: class probabilities averaged over [`MC_DRAWS`]
    /// per-row-seeded reconstruction draws, then one argmax. Like the
    /// reconstruction itself, the predictions are identical for every
    /// thread count.
    ///
    /// This is the unguarded fast path; it inherits the contract of
    /// [`FsGanAdapter::reconstruct_batch`]. Use
    /// [`FsGanAdapter::try_predict_batch`] on untrusted telemetry.
    ///
    /// # Panics
    ///
    /// Panics when `features` has a different column count than the fitted
    /// data.
    pub fn predict_batch(&self, features: &Matrix, threads: Option<usize>) -> Vec<usize> {
        self.predict_batch_with(features, threads, InferPrecision::F64Exact)
    }

    /// [`FsGanAdapter::predict_batch`] at an explicit numeric precision:
    /// both the reconstructor and the classifier forward passes run at
    /// `precision`. [`InferPrecision::F64Exact`] is bit-identical to
    /// `predict_batch`.
    ///
    /// # Panics
    ///
    /// As [`FsGanAdapter::predict_batch`].
    pub fn predict_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
    ) -> Vec<usize> {
        argmax_rows(&self.mc_proba_with(features, threads, precision))
    }

    /// Guarded variant of [`FsGanAdapter::reconstruct_batch`]: validates
    /// the batch against the source-fitted normalizer and `guard` before
    /// reconstruction (rejecting or repairing corrupt cells), then verifies
    /// the output is fully finite. A clean batch takes the identical
    /// reconstruction path and returns bit-identical output.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a column-count mismatch;
    /// [`ServeError::NonFinite`] / [`ServeError::OutOfRange`] localizing
    /// the first corrupt input cell under [`crate::InputPolicy::Reject`];
    /// [`ServeError::NonFiniteOutput`] when the pipeline itself emits a
    /// non-finite value (corrupt artifact or diverged reconstructor).
    pub fn try_reconstruct_batch(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Matrix, ServeError> {
        self.try_reconstruct_batch_with(features, threads, guard, InferPrecision::F64Exact)
    }

    /// [`FsGanAdapter::try_reconstruct_batch`] at an explicit numeric
    /// precision. The input validation and the finite-output check are
    /// identical at both precisions; only the generator forward pass
    /// changes.
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::try_reconstruct_batch`].
    pub fn try_reconstruct_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
        precision: InferPrecision,
    ) -> std::result::Result<Matrix, ServeError> {
        let repaired = sanitize_batch(features, self.fitted().separation.normalizer(), guard)?;
        let clean = repaired.as_ref().unwrap_or(features);
        let out = self.reconstruct_batch_with(clean, threads, precision);
        for r in 0..out.rows() {
            if let Some(c) = out.row(r).iter().position(|v| !v.is_finite()) {
                return Err(ServeError::NonFiniteOutput { row: r, col: c });
            }
        }
        Ok(out)
    }

    /// Guarded variant of [`FsGanAdapter::predict_batch`]: the batch is
    /// validated (and possibly repaired) once, then every Monte-Carlo
    /// reconstruction draw is checked for finiteness before its
    /// probabilities enter the average, so predictions are never derived
    /// from non-finite reconstructions. A clean batch takes the identical
    /// Monte-Carlo path as `predict_batch` and returns the same labels.
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::try_reconstruct_batch`].
    pub fn try_predict_batch(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        self.try_predict_batch_with(features, threads, guard, InferPrecision::F64Exact)
    }

    /// [`FsGanAdapter::try_predict_batch`] at an explicit numeric
    /// precision; both forward passes run at `precision`.
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::try_reconstruct_batch`].
    pub fn try_predict_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
        precision: InferPrecision,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let repaired = sanitize_batch(features, self.fitted().separation.normalizer(), guard)?;
        let clean = repaired.as_ref().unwrap_or(features);
        Ok(argmax_rows(&self.mc_proba_checked(
            clean, threads, precision, MC_DRAWS, true,
        )?))
    }

    /// Serializes the fitted pipeline — FS partition with config
    /// provenance, normalizer statistics, reconstructor weights (including
    /// batch-norm running statistics), classifier state — into a versioned
    /// artifact (see [`crate::persist`] for the format).
    ///
    /// # Errors
    ///
    /// Fails when the classifier family does not support snapshots, or when
    /// the adapter has not been fitted.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let fitted = match &self.fitted {
            Some(fitted) => fitted,
            None => {
                return Err(CoreError::InvalidInput(
                    "FsGanAdapter: to_bytes before fit".into(),
                ))
            }
        };
        let mut fsep = Encoder::new();
        write_separation(&mut fsep, &fitted.separation);
        let mut norm = Encoder::new();
        write_normalizer(&mut norm, fitted.separation.normalizer());
        let mut recn = Encoder::new();
        match &fitted.reconstructor {
            Some(recon) => {
                recn.put_bool(true);
                write_recon_snapshot(&mut recn, &recon.snapshot()?);
            }
            None => recn.put_bool(false),
        }
        let mut clsf = Encoder::new();
        write_classifier_snapshot(&mut clsf, &fitted.classifier.snapshot()?);
        Ok(write_container(&[
            (
                TAG_META,
                encode_meta(super::ARTIFACT_FSGAN, self.seed, fitted.num_classes),
            ),
            (TAG_FSEP, fsep.into_bytes()),
            (TAG_NORM, norm.into_bytes()),
            (TAG_RECN, recn.into_bytes()),
            (TAG_CLSF, clsf.into_bytes()),
        ]))
    }

    /// Deserializes an artifact written by [`FsGanAdapter::to_bytes`]. The
    /// reloaded adapter reconstructs and predicts bit-identically to the
    /// one that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Persist`] on structural problems (bad magic,
    /// wrong version, failed checksum, truncation, wrong artifact kind) and
    /// the component errors on semantically invalid state.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let sections = read_container(bytes)?;
        let (kind, seed, num_classes) = decode_meta(&sections)?;
        if kind != super::ARTIFACT_FSGAN {
            return Err(CoreError::Persist(format!(
                "artifact kind {kind} is not an FS+GAN artifact"
            )));
        }
        let separation = decode_separation(&sections)?;
        let mut dec = Decoder::new(find_section(&sections, TAG_RECN)?);
        let reconstructor = if dec.take_bool()? {
            let snapshot = read_recon_snapshot(&mut dec)?;
            dec.expect_end()?;
            Some(restore_reconstructor(&snapshot)?)
        } else {
            dec.expect_end()?;
            None
        };
        let mut dec = Decoder::new(find_section(&sections, TAG_CLSF)?);
        let snapshot = read_classifier_snapshot(&mut dec)?;
        dec.expect_end()?;
        let classifier = restore_classifier(&snapshot)?;
        // Recover the reconstruction strategy from the restored model so a
        // reloaded artifact reports the same `Method` it was trained as.
        // Degraded (pass-through) artifacts carry no reconstructor and keep
        // the default GAN label.
        let recon = match reconstructor.as_deref().map(Reconstructor::name) {
            Some("gan-nocond") => ReconKind::GanNoCond,
            Some("vae") => ReconKind::Vae,
            Some("ae") => ReconKind::VanillaAe,
            _ => ReconKind::Gan,
        };
        Ok(FsGanAdapter {
            config: AdapterConfig {
                recon,
                ..AdapterConfig::default()
            },
            seed,
            fitted: Some(FittedFsGan {
                separation,
                reconstructor,
                classifier,
                num_classes,
            }),
        })
    }

    /// Writes the artifact produced by [`FsGanAdapter::to_bytes`] to disk.
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::to_bytes`], plus I/O failures.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let bytes = self.to_bytes()?;
        std::fs::write(path.as_ref(), bytes)
            .map_err(|e| CoreError::Persist(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Reads and deserializes an artifact written by
    /// [`FsGanAdapter::save`].
    ///
    /// # Errors
    ///
    /// As [`FsGanAdapter::from_bytes`], plus I/O failures.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| CoreError::Persist(format!("read {}: {e}", path.as_ref().display())))?;
        FsGanAdapter::from_bytes(&bytes)
    }
}

impl crate::pipeline::DriftMitigator for FsGanAdapter {
    fn method(&self) -> crate::Method {
        match self.config.recon {
            super::ReconKind::Gan => crate::Method::FsGan,
            super::ReconKind::GanNoCond => crate::Method::FsNoCond,
            super::ReconKind::Vae => crate::Method::FsVae,
            super::ReconKind::VanillaAe => crate::Method::FsVanillaAe,
        }
    }

    fn is_fitted(&self) -> bool {
        FsGanAdapter::is_fitted(self)
    }

    fn num_classes(&self) -> usize {
        FsGanAdapter::num_classes(self)
    }

    fn fit(&mut self, source: &Dataset, target_shots: &Dataset) -> Result<()> {
        let _span = observe::call_span(observe::Call::Fit, self.method());
        self.fit_in_place(source, target_shots)
    }

    fn try_fit(
        &mut self,
        source: &Dataset,
        target_shots: &Dataset,
        guard: &GuardConfig,
    ) -> std::result::Result<(), FitError> {
        let _span = observe::call_span(observe::Call::Fit, self.method());
        self.try_fit_in_place(source, target_shots, guard)
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::Predict, self.method());
        FsGanAdapter::predict(self, features)
    }

    fn predict_batch(&self, features: &Matrix, threads: Option<usize>) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::PredictBatch, self.method());
        FsGanAdapter::predict_batch(self, features, threads)
    }

    fn try_predict_batch(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let _span = observe::call_span(observe::Call::TryPredictBatch, self.method());
        if fsda_telemetry::enabled() && self.is_fitted() && self.degraded().is_some() {
            fsda_telemetry::counter("serve.degraded_requests", 1);
        }
        FsGanAdapter::try_predict_batch(self, features, threads, guard)
    }

    fn predict_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
    ) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::PredictBatch, self.method());
        observe::note_precision(precision);
        FsGanAdapter::predict_batch_with(self, features, threads, precision)
    }

    fn try_predict_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
        precision: InferPrecision,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let _span = observe::call_span(observe::Call::TryPredictBatch, self.method());
        observe::note_precision(precision);
        if fsda_telemetry::enabled() && self.is_fitted() && self.degraded().is_some() {
            fsda_telemetry::counter("serve.degraded_requests", 1);
        }
        FsGanAdapter::try_predict_batch_with(self, features, threads, guard, precision)
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        FsGanAdapter::to_bytes(self)
    }

    fn variant_features(&self) -> Option<Vec<usize>> {
        self.is_fitted()
            .then(|| self.separation().variant().to_vec())
    }

    fn health(&self) -> String {
        let recon = self.reconstructor_name().unwrap_or("none (pass-through)");
        let outcome = match self.train_outcome() {
            Some(o) => o.to_string(),
            None => "n/a".into(),
        };
        let degraded = match self.degraded() {
            Some(mode) => format!("degraded: {mode}"),
            None => "healthy".to_string(),
        };
        format!("pipeline health: reconstructor={recon} training={outcome} status={degraded}")
    }
}
