//! The FS and FS+GAN adapters: Sections V-A and V-C of the paper, glued
//! into deployable objects.
//!
//! This module holds the shared configuration surface ([`Budget`],
//! [`AdapterConfig`]) and the component factories ([`build_classifier`],
//! [`build_reconstructor`]); the adapters themselves live in the focused
//! submodules behind [`FsAdapter`] (classifier on invariant features only)
//! and [`FsGanAdapter`] (classifier on all features behind a reconstruction
//! front-end). Both
//! adapters implement [`crate::pipeline::DriftMitigator`], so they can be
//! built, served, and persisted through the method registry without naming
//! their concrete types.

mod fs;
mod fs_gan;
#[cfg(test)]
mod tests;

pub use fs::FsAdapter;
pub use fs_gan::{FsGanAdapter, MC_DRAWS};

use crate::fs::{FeatureSeparation, FsConfig};
use crate::persist::{
    find_section, read_container, read_normalizer, read_separation, Decoder, Encoder, TAG_FSEP,
    TAG_META, TAG_NORM,
};
use crate::{CoreError, Result};
use fsda_gan::autoencoder::{AeConfig, VanillaAe};
use fsda_gan::cond_gan::{CondGan, CondGanConfig};
use fsda_gan::vae::{Vae, VaeConfig};
use fsda_gan::{Reconstructor, WatchdogConfig};
use fsda_models::forest::{ForestConfig, RandomForest};
use fsda_models::gbdt::{GbdtConfig, GradientBoosting};
use fsda_models::mlp::{MlpClassifier, MlpConfig};
use fsda_models::tnet::{TnetClassifier, TnetConfig};
use fsda_models::{Classifier, ClassifierKind};

/// Compute budget shared by every trained component. The `full()` values
/// correspond to the paper's settings; `quick()` keeps unit tests and CI
/// fast while exercising identical code paths.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Epochs for classifier neural networks (MLP/TNet/DANN/SCL).
    pub nn_epochs: usize,
    /// Epochs for GAN / VAE / AE reconstructors (paper: 500 for the GAN).
    pub gan_epochs: usize,
    /// Epochs for embedding networks (MatchNet/ProtoNet/SCL encoders).
    pub emb_epochs: usize,
    /// Trees in the random forest.
    pub forest_trees: usize,
    /// Boosting rounds for XGB.
    pub gbdt_rounds: usize,
    /// Worker threads for tree ensembles.
    pub threads: usize,
}

impl Budget {
    /// Paper-scale budget.
    pub fn full() -> Self {
        Budget {
            nn_epochs: 60,
            gan_epochs: 300,
            emb_epochs: 60,
            forest_trees: 100,
            gbdt_rounds: 40,
            threads: 8,
        }
    }

    /// Reduced budget for tests and smoke runs. The GAN keeps a larger
    /// share of its schedule than the other nets because its paper-faithful
    /// learning rate (2e-4) needs steps to converge.
    pub fn quick() -> Self {
        Budget {
            nn_epochs: 20,
            gan_epochs: 150,
            emb_epochs: 20,
            forest_trees: 50,
            gbdt_rounds: 10,
            threads: 4,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::full()
    }
}

/// Builds a classifier of the given kind under a budget.
pub fn build_classifier(kind: ClassifierKind, seed: u64, budget: &Budget) -> Box<dyn Classifier> {
    match kind {
        ClassifierKind::Tnet => Box::new(TnetClassifier::new(
            TnetConfig {
                epochs: budget.nn_epochs,
                ..TnetConfig::default()
            },
            seed,
        )),
        ClassifierKind::Mlp => Box::new(MlpClassifier::new(
            MlpConfig {
                epochs: budget.nn_epochs,
                ..MlpConfig::default()
            },
            seed,
        )),
        ClassifierKind::RandomForest => Box::new(RandomForest::new(
            ForestConfig {
                num_trees: budget.forest_trees,
                threads: budget.threads,
                ..ForestConfig::default()
            },
            seed,
        )),
        ClassifierKind::Xgb => Box::new(GradientBoosting::new(
            GbdtConfig {
                rounds: budget.gbdt_rounds,
                ..GbdtConfig::default()
            },
            seed,
        )),
    }
}

/// Reconstruction families for the variant features (Table II ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconKind {
    /// Conditional GAN with label-conditioned discriminator (FS+GAN).
    Gan,
    /// GAN without label conditioning (FS+NoCond).
    GanNoCond,
    /// Conditional VAE (FS+VAE).
    Vae,
    /// Vanilla autoencoder (FS+VanillaAE).
    VanillaAe,
}

impl ReconKind {
    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            ReconKind::Gan => "FS+GAN",
            ReconKind::GanNoCond => "FS+NoCond",
            ReconKind::Vae => "FS+VAE",
            ReconKind::VanillaAe => "FS+VanillaAE",
        }
    }
}

/// Builds a reconstructor of the given kind, sized per the paper's rules:
/// datasets with more than 250 features use noise dim 30 / hidden 256 (the
/// 5GC settings), smaller ones 15 / 128 (the 5GIPC settings).
pub fn build_reconstructor(
    kind: ReconKind,
    num_features: usize,
    seed: u64,
    budget: &Budget,
    watchdog: WatchdogConfig,
) -> Box<dyn Reconstructor> {
    let base = if num_features > 250 {
        CondGanConfig::for_5gc()
    } else {
        CondGanConfig::for_5gipc()
    };
    let hidden = base.hidden;
    match kind {
        ReconKind::Gan => Box::new(CondGan::new(
            CondGanConfig {
                epochs: budget.gan_epochs,
                watchdog,
                ..base
            },
            seed,
        )),
        ReconKind::GanNoCond => Box::new(CondGan::new(
            CondGanConfig {
                epochs: budget.gan_epochs,
                watchdog,
                ..base
            }
            .without_label_conditioning(),
            seed,
        )),
        ReconKind::Vae => Box::new(Vae::new(
            VaeConfig {
                hidden,
                epochs: budget.gan_epochs,
                watchdog,
                ..VaeConfig::default()
            },
            seed,
        )),
        ReconKind::VanillaAe => Box::new(VanillaAe::new(
            AeConfig {
                hidden,
                epochs: budget.gan_epochs,
                watchdog,
                ..AeConfig::default()
            },
            seed,
        )),
    }
}

/// Configuration shared by [`FsAdapter`] and [`FsGanAdapter`].
#[derive(Debug, Clone)]
pub struct AdapterConfig {
    /// Feature-separation settings.
    pub fs: FsConfig,
    /// Reconstruction family (FS+GAN ignores this only in [`FsAdapter`]).
    pub recon: ReconKind,
    /// Classifier family.
    pub classifier: ClassifierKind,
    /// Compute budget.
    pub budget: Budget,
    /// Divergence-watchdog policy applied to reconstructor training. The
    /// default detects NaN/Inf losses and rolls back to the last finite
    /// snapshot while leaving healthy runs bit-identical to unguarded
    /// training.
    pub watchdog: WatchdogConfig,
}

impl Default for AdapterConfig {
    fn default() -> Self {
        AdapterConfig {
            fs: FsConfig::default(),
            recon: ReconKind::Gan,
            classifier: ClassifierKind::Tnet,
            budget: Budget::full(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl AdapterConfig {
    /// Reduced-budget configuration for tests.
    pub fn quick() -> Self {
        AdapterConfig {
            budget: Budget::quick(),
            ..AdapterConfig::default()
        }
    }

    /// Builder-style classifier override.
    pub fn with_classifier(mut self, kind: ClassifierKind) -> Self {
        self.classifier = kind;
        self
    }

    /// Builder-style reconstructor override.
    pub fn with_recon(mut self, kind: ReconKind) -> Self {
        self.recon = kind;
        self
    }
}

/// Why an [`FsGanAdapter`] is serving without a reconstructor: the FS step
/// produced a degenerate partition, so serving falls back to plain
/// normalized pass-through. Both modes are usable (the classifier still
/// runs); the flag exists so operators can tell a deliberate fallback from
/// a healthy pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// FS found no variant features: nothing drifted detectably, and
    /// pass-through is the *correct* behaviour, not a fallback.
    NoVariantFeatures,
    /// FS declared every feature variant: the reconstructor would have
    /// nothing to condition on, so variant features pass through
    /// unreconstructed and accuracy degrades toward SrcOnly.
    NoInvariantFeatures,
}

impl std::fmt::Display for DegradedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradedMode::NoVariantFeatures => write!(f, "no variant features (no drift found)"),
            DegradedMode::NoInvariantFeatures => {
                write!(f, "no invariant features (nothing to condition on)")
            }
        }
    }
}

/// Artifact-kind byte identifying an [`FsAdapter`] artifact.
pub(crate) const ARTIFACT_FS: u8 = 0;
/// Artifact-kind byte identifying an [`FsGanAdapter`] artifact.
pub(crate) const ARTIFACT_FSGAN: u8 = 1;
/// Artifact-kind byte for the classifier-family baselines (SrcOnly,
/// TarOnly, S&T, Fine-tune, CORAL, CMT, ICD).
pub(crate) const ARTIFACT_CLASSIFIER: u8 = 2;
/// Artifact-kind byte for DANN.
pub(crate) const ARTIFACT_DANN: u8 = 3;
/// Artifact-kind byte for SCL.
pub(crate) const ARTIFACT_SCL: u8 = 4;
/// Artifact-kind byte for MatchNet.
pub(crate) const ARTIFACT_MATCHNET: u8 = 5;
/// Artifact-kind byte for ProtoNet.
pub(crate) const ARTIFACT_PROTONET: u8 = 6;
/// Artifact-kind byte for FADA.
pub(crate) const ARTIFACT_FADA: u8 = 7;
/// Artifact-kind byte for FMAA.
pub(crate) const ARTIFACT_FMAA: u8 = 8;

/// Derives one independent noise seed per serving row (splitmix64 mix).
/// Row `r` always gets the same seed no matter how rows are chunked across
/// worker threads, which is what makes [`FsGanAdapter::reconstruct_batch`]
/// bit-identical to the per-sample loop at every thread count.
pub(crate) fn row_seed(base: u64, row: u64) -> u64 {
    let mut z = base ^ row.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Decodes the FSEP + NORM sections back into a [`FeatureSeparation`].
pub(crate) fn decode_separation(sections: &[([u8; 4], &[u8])]) -> Result<FeatureSeparation> {
    let mut dec = Decoder::new(find_section(sections, TAG_FSEP)?);
    let parts = read_separation(&mut dec)?;
    dec.expect_end()?;
    let mut dec = Decoder::new(find_section(sections, TAG_NORM)?);
    let normalizer = read_normalizer(&mut dec)?;
    dec.expect_end()?;
    if normalizer.num_features() != parts.num_features {
        return Err(CoreError::Persist(format!(
            "FS section declares {} features but the normalizer holds {}",
            parts.num_features,
            normalizer.num_features()
        )));
    }
    FeatureSeparation::from_parts(
        parts.variant,
        parts.invariant,
        normalizer,
        parts.tests_run,
        parts.config,
    )
}

/// Decodes the META section: `(artifact kind, seed, num_classes)`.
pub(crate) fn decode_meta(sections: &[([u8; 4], &[u8])]) -> Result<(u8, u64, usize)> {
    let mut dec = Decoder::new(find_section(sections, TAG_META)?);
    let kind = dec.take_u8()?;
    let seed = dec.take_u64()?;
    let num_classes = dec.take_usize()?;
    dec.expect_end()?;
    Ok((kind, seed, num_classes))
}

/// Encodes the META section shared by every artifact kind.
pub(crate) fn encode_meta(kind: u8, seed: u64, num_classes: usize) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u8(kind);
    enc.put_u64(seed);
    enc.put_usize(num_classes);
    enc.into_bytes()
}

/// Reads an artifact's META section straight from its container bytes:
/// `(artifact kind, seed, num_classes)`. This is how the registry decides
/// which mitigator an artifact belongs to without decoding the payload.
///
/// # Errors
///
/// Structural container failures and a malformed META section surface as
/// [`CoreError::Persist`].
pub fn peek_meta(bytes: &[u8]) -> Result<(u8, u64, usize)> {
    let sections = read_container(bytes)?;
    decode_meta(&sections)
}
