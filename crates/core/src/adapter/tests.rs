#![allow(clippy::unwrap_used, clippy::expect_used)]

use super::*;
use crate::serve::{FitError, GuardConfig, InputPolicy, ServeError};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::Synth5gc;
use fsda_data::Dataset;
use fsda_gan::WatchdogConfig;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::metrics::macro_f1;
use fsda_models::ClassifierKind;

fn setup(seed: u64) -> (fsda_data::synth5gc::Synth5gcBundle, Dataset) {
    let bundle = Synth5gc::small().generate(seed).unwrap();
    let mut rng = SeededRng::new(seed ^ 0xAB);
    let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
    (bundle, shots)
}

#[test]
fn fs_adapter_beats_source_only() {
    let (bundle, shots) = setup(1);
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 7).unwrap();
    let pred_fs = fs.predict(bundle.target_test.features());
    let f1_fs = macro_f1(bundle.target_test.labels(), &pred_fs, 16);

    // SrcOnly comparison: same classifier on all features.
    let norm = fs.separation().normalizer();
    let mut src_only = build_classifier(ClassifierKind::RandomForest, 7, &Budget::quick());
    src_only
        .fit(
            &norm.transform(bundle.source_train.features()),
            bundle.source_train.labels(),
            16,
        )
        .unwrap();
    let pred_src = src_only.predict(&norm.transform(bundle.target_test.features()));
    let f1_src = macro_f1(bundle.target_test.labels(), &pred_src, 16);
    assert!(
        f1_fs > f1_src + 0.1,
        "FS ({f1_fs:.3}) must clearly beat SrcOnly ({f1_src:.3}) under drift"
    );
}

#[test]
fn fs_gan_adapter_beats_source_only() {
    let (bundle, shots) = setup(2);
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 9).unwrap();
    let pred = adapter.predict(bundle.target_test.features());
    let f1 = macro_f1(bundle.target_test.labels(), &pred, 16);

    let norm = adapter.separation().normalizer();
    let mut src_only = build_classifier(ClassifierKind::RandomForest, 9, &Budget::quick());
    src_only
        .fit(
            &norm.transform(bundle.source_train.features()),
            bundle.source_train.labels(),
            16,
        )
        .unwrap();
    let pred_src = src_only.predict(&norm.transform(bundle.target_test.features()));
    let f1_src = macro_f1(bundle.target_test.labels(), &pred_src, 16);
    assert!(
        f1 > f1_src + 0.05,
        "FS+GAN ({f1:.3}) must clearly beat SrcOnly ({f1_src:.3}) under drift"
    );
    assert!(
        f1 > 0.3,
        "FS+GAN should recover substantial performance, got {f1:.3}"
    );
}

#[test]
fn transform_restores_source_range_on_variant_columns() {
    let (bundle, shots) = setup(3);
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 11).unwrap();
    let transformed = adapter.transform(bundle.target_test.features());
    // Variant columns were reconstructed by the tanh generator: bounded.
    for &c in adapter.separation().variant() {
        let col = transformed.col(c);
        assert!(
            col.iter().all(|v| v.abs() <= 1.0 + 1e-9),
            "column {c} out of range"
        );
    }
}

#[test]
fn mc_prediction_with_small_noise_matches_single_draw() {
    let (bundle, shots) = setup(4);
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 13).unwrap();
    let single = adapter.predict(bundle.target_test.features());
    let mc = adapter.predict_mc(bundle.target_test.features(), 3);
    let agreement =
        single.iter().zip(&mc).filter(|(a, b)| a == b).count() as f64 / single.len() as f64;
    assert!(agreement > 0.8, "M=1 vs M=3 agreement {agreement}");
}

#[test]
fn budget_and_config_builders() {
    let cfg = AdapterConfig::quick()
        .with_classifier(ClassifierKind::Xgb)
        .with_recon(ReconKind::Vae);
    assert_eq!(cfg.classifier, ClassifierKind::Xgb);
    assert_eq!(cfg.recon, ReconKind::Vae);
    assert!(Budget::full().gan_epochs > Budget::quick().gan_epochs);
    assert_eq!(ReconKind::Gan.label(), "FS+GAN");
    assert_eq!(ReconKind::VanillaAe.label(), "FS+VanillaAE");
}

#[test]
fn save_load_round_trip_is_bit_identical() {
    let (bundle, shots) = setup(7);
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 17).unwrap();
    let bytes = adapter.to_bytes().unwrap();
    let loaded = FsGanAdapter::from_bytes(&bytes).unwrap();
    // Encode -> decode -> encode is byte-identical.
    assert_eq!(loaded.to_bytes().unwrap(), bytes);
    let x = bundle.target_test.features();
    assert_eq!(loaded.predict(x), adapter.predict(x));
    assert_eq!(loaded.transform(x), adapter.transform(x));
    assert_eq!(
        loaded.reconstruct_batch(x, Some(2)),
        adapter.reconstruct_batch(x, Some(2))
    );
    assert_eq!(
        loaded.separation().variant(),
        adapter.separation().variant()
    );
    assert_eq!(loaded.num_classes(), adapter.num_classes());
}

#[test]
fn fs_adapter_round_trips_and_kinds_are_checked() {
    let (bundle, shots) = setup(9);
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 19).unwrap();
    let bytes = fs.to_bytes().unwrap();
    let loaded = FsAdapter::from_bytes(&bytes).unwrap();
    assert_eq!(loaded.to_bytes().unwrap(), bytes);
    let x = bundle.target_test.features();
    assert_eq!(loaded.predict(x), fs.predict(x));
    // An FS artifact is not an FS+GAN artifact and vice versa.
    assert!(matches!(
        FsGanAdapter::from_bytes(&bytes),
        Err(CoreError::Persist(_))
    ));
}

#[test]
fn batched_reconstruction_is_thread_count_invariant() {
    let (bundle, shots) = setup(11);
    let cfg = AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest);
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 23).unwrap();
    let x = bundle.target_test.features();
    let scalar = adapter.reconstruct_scalar(x);
    for threads in [1, 2, 4] {
        assert_eq!(
            adapter.reconstruct_batch(x, Some(threads)),
            scalar,
            "threads = {threads}"
        );
    }
    assert_eq!(
        adapter.predict_batch(x, Some(1)),
        adapter.predict_batch(x, Some(4))
    );
}

#[test]
fn reconstructor_factory_sizes_by_features() {
    // Just verify both paths construct.
    let small = build_reconstructor(
        ReconKind::Gan,
        100,
        1,
        &Budget::quick(),
        WatchdogConfig::default(),
    );
    let large = build_reconstructor(
        ReconKind::GanNoCond,
        400,
        1,
        &Budget::quick(),
        WatchdogConfig::default(),
    );
    assert_eq!(small.name(), "gan");
    assert_eq!(large.name(), "gan-nocond");
}

#[test]
fn try_predict_batch_guards_malformed_batches() {
    let (bundle, shots) = setup(21);
    let cfg = AdapterConfig::quick();
    let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &cfg, 23).unwrap();
    let clean = bundle.target_test.features();

    // Clean data: the guarded path matches the unguarded one exactly.
    let reject = GuardConfig::default();
    assert_eq!(
        adapter.try_predict_batch(clean, None, &reject).unwrap(),
        adapter.predict_batch(clean, None)
    );

    // A NaN cell is rejected with exact localization...
    let mut poisoned = clean.clone();
    poisoned.set(3, 2, f64::NAN);
    assert_eq!(
        adapter.try_predict_batch(&poisoned, None, &reject),
        Err(ServeError::NonFinite { row: 3, col: 2 })
    );
    // ...and repaired under the non-reject policies.
    for policy in [InputPolicy::ImputeSourceMean, InputPolicy::Clamp] {
        let guard = GuardConfig::default().with_policy(policy);
        let recon = adapter
            .try_reconstruct_batch(&poisoned, None, &guard)
            .unwrap();
        assert!(
            (0..recon.rows()).all(|r| recon.row(r).iter().all(|v| v.is_finite())),
            "{policy:?} must yield finite reconstructions"
        );
        adapter.try_predict_batch(&poisoned, None, &guard).unwrap();
    }

    // Wrong width fails before any numeric work.
    let narrow = Matrix::zeros(2, clean.cols() - 1);
    assert!(matches!(
        adapter.try_predict_batch(&narrow, None, &reject),
        Err(ServeError::DimensionMismatch { .. })
    ));

    // FsAdapter mirrors the same guard.
    let fs = FsAdapter::fit(&bundle.source_train, &shots, &cfg, 23).unwrap();
    assert_eq!(fs.try_predict(clean, &reject).unwrap(), fs.predict(clean));
    assert_eq!(
        fs.try_predict(&poisoned, &reject),
        Err(ServeError::NonFinite { row: 3, col: 2 })
    );
}

#[test]
fn try_fit_localizes_corrupt_training_cells() {
    let (bundle, shots) = setup(22);
    let cfg = AdapterConfig::quick();
    let reject = GuardConfig::default();

    let mut bad_features = bundle.source_train.features().clone();
    bad_features.set(5, 1, f64::INFINITY);
    let bad_source = Dataset::new(
        bad_features,
        bundle.source_train.labels().to_vec(),
        bundle.source_train.num_classes(),
    )
    .unwrap();
    assert!(matches!(
        FsGanAdapter::try_fit(&bad_source, &shots, &cfg, 3, &reject),
        Err(FitError::CorruptSource { row: 5, col: 1 })
    ));

    let mut bad_shot_features = shots.features().clone();
    bad_shot_features.set(0, 0, f64::NAN);
    let bad_shots = Dataset::new(
        bad_shot_features,
        shots.labels().to_vec(),
        shots.num_classes(),
    )
    .unwrap();
    assert!(matches!(
        FsGanAdapter::try_fit(&bundle.source_train, &bad_shots, &cfg, 3, &reject),
        Err(FitError::CorruptShots { row: 0, col: 0 })
    ));

    // Under the impute policy the same corrupt source still fits, and
    // the repaired adapter serves finite predictions.
    let impute = GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean);
    let adapter = FsGanAdapter::try_fit(&bad_source, &shots, &cfg, 3, &impute).unwrap();
    assert!(adapter.degraded().is_none());
    let preds = adapter.predict(bundle.target_test.features());
    assert_eq!(preds.len(), bundle.target_test.len());
}

#[test]
fn degenerate_separations_serve_pass_through() {
    let (bundle, shots) = setup(24);

    // Shift every column far outside the source support: every feature
    // is domain-variant, the reconstructor has nothing to condition on.
    let shifted = Matrix::from_fn(shots.len(), shots.num_features(), |r, c| {
        shots.features().get(r, c) + 1e4
    });
    let all_variant_shots =
        Dataset::new(shifted, shots.labels().to_vec(), shots.num_classes()).unwrap();
    let cfg = AdapterConfig {
        fs: FsConfig {
            alpha: 0.5,
            ..FsConfig::default()
        },
        ..AdapterConfig::quick()
    };
    let adapter = FsGanAdapter::fit(&bundle.source_train, &all_variant_shots, &cfg, 31).unwrap();
    assert_eq!(adapter.degraded(), Some(DegradedMode::NoInvariantFeatures));
    assert_eq!(
        adapter.separation().mode(),
        crate::fs::SeparationMode::AllVariant
    );
    let health = crate::report::format_pipeline_health(&adapter);
    assert!(
        health.contains("pass-through") && health.contains("no invariant"),
        "unexpected health line: {health}"
    );

    // Pass-through serving: reconstruction is just normalization.
    let batch = bundle.target_test.features();
    let recon = adapter.reconstruct_batch(batch, None);
    let expected = adapter.separation().normalizer().transform(batch);
    for r in 0..recon.rows() {
        assert_eq!(recon.row(r), expected.row(r));
    }
    assert_eq!(adapter.predict(batch).len(), bundle.target_test.len());

    // Shots drawn from the source domain itself: no drift, every
    // feature is invariant (the strict alpha suppresses chance
    // rejections).
    let mut rng = SeededRng::new(24 ^ 0xCD);
    let same_domain_shots = few_shot_subset(&bundle.source_train, 10, &mut rng).unwrap();
    let cfg_inv = AdapterConfig {
        fs: FsConfig {
            alpha: 1e-12,
            ..FsConfig::default()
        },
        ..AdapterConfig::quick()
    };
    let adapter_inv =
        FsGanAdapter::fit(&bundle.source_train, &same_domain_shots, &cfg_inv, 31).unwrap();
    assert_eq!(
        adapter_inv.degraded(),
        Some(DegradedMode::NoVariantFeatures)
    );
    assert_eq!(
        adapter_inv.separation().mode(),
        crate::fs::SeparationMode::AllInvariant
    );
    assert_eq!(adapter_inv.predict(batch).len(), bundle.target_test.len());
}
