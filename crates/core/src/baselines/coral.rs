//! CORAL: correlation alignment (Sun et al., 2016).
//!
//! Aligns the second-order statistics of the source domain to the target
//! domain: whiten source features with the source covariance, re-color
//! with the (shrunken) target covariance estimated from the few shots, and
//! shift to the target mean. The classifier is then trained on aligned
//! source data plus the shots. With k×classes samples the target covariance
//! is badly conditioned, so it is shrunk toward the identity — which is why
//! CORAL's benefit fades in the paper's few-shot scenarios.

use super::{zscore_fit, ClassifierParts, DaContext, FitContext};
use crate::adapter::build_classifier;
use crate::{CoreError, Result};
use fsda_linalg::decomp::cholesky;
use fsda_linalg::stats::covariance_matrix;
use fsda_linalg::Matrix;

/// Trains the CORAL parts: classifier on whitened/re-colored source plus
/// the shots, normalized by the source z-score.
pub(crate) fn fit_coral(ctx: &FitContext<'_>) -> Result<ClassifierParts> {
    let (src_n, normalizer) = zscore_fit(ctx.source.features());
    let shots_n = normalizer.transform(ctx.target_shots.features());

    let aligned_src = align_coral(&src_n, &shots_n)?;
    // Train on aligned source + the raw shots.
    let combined = aligned_src.vstack(&shots_n).map_err(CoreError::from)?;
    let mut labels = ctx.source.labels().to_vec();
    labels.extend_from_slice(ctx.target_shots.labels());
    let mut model = build_classifier(ctx.classifier, ctx.seed, ctx.budget);
    model.fit(&combined, &labels, ctx.source.num_classes())?;
    Ok(ClassifierParts {
        normalizer,
        columns: None,
        classifier: model,
        num_classes: ctx.source.num_classes(),
        num_features: ctx.source.num_features(),
    })
}

/// Runs the CORAL baseline and predicts the test set.
///
/// # Errors
///
/// Propagates covariance/Cholesky failures (after regularization these
/// indicate degenerate inputs) and classifier-training failures.
pub fn coral(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    Ok(fit_coral(&ctx.fit())?.predict(ctx.test_features))
}

/// Whitening/re-coloring alignment: returns source features transformed to
/// match the target's mean and covariance,
/// `X' = (X - mu_s) L_s^{-T} L_t^T + mu_t`,
/// where `L_s`, `L_t` are Cholesky factors of the (regularized) source and
/// shrunken target covariances.
///
/// # Errors
///
/// Returns [`CoreError`] when covariance estimation fails outright.
pub fn align_coral(source: &Matrix, target_shots: &Matrix) -> Result<Matrix> {
    let d = source.cols();
    let mu_s = source.col_means();
    let mu_t = target_shots.col_means();

    let mut cov_s = covariance_matrix(source)?;
    regularize(&mut cov_s, 1e-3);
    // Shrink the target covariance toward identity; with n shots the raw
    // estimate has rank <= n - 1.
    let n_t = target_shots.rows() as f64;
    let lambda = n_t / (n_t + 50.0);
    let mut cov_t = if target_shots.rows() >= 2 {
        covariance_matrix(target_shots)?
    } else {
        Matrix::identity(d)
    };
    for i in 0..d {
        for j in 0..d {
            let shrunk = lambda * cov_t.get(i, j) + if i == j { (1.0 - lambda) * 1.0 } else { 0.0 };
            cov_t.set(i, j, shrunk);
        }
    }
    regularize(&mut cov_t, 1e-3);

    let l_s = cholesky(&cov_s).map_err(CoreError::from)?;
    let l_t = cholesky(&cov_t).map_err(CoreError::from)?;

    // Whiten: solve L_s^T W = centered^T  =>  W = centered * L_s^{-T}.
    let mut centered = source.clone();
    for r in 0..centered.rows() {
        let row = centered.row_mut(r);
        for (v, &m) in row.iter_mut().zip(&mu_s) {
            *v -= m;
        }
    }
    let whitened = solve_upper_right(&centered, &l_s);
    // Re-color and shift.
    let mut out = whitened.matmul(&l_t.transpose());
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for (v, &m) in row.iter_mut().zip(&mu_t) {
            *v += m;
        }
    }
    Ok(out)
}

fn regularize(cov: &mut Matrix, eps: f64) {
    for i in 0..cov.rows() {
        let v = cov.get(i, i) + eps;
        cov.set(i, i, v);
    }
}

/// Solves `X = B * L^{-T}` row-wise, i.e. for each row b solves
/// `L^T x = b^T`... equivalently back-substitution with the upper
/// triangular `L^T`.
fn solve_upper_right(b: &Matrix, l: &Matrix) -> Matrix {
    let d = l.rows();
    let mut out = Matrix::zeros(b.rows(), d);
    for r in 0..b.rows() {
        let row = b.row(r);
        let dst = out.row_mut(r);
        // Solve x L^T = row  =>  L x^T = row^T (forward substitution).
        #[allow(clippy::needless_range_loop)] // triangular solve reads dst[..i]
        for i in 0..d {
            let mut sum = row[i];
            for j in 0..i {
                sum -= l.get(i, j) * dst[j];
            }
            dst[i] = sum / l.get(i, i);
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::naive::src_only;
    use crate::baselines::testutil::{f1_of, scenario};
    use fsda_linalg::SeededRng;
    use fsda_models::ClassifierKind;

    #[test]
    fn alignment_matches_target_moments() {
        let mut rng = SeededRng::new(1);
        // Source: N(0, I); target: shifted and scaled.
        let src = Matrix::from_fn(500, 3, |_, _| rng.normal(0.0, 1.0));
        let tgt = Matrix::from_fn(300, 3, |_, c| rng.normal(2.0, 1.0 + c as f64));
        let aligned = align_coral(&src, &tgt).unwrap();
        let mu_a = aligned.col_means();
        let mu_t = tgt.col_means();
        for c in 0..3 {
            assert!(
                (mu_a[c] - mu_t[c]).abs() < 0.2,
                "mean col {c}: {} vs {}",
                mu_a[c],
                mu_t[c]
            );
        }
        // Variances move toward the target's (shrinkage keeps them between).
        let sd_a = aligned.col_stds();
        let sd_s = src.col_stds();
        let sd_t = tgt.col_stds();
        assert!(
            (sd_a[2] - sd_t[2]).abs() < (sd_s[2] - sd_t[2]).abs(),
            "aligned std should be closer to target"
        );
    }

    #[test]
    fn coral_beats_src_only() {
        let (bundle, shots) = scenario(5, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::RandomForest, 7);
        let f_coral = f1_of(coral, &bundle, &shots, ClassifierKind::RandomForest, 7);
        assert!(
            f_coral > f_src,
            "CORAL ({f_coral:.3}) should beat SrcOnly ({f_src:.3})"
        );
    }

    #[test]
    fn single_shot_does_not_crash() {
        let (bundle, shots) = scenario(6, 1);
        let f = f1_of(coral, &bundle, &shots, ClassifierKind::Xgb, 8);
        assert!((0.0..=1.0).contains(&f));
    }
}
