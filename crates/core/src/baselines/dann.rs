//! DANN: domain-adversarial neural network (Ganin & Lempitsky, 2015), the
//! adversarial representation-learning baseline of Table I.
//!
//! A shared feature extractor feeds a label predictor and, through a
//! gradient-reversal layer, a domain classifier. The extractor learns
//! features that predict labels while confusing the domain classifier,
//! i.e. domain-independent representations. Model-specific: it brings its
//! own network, so Table I reports a single DANN column.

use super::{zscore_fit, DaContext, FitContext};
use crate::Result;
use fsda_data::Normalizer;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::classifier::argmax_rows;
use fsda_nn::layer::{Activation, Dense, GradientReversal};
use fsda_nn::loss::{bce_with_logits, softmax};
use fsda_nn::optim::{Adam, Optimizer};
use fsda_nn::train::BatchIter;
use fsda_nn::Sequential;

/// The fitted state of DANN: normalizer, extractor, and label head (the
/// domain head only exists during training).
pub(crate) struct DannParts {
    /// Normalizer fitted on source + shots.
    pub normalizer: Normalizer,
    /// The shared feature extractor.
    pub extractor: Sequential,
    /// The label-prediction head.
    pub label_head: Sequential,
    /// Extractor hidden width (needed to rebuild the architecture on
    /// restore).
    pub hidden: usize,
    /// Representation dimension.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Input width.
    pub num_features: usize,
}

impl DannParts {
    /// Predicts a raw batch: normalize, extract, classify.
    pub(crate) fn predict(&self, features: &Matrix) -> Vec<usize> {
        let feats = self.extractor.infer(&self.normalizer.transform(features));
        argmax_rows(&softmax(&self.label_head.infer(&feats)))
    }
}

/// Hyper-parameters of the DANN baseline.
#[derive(Debug, Clone)]
pub struct DannConfig {
    /// Extractor hidden width.
    pub hidden: usize,
    /// Feature (representation) dimension.
    pub feature_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (per domain).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight of the domain-confusion loss.
    pub domain_loss_weight: f64,
}

impl Default for DannConfig {
    fn default() -> Self {
        DannConfig {
            hidden: 128,
            feature_dim: 64,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            domain_loss_weight: 1.0,
        }
    }
}

/// Runs DANN: trains on labelled source + labelled shots with a domain-
/// adversarial objective, predicts the test set.
///
/// # Errors
///
/// Returns an error when inputs are malformed (propagated from dataset
/// plumbing); training itself is infallible.
pub fn dann(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    let config = DannConfig {
        epochs: ctx.budget.nn_epochs,
        ..DannConfig::default()
    };
    run_with_config(ctx, &config)
}

/// DANN with explicit hyper-parameters (exposed for ablations).
///
/// # Errors
///
/// As [`dann`].
pub fn run_with_config(ctx: &DaContext<'_>, config: &DannConfig) -> Result<Vec<usize>> {
    Ok(fit_with_config(&ctx.fit(), config)?.predict(ctx.test_features))
}

/// Trains DANN and returns its fitted parts.
pub(crate) fn fit_with_config(ctx: &FitContext<'_>, config: &DannConfig) -> Result<DannParts> {
    let combined = ctx.source.concat(ctx.target_shots)?;
    let (train, normalizer) = zscore_fit(combined.features());
    let n_src = ctx.source.len();
    let n = combined.len();
    let labels = combined.labels();
    let num_classes = combined.num_classes();

    let mut rng = SeededRng::new(ctx.seed);
    let mut extractor = Sequential::new();
    extractor.push(Dense::new(train.cols(), config.hidden, &mut rng));
    extractor.push(Activation::relu());
    extractor.push(Dense::new(config.hidden, config.feature_dim, &mut rng));
    extractor.push(Activation::relu());
    let mut label_head = Sequential::new();
    label_head.push(Dense::new(config.feature_dim, num_classes, &mut rng));
    // The gradient-reversal layer is kept as a typed handle (not inside the
    // Sequential) so its strength can follow the DANN schedule.
    let mut grl = GradientReversal::new(0.0);
    let mut domain_head = Sequential::new();
    domain_head.push(Dense::new(config.feature_dim, 32, &mut rng));
    domain_head.push(Activation::relu());
    domain_head.push(Dense::new(32, 1, &mut rng));

    let mut opt = Adam::new(config.learning_rate);
    let total_steps = (config.epochs * n.div_ceil(config.batch_size)).max(1);
    let mut step = 0usize;
    // Up-weight target shots in the label loss so they are not drowned out.
    let shot_weight = (n_src as f64 / ctx.target_shots.len() as f64).clamp(1.0, 50.0);
    for _ in 0..config.epochs {
        for batch in BatchIter::new(n, config.batch_size.min(n), &mut rng) {
            step += 1;
            // Gradient-reversal strength follows the standard DANN schedule.
            let p = step as f64 / total_steps as f64;
            let lambda = 2.0 / (1.0 + (-10.0 * p).exp()) - 1.0;
            grl.set_lambda(lambda * config.domain_loss_weight);
            let bx = train.select_rows(&batch);
            let by: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            let bdom = Matrix::from_fn(batch.len(), 1, |r, _| f64::from(batch[r] >= n_src));
            let bw: Vec<f64> = batch
                .iter()
                .map(|&i| if i >= n_src { shot_weight } else { 1.0 })
                .collect();

            extractor.zero_grad();
            label_head.zero_grad();
            domain_head.zero_grad();
            let feats = extractor.forward(&bx, true);
            let logits = label_head.forward(&feats, true);
            let (_, grad_label) = fsda_nn::loss::weighted_cross_entropy(&logits, &by, &bw);
            let grad_feats_label = label_head.backward(&grad_label);
            let feats_rev = fsda_nn::Layer::forward(&mut grl, &feats, true);
            let dom_logits = domain_head.forward(&feats_rev, true);
            let (_, grad_dom) = bce_with_logits(&dom_logits, &bdom);
            let grad_feats_dom =
                fsda_nn::Layer::backward(&mut grl, &domain_head.backward(&grad_dom));
            let grad_feats = match grad_feats_label.try_add(&grad_feats_dom) {
                Ok(g) => g,
                // Both gradients flow back through the same extractor
                // output, so their shapes cannot differ.
                Err(e) => panic!("extractor gradient shape invariant: {e}"),
            };
            extractor.backward(&grad_feats);
            let mut params = extractor.params_mut();
            params.extend(label_head.params_mut());
            params.extend(domain_head.params_mut());
            opt.step(&mut params);
        }
    }
    Ok(DannParts {
        normalizer,
        extractor,
        label_head,
        hidden: config.hidden,
        feature_dim: config.feature_dim,
        num_classes,
        num_features: combined.num_features(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::naive::src_only;
    use crate::baselines::testutil::{f1_of, scenario};
    use fsda_models::ClassifierKind;

    #[test]
    fn dann_beats_src_only() {
        let (bundle, shots) = scenario(7, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 9);
        let f_dann = f1_of(dann, &bundle, &shots, ClassifierKind::Mlp, 9);
        assert!(
            f_dann > f_src,
            "DANN ({f_dann:.3}) should beat SrcOnly ({f_src:.3})"
        );
    }

    #[test]
    fn dann_runs_single_shot() {
        let (bundle, shots) = scenario(8, 1);
        let f = f1_of(dann, &bundle, &shots, ClassifierKind::Mlp, 10);
        assert!((0.0..=1.0).contains(&f));
    }
}
