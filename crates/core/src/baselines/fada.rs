//! FADA: few-shot adversarial domain adaptation (Motiian et al., NIPS
//! 2017), the third adversarial representation-learning baseline.
//!
//! Training alternates freeze phases around a **domain-class
//! discriminator** (DCD) that sees *pairs* of embeddings: (1) the shared
//! embedding `g` and label head `h` pre-train on source data; (2) with `g`
//! frozen, the DCD learns to classify concatenated embedding pairs into
//! four groups — source/source same class (G1), source/target same class
//! (G2), source/source different class (G3), source/target different class
//! (G4); (3) with the DCD frozen, `g` and `h` train on labels while the
//! confusion term relabels G2 pairs as G1 and G4 pairs as G3, making
//! target embeddings indistinguishable from same-group source pairs.
//! Model-specific: it brings its own network, so Table I reports a single
//! FADA column.

use super::{zscore_fit, DaContext, FitContext};
use crate::Result;
use fsda_data::Normalizer;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::classifier::argmax_rows;
use fsda_nn::layer::{Activation, Dense};
use fsda_nn::loss::{cross_entropy, softmax, weighted_cross_entropy};
use fsda_nn::optim::{Adam, Optimizer};
use fsda_nn::plan::{InferPlan, InferPrecision, PlanOp};
use fsda_nn::train::BatchIter;
use fsda_nn::{DivergenceWatchdog, Layer, Sequential, WatchdogConfig, WatchdogVerdict};

/// The four DCD pair groups, in label order.
const G1_SRC_SRC_SAME: usize = 0;
const G2_SRC_TGT_SAME: usize = 1;
const G3_SRC_SRC_DIFF: usize = 2;
const G4_SRC_TGT_DIFF: usize = 3;

/// The fitted state of FADA: normalizer, extractor, and label head (the
/// DCD only exists during training), plus the compiled inference plan.
pub(crate) struct FadaParts {
    /// Normalizer fitted on source + shots.
    pub normalizer: Normalizer,
    /// The shared embedding `g`.
    pub extractor: Sequential,
    /// The label head `h`.
    pub label_head: Sequential,
    /// Extractor hidden width (needed to rebuild the architecture on
    /// restore).
    pub hidden: usize,
    /// Representation dimension.
    pub feature_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Input width.
    pub num_features: usize,
    /// Extractor + head fused into one kernel-path plan; `None` falls back
    /// to the layer chain (never persisted — recompiled on restore).
    pub plan: Option<InferPlan>,
}

impl FadaParts {
    /// Compiles the extractor + head into one fused plan (called at fit
    /// and restore; the `F64Exact` plan path is bit-identical to the layer
    /// chain, so persistence round-trips stay exact either way).
    pub(crate) fn compile_plan(&mut self) {
        self.plan = InferPlan::from_op(PlanOp::Nested(vec![
            Layer::plan_op(&self.extractor),
            Layer::plan_op(&self.label_head),
        ]))
        .ok();
    }

    /// Predicts a raw batch: normalize, embed, classify.
    pub(crate) fn predict(&self, features: &Matrix) -> Vec<usize> {
        self.predict_with(features, InferPrecision::F64Exact)
    }

    /// Predicts at an explicit kernel precision.
    pub(crate) fn predict_with(&self, features: &Matrix, precision: InferPrecision) -> Vec<usize> {
        let x = self.normalizer.transform(features);
        let logits = match &self.plan {
            Some(plan) => plan.infer(&x, precision),
            None => self.label_head.infer(&self.extractor.infer(&x)),
        };
        argmax_rows(&softmax(&logits))
    }
}

/// Hyper-parameters of the FADA baseline.
#[derive(Debug, Clone)]
pub struct FadaConfig {
    /// Extractor hidden width.
    pub hidden: usize,
    /// Feature (representation) dimension.
    pub feature_dim: usize,
    /// DCD hidden width.
    pub dcd_hidden: usize,
    /// Phase-1 source-only pre-training epochs.
    pub pretrain_epochs: usize,
    /// Phase-2 DCD training epochs (`g` frozen).
    pub dcd_epochs: usize,
    /// Phase-3 adversarial epochs (DCD frozen).
    pub adversarial_epochs: usize,
    /// Pairs sampled per group per DCD step.
    pub pairs_per_group: usize,
    /// Mini-batch size (source rows; every phase-3 batch also carries all
    /// target shots).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight of the confusion loss in phase 3 (the paper's gamma).
    pub gamma: f64,
    /// Divergence watchdog wrapped around all three phases.
    pub watchdog: WatchdogConfig,
}

impl Default for FadaConfig {
    fn default() -> Self {
        FadaConfig {
            hidden: 128,
            feature_dim: 64,
            dcd_hidden: 64,
            pretrain_epochs: 30,
            dcd_epochs: 20,
            adversarial_epochs: 30,
            pairs_per_group: 32,
            batch_size: 64,
            learning_rate: 1e-3,
            gamma: 0.3,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl FadaConfig {
    /// Splits a budget's `nn_epochs` across the three phases.
    pub fn from_epochs(nn_epochs: usize) -> Self {
        FadaConfig {
            pretrain_epochs: nn_epochs.max(1),
            dcd_epochs: (nn_epochs / 2).max(1),
            adversarial_epochs: nn_epochs.max(1),
            ..FadaConfig::default()
        }
    }
}

/// Runs FADA: alternating-phase adversarial training on labelled source +
/// labelled shots, then predicts the test set.
///
/// # Errors
///
/// Returns an error when inputs are malformed (propagated from dataset
/// plumbing); training itself is infallible.
pub fn fada(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    run_with_config(ctx, &FadaConfig::from_epochs(ctx.budget.nn_epochs))
}

/// FADA with explicit hyper-parameters (exposed for ablations).
///
/// # Errors
///
/// As [`fada`].
pub fn run_with_config(ctx: &DaContext<'_>, config: &FadaConfig) -> Result<Vec<usize>> {
    Ok(fit_with_config(&ctx.fit(), config)?.predict(ctx.test_features))
}

/// Per-class row indices of one domain.
fn rows_by_class(
    labels: &[usize],
    range: std::ops::Range<usize>,
    num_classes: usize,
) -> Vec<Vec<usize>> {
    let mut by_class = vec![Vec::new(); num_classes];
    for i in range {
        by_class[labels[i]].push(i);
    }
    by_class
}

/// Draws one pair of (distinct where possible) row indices from a class
/// bucket pair. Returns `None` when a bucket is empty.
fn draw(a: &[usize], b: &[usize], rng: &mut SeededRng) -> Option<(usize, usize)> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    Some((a[rng.index(a.len())], b[rng.index(b.len())]))
}

/// Samples up to `per_group` pairs for each requested DCD group over the
/// global row indices, returning `(pairs, group_labels)`.
fn sample_pairs(
    src_by_class: &[Vec<usize>],
    tgt_by_class: &[Vec<usize>],
    groups: &[usize],
    per_group: usize,
    rng: &mut SeededRng,
) -> (Vec<(usize, usize)>, Vec<usize>) {
    let num_classes = src_by_class.len();
    let src_classes: Vec<usize> = (0..num_classes)
        .filter(|&c| !src_by_class[c].is_empty())
        .collect();
    let tgt_classes: Vec<usize> = (0..num_classes)
        .filter(|&c| !tgt_by_class[c].is_empty())
        .collect();
    let mut pairs = Vec::new();
    let mut labels = Vec::new();
    for &group in groups {
        for _ in 0..per_group {
            let drawn = match group {
                G1_SRC_SRC_SAME => src_classes
                    .get(rng.index(src_classes.len().max(1)))
                    .and_then(|&c| draw(&src_by_class[c], &src_by_class[c], rng)),
                G2_SRC_TGT_SAME => {
                    // Same class, one row per domain: needs a class present
                    // in both.
                    let both: Vec<usize> = tgt_classes
                        .iter()
                        .copied()
                        .filter(|&c| !src_by_class[c].is_empty())
                        .collect();
                    both.get(rng.index(both.len().max(1)))
                        .and_then(|&c| draw(&src_by_class[c], &tgt_by_class[c], rng))
                }
                G3_SRC_SRC_DIFF => {
                    if src_classes.len() < 2 {
                        None
                    } else {
                        let c1 = src_classes[rng.index(src_classes.len())];
                        let c2 = src_classes[rng.index(src_classes.len())];
                        if c1 == c2 {
                            None
                        } else {
                            draw(&src_by_class[c1], &src_by_class[c2], rng)
                        }
                    }
                }
                G4_SRC_TGT_DIFF => {
                    let c2 = tgt_classes
                        .get(rng.index(tgt_classes.len().max(1)))
                        .copied();
                    let c1 = src_classes
                        .iter()
                        .copied()
                        .filter(|&c| Some(c) != c2)
                        .collect::<Vec<_>>();
                    match (c1.is_empty(), c2) {
                        (false, Some(c2)) => draw(
                            &src_by_class[c1[rng.index(c1.len())]],
                            &tgt_by_class[c2],
                            rng,
                        ),
                        _ => None,
                    }
                }
                g => unreachable!("unknown DCD group {g}"),
            };
            if let Some(pair) = drawn {
                pairs.push(pair);
                labels.push(group);
            }
        }
    }
    (pairs, labels)
}

/// Concatenates embedding rows `emb[i] || emb[j]` per pair into the DCD's
/// input matrix, mapping global row indices through `local`.
fn pair_matrix(emb: &Matrix, pairs: &[(usize, usize)], local: &[usize]) -> Matrix {
    let f = emb.cols();
    Matrix::from_fn(pairs.len(), 2 * f, |p, c| {
        let (i, j) = pairs[p];
        if c < f {
            emb.get(local[i], c)
        } else {
            emb.get(local[j], c - f)
        }
    })
}

/// Trains FADA and returns its fitted parts.
pub(crate) fn fit_with_config(ctx: &FitContext<'_>, config: &FadaConfig) -> Result<FadaParts> {
    let combined = ctx.source.concat(ctx.target_shots)?;
    let (train, normalizer) = zscore_fit(combined.features());
    let n_src = ctx.source.len();
    let n = combined.len();
    let labels = combined.labels();
    let num_classes = combined.num_classes();
    let src_by_class = rows_by_class(labels, 0..n_src, num_classes);
    let tgt_by_class = rows_by_class(labels, n_src..n, num_classes);

    let mut rng = SeededRng::new(ctx.seed);
    let mut extractor = Sequential::new();
    extractor.push(Dense::new(train.cols(), config.hidden, &mut rng));
    extractor.push(Activation::relu());
    extractor.push(Dense::new(config.hidden, config.feature_dim, &mut rng));
    extractor.push(Activation::relu());
    let mut label_head = Sequential::new();
    label_head.push(Dense::new(config.feature_dim, num_classes, &mut rng));
    let mut dcd = Sequential::new();
    dcd.push(Dense::new(
        2 * config.feature_dim,
        config.dcd_hidden,
        &mut rng,
    ));
    dcd.push(Activation::relu());
    dcd.push(Dense::new(config.dcd_hidden, 4, &mut rng));

    // One watchdog spans all three phases (a global epoch counter); each
    // phase freezes a different subset, so each gets its own Adam state.
    let mut watchdog = DivergenceWatchdog::new(config.watchdog);
    let mut epoch = 0usize;

    // Phase 1: source-only pre-training of g and h.
    let mut opt1 = Adam::new(config.learning_rate);
    'phase1: for _ in 0..config.pretrain_epochs {
        let mut epoch_loss = 0.0;
        for batch in BatchIter::new(n_src, config.batch_size.min(n_src), &mut rng) {
            let bx = train.select_rows(&batch);
            let by: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            extractor.zero_grad();
            label_head.zero_grad();
            let feats = extractor.forward(&bx, true);
            let logits = label_head.forward(&feats, true);
            let (loss, grad) = cross_entropy(&logits, &by);
            epoch_loss += loss;
            extractor.backward(&label_head.backward(&grad));
            let mut params = extractor.params_mut();
            params.extend(label_head.params_mut());
            opt1.step(&mut params);
        }
        let verdict = watchdog.observe(
            epoch,
            epoch_loss,
            &mut [&mut extractor, &mut label_head, &mut dcd],
        );
        epoch += 1;
        if verdict == WatchdogVerdict::Abort {
            break 'phase1;
        }
    }

    // Phase 2: g frozen; the DCD learns the four pair groups over fixed
    // embeddings.
    let all_groups = [
        G1_SRC_SRC_SAME,
        G2_SRC_TGT_SAME,
        G3_SRC_SRC_DIFF,
        G4_SRC_TGT_DIFF,
    ];
    let identity: Vec<usize> = (0..n).collect();
    let emb_frozen = extractor.infer(&train);
    let mut opt2 = Adam::new(config.learning_rate);
    'phase2: for _ in 0..config.dcd_epochs {
        let (pairs, groups) = sample_pairs(
            &src_by_class,
            &tgt_by_class,
            &all_groups,
            config.pairs_per_group,
            &mut rng,
        );
        if pairs.is_empty() {
            break 'phase2; // degenerate data (e.g. one class, no shots)
        }
        let pmat = pair_matrix(&emb_frozen, &pairs, &identity);
        dcd.zero_grad();
        let logits = dcd.forward(&pmat, true);
        let (loss, grad) = cross_entropy(&logits, &groups);
        dcd.backward(&grad);
        opt2.step(&mut dcd.params_mut());
        let verdict = watchdog.observe(
            epoch,
            loss,
            &mut [&mut extractor, &mut label_head, &mut dcd],
        );
        epoch += 1;
        if verdict == WatchdogVerdict::Abort {
            break 'phase2;
        }
    }

    // Phase 3: DCD frozen; g and h train on labels while the confusion
    // term relabels target-involving pairs as their source-only group.
    let shot_weight = (n_src as f64 / ctx.target_shots.len().max(1) as f64).clamp(1.0, 50.0);
    let shots: Vec<usize> = (n_src..n).collect();
    let adversarial_groups = [G2_SRC_TGT_SAME, G4_SRC_TGT_DIFF];
    let mut opt3 = Adam::new(config.learning_rate);
    'phase3: for _ in 0..config.adversarial_epochs {
        let mut epoch_loss = 0.0;
        for mut batch in BatchIter::new(n_src, config.batch_size.min(n_src.max(1)), &mut rng) {
            // Every batch carries all target shots so G2/G4 pairs exist.
            batch.extend_from_slice(&shots);
            let mut local = vec![usize::MAX; n];
            for (pos, &i) in batch.iter().enumerate() {
                local[i] = pos;
            }
            let bx = train.select_rows(&batch);
            let by: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            let bw: Vec<f64> = batch
                .iter()
                .map(|&i| if i >= n_src { shot_weight } else { 1.0 })
                .collect();
            extractor.zero_grad();
            label_head.zero_grad();
            dcd.zero_grad();
            let feats = extractor.forward(&bx, true);
            let logits = label_head.forward(&feats, true);
            let (loss, grad_label) = weighted_cross_entropy(&logits, &by, &bw);
            epoch_loss += loss;
            let mut grad_feats = label_head.backward(&grad_label);

            // Confusion: sample G2/G4 pairs within the batch, ask the
            // frozen DCD to see them as G1/G3, and push that gradient
            // into g only.
            let batch_src: Vec<Vec<usize>> = (0..num_classes)
                .map(|c| {
                    src_by_class[c]
                        .iter()
                        .copied()
                        .filter(|&i| local[i] != usize::MAX)
                        .collect()
                })
                .collect();
            let (pairs, groups) = sample_pairs(
                &batch_src,
                &tgt_by_class,
                &adversarial_groups,
                config.pairs_per_group,
                &mut rng,
            );
            if !pairs.is_empty() {
                let confused: Vec<usize> = groups
                    .iter()
                    .map(|&g| match g {
                        G2_SRC_TGT_SAME => G1_SRC_SRC_SAME,
                        _ => G3_SRC_SRC_DIFF,
                    })
                    .collect();
                let pmat = pair_matrix(&feats, &pairs, &local);
                let dcd_logits = dcd.forward(&pmat, true);
                let (conf_loss, grad_conf) = cross_entropy(&dcd_logits, &confused);
                epoch_loss += config.gamma * conf_loss;
                let grad_pairs = dcd.backward(&grad_conf);
                let f = feats.cols();
                for (p, &(i, j)) in pairs.iter().enumerate() {
                    let row = grad_pairs.row(p);
                    for c in 0..f {
                        let gi = grad_feats.get(local[i], c) + config.gamma * row[c];
                        grad_feats.set(local[i], c, gi);
                        let gj = grad_feats.get(local[j], c) + config.gamma * row[f + c];
                        grad_feats.set(local[j], c, gj);
                    }
                }
            }
            extractor.backward(&grad_feats);
            let mut params = extractor.params_mut();
            params.extend(label_head.params_mut());
            opt3.step(&mut params);
        }
        let verdict = watchdog.observe(
            epoch,
            epoch_loss,
            &mut [&mut extractor, &mut label_head, &mut dcd],
        );
        epoch += 1;
        if verdict == WatchdogVerdict::Abort {
            break 'phase3;
        }
    }

    let mut parts = FadaParts {
        normalizer,
        extractor,
        label_head,
        hidden: config.hidden,
        feature_dim: config.feature_dim,
        num_classes,
        num_features: combined.num_features(),
        plan: None,
    };
    parts.compile_plan();
    Ok(parts)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::naive::src_only;
    use crate::baselines::testutil::{f1_of, scenario};
    use fsda_models::ClassifierKind;

    #[test]
    fn fada_beats_src_only() {
        let (bundle, shots) = scenario(11, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 13);
        let f_fada = f1_of(fada, &bundle, &shots, ClassifierKind::Mlp, 13);
        assert!(
            f_fada > f_src,
            "FADA ({f_fada:.3}) should beat SrcOnly ({f_src:.3})"
        );
    }

    #[test]
    fn fada_runs_single_shot() {
        let (bundle, shots) = scenario(12, 1);
        let f = f1_of(fada, &bundle, &shots, ClassifierKind::Mlp, 14);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn fada_plan_path_matches_layer_path() {
        let (bundle, shots) = scenario(13, 5);
        let budget = crate::adapter::Budget::quick();
        let ctx = FitContext {
            source: &bundle.source_train,
            target_shots: &shots,
            classifier: ClassifierKind::Mlp,
            budget: &budget,
            seed: 15,
        };
        let mut parts = fit_with_config(&ctx, &FadaConfig::from_epochs(budget.nn_epochs)).unwrap();
        let with_plan = parts.predict(bundle.target_test.features());
        parts.plan = None;
        let without_plan = parts.predict(bundle.target_test.features());
        assert_eq!(with_plan, without_plan);
    }
}
