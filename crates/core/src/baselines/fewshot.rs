//! Metric-based few-shot baselines: Matching Networks and Prototypical
//! Networks, adapted to DA exactly as the paper describes — the embedding
//! is trained on the source domain, the few labelled target shots form the
//! support set (MatchNet) or update the class prototypes (ProtoNet).

use super::{zscore_fit, DaContext, FitContext};
use crate::Result;
use fsda_data::Normalizer;
use fsda_linalg::matrix::{cosine_similarity, euclidean_distance};
use fsda_linalg::Matrix;
use fsda_models::embedding::{class_prototypes, EmbeddingConfig, EmbeddingNet};

/// The fitted state of MatchNet: normalizer, embedding net, and the
/// embedded support set of target shots.
pub(crate) struct MatchNetParts {
    /// Normalizer fitted on source features.
    pub normalizer: Normalizer,
    /// The source-trained embedding net.
    pub net: EmbeddingNet,
    /// L2-normalized embeddings of the target shots.
    pub support: Matrix,
    /// Support-set labels.
    pub support_labels: Vec<usize>,
    /// Attention temperature.
    pub temperature: f64,
    /// Number of classes.
    pub num_classes: usize,
    /// Input width.
    pub num_features: usize,
}

impl MatchNetParts {
    /// Predicts a raw batch: normalize, embed, attend over the support set.
    pub(crate) fn predict(&self, features: &Matrix) -> Vec<usize> {
        let queries = self
            .net
            .embed_normalized(&self.normalizer.transform(features));
        attention_predict(
            &queries,
            &self.support,
            &self.support_labels,
            self.num_classes,
            self.temperature,
        )
    }
}

/// The fitted state of ProtoNet: normalizer, embedding net, and blended
/// class prototypes.
pub(crate) struct ProtoNetParts {
    /// Normalizer fitted on source features.
    pub normalizer: Normalizer,
    /// The source-trained embedding net.
    pub net: EmbeddingNet,
    /// Blended (source ⊕ target-shot) class prototypes, one row per class.
    pub prototypes: Matrix,
    /// Number of classes.
    pub num_classes: usize,
    /// Input width.
    pub num_features: usize,
}

impl ProtoNetParts {
    /// Predicts a raw batch: normalize, embed, nearest prototype.
    pub(crate) fn predict(&self, features: &Matrix) -> Vec<usize> {
        let queries = self.net.embed(&self.normalizer.transform(features));
        nearest_prototype(&queries, &self.prototypes)
    }
}

/// Cosine-attention classification over a support set (softmax weights).
fn attention_predict(
    queries: &Matrix,
    support: &Matrix,
    support_labels: &[usize],
    num_classes: usize,
    temperature: f64,
) -> Vec<usize> {
    let mut preds = Vec::with_capacity(queries.rows());
    for q in 0..queries.rows() {
        let sims: Vec<f64> = (0..support.rows())
            .map(|s| cosine_similarity(queries.row(q), support.row(s)) / temperature)
            .collect();
        let max = sims.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut scores = vec![0.0; num_classes];
        for (s, &sim) in sims.iter().enumerate() {
            scores[support_labels[s]] += (sim - max).exp();
        }
        let pred = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        preds.push(pred);
    }
    preds
}

/// Hyper-parameters shared by the two few-shot baselines.
#[derive(Debug, Clone)]
pub struct FewShotConfig {
    /// Embedding-net settings.
    pub embedding: EmbeddingConfig,
    /// Attention temperature for MatchNet's cosine softmax.
    pub temperature: f64,
    /// ProtoNet: weight of the target-shot prototype when blending with the
    /// source prototype.
    pub target_blend: f64,
}

impl Default for FewShotConfig {
    fn default() -> Self {
        FewShotConfig {
            embedding: EmbeddingConfig::default(),
            temperature: 0.1,
            target_blend: 0.5,
        }
    }
}

/// Matching Networks: attention over the support set of target shots.
///
/// # Errors
///
/// Propagates embedding-training failures.
pub fn matchnet(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    let config = FewShotConfig {
        embedding: EmbeddingConfig {
            epochs: ctx.budget.emb_epochs,
            ..EmbeddingConfig::default()
        },
        ..FewShotConfig::default()
    };
    matchnet_with_config(ctx, &config)
}

/// MatchNet with explicit hyper-parameters.
///
/// # Errors
///
/// As [`matchnet`].
pub fn matchnet_with_config(ctx: &DaContext<'_>, config: &FewShotConfig) -> Result<Vec<usize>> {
    Ok(fit_matchnet_with_config(&ctx.fit(), config)?.predict(ctx.test_features))
}

/// Trains MatchNet and returns its fitted parts.
pub(crate) fn fit_matchnet_with_config(
    ctx: &FitContext<'_>,
    config: &FewShotConfig,
) -> Result<MatchNetParts> {
    let (train, normalizer) = zscore_fit(ctx.source.features());
    let mut net = EmbeddingNet::new(config.embedding.clone(), ctx.seed);
    net.fit(&train, ctx.source.labels(), ctx.source.num_classes())?;

    let support = net.embed_normalized(&normalizer.transform(ctx.target_shots.features()));
    Ok(MatchNetParts {
        normalizer,
        net,
        support,
        support_labels: ctx.target_shots.labels().to_vec(),
        temperature: config.temperature,
        num_classes: ctx.source.num_classes(),
        num_features: ctx.source.num_features(),
    })
}

/// Prototypical Networks: class prototypes from source embeddings, updated
/// toward the target-shot embeddings, nearest-prototype classification.
///
/// # Errors
///
/// Propagates embedding-training failures.
pub fn protonet(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    let config = FewShotConfig {
        embedding: EmbeddingConfig {
            epochs: ctx.budget.emb_epochs,
            ..EmbeddingConfig::default()
        },
        ..FewShotConfig::default()
    };
    protonet_with_config(ctx, &config)
}

/// ProtoNet with explicit hyper-parameters.
///
/// # Errors
///
/// As [`protonet`].
pub fn protonet_with_config(ctx: &DaContext<'_>, config: &FewShotConfig) -> Result<Vec<usize>> {
    Ok(fit_protonet_with_config(&ctx.fit(), config)?.predict(ctx.test_features))
}

/// Trains ProtoNet and returns its fitted parts.
pub(crate) fn fit_protonet_with_config(
    ctx: &FitContext<'_>,
    config: &FewShotConfig,
) -> Result<ProtoNetParts> {
    let (train, normalizer) = zscore_fit(ctx.source.features());
    let mut net = EmbeddingNet::new(config.embedding.clone(), ctx.seed);
    net.fit(&train, ctx.source.labels(), ctx.source.num_classes())?;
    let num_classes = ctx.source.num_classes();

    let src_emb = net.embed(&train);
    let src_protos = class_prototypes(&src_emb, ctx.source.labels(), num_classes);
    let shot_emb = net.embed(&normalizer.transform(ctx.target_shots.features()));
    let shot_protos = class_prototypes(&shot_emb, ctx.target_shots.labels(), num_classes);
    let shot_counts = {
        let mut c = vec![0usize; num_classes];
        for &l in ctx.target_shots.labels() {
            c[l] += 1;
        }
        c
    };

    // Blend: classes with target shots move toward the target prototype.
    let d = src_protos.cols();
    let mut protos = src_protos.clone();
    for (c, &count) in shot_counts.iter().enumerate() {
        if count > 0 {
            for j in 0..d {
                let blended = (1.0 - config.target_blend) * src_protos.get(c, j)
                    + config.target_blend * shot_protos.get(c, j);
                protos.set(c, j, blended);
            }
        }
    }

    Ok(ProtoNetParts {
        normalizer,
        net,
        prototypes: protos,
        num_classes,
        num_features: ctx.source.num_features(),
    })
}

/// Assigns each query row to its nearest prototype (Euclidean).
pub fn nearest_prototype(queries: &Matrix, prototypes: &Matrix) -> Vec<usize> {
    (0..queries.rows())
        .map(|q| {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..prototypes.rows() {
                let d = euclidean_distance(queries.row(q), prototypes.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::naive::src_only;
    use crate::baselines::testutil::{f1_of, scenario};
    use fsda_models::ClassifierKind;

    #[test]
    fn matchnet_beats_src_only() {
        let (bundle, shots) = scenario(11, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 13);
        let f_mn = f1_of(matchnet, &bundle, &shots, ClassifierKind::Mlp, 13);
        assert!(
            f_mn > f_src,
            "MatchNet ({f_mn:.3}) should beat SrcOnly ({f_src:.3})"
        );
    }

    #[test]
    fn protonet_beats_src_only() {
        let (bundle, shots) = scenario(12, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 14);
        let f_pn = f1_of(protonet, &bundle, &shots, ClassifierKind::Mlp, 14);
        assert!(
            f_pn > f_src,
            "ProtoNet ({f_pn:.3}) should beat SrcOnly ({f_src:.3})"
        );
    }

    #[test]
    fn nearest_prototype_basic() {
        let queries = Matrix::from_rows(&[&[0.0, 0.1], &[5.0, 5.0]]);
        let protos = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.1]]);
        assert_eq!(nearest_prototype(&queries, &protos), vec![0, 1]);
    }

    #[test]
    fn both_run_single_shot() {
        let (bundle, shots) = scenario(13, 1);
        let f1 = f1_of(matchnet, &bundle, &shots, ClassifierKind::Mlp, 15);
        let f2 = f1_of(protonet, &bundle, &shots, ClassifierKind::Mlp, 15);
        assert!((0.0..=1.0).contains(&f1));
        assert!((0.0..=1.0).contains(&f2));
    }
}
