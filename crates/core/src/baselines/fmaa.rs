//! FMAA: few-shot metric adversarial adaptation, the fourth adversarial
//! representation-learning baseline.
//!
//! An encoder trains under three joint objectives: (a) weighted
//! cross-entropy on labelled source + shots, (b) adversarial domain
//! confusion through a gradient-reversal layer, and (c) a **label
//! self-correcting class-conditional MMD**
//! ([`fsda_nn::loss::class_conditional_mmd`]) that pulls same-category
//! source/target clusters together while the categories stay separated.
//! The self-correction re-labels target rows with the classifier's own
//! confident predictions before the metric term is applied, so an early
//! mislabelled shot cannot pin its cluster to the wrong prototype.
//! Model-specific: it brings its own network, so Table I reports a single
//! FMAA column.

use super::{zscore_fit, DaContext, FitContext};
use crate::Result;
use fsda_data::Normalizer;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::classifier::argmax_rows;
use fsda_nn::layer::{Activation, Dense, GradientReversal};
use fsda_nn::loss::{bce_with_logits, class_conditional_mmd, softmax, weighted_cross_entropy};
use fsda_nn::optim::{Adam, Optimizer};
use fsda_nn::plan::{InferPlan, InferPrecision, PlanOp};
use fsda_nn::train::BatchIter;
use fsda_nn::{DivergenceWatchdog, Layer, Sequential, WatchdogConfig, WatchdogVerdict};

/// The fitted state of FMAA: normalizer, encoder, and classification head
/// (the domain head only exists during training), plus the compiled
/// inference plan.
pub(crate) struct FmaaParts {
    /// Normalizer fitted on source + shots.
    pub normalizer: Normalizer,
    /// The metric-aligned encoder.
    pub encoder: Sequential,
    /// The classification head.
    pub head: Sequential,
    /// Encoder hidden width (needed to rebuild the architecture on
    /// restore).
    pub hidden: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Input width.
    pub num_features: usize,
    /// Encoder + head fused into one kernel-path plan; `None` falls back
    /// to the layer chain (never persisted — recompiled on restore).
    pub plan: Option<InferPlan>,
}

impl FmaaParts {
    /// Compiles the encoder + head into one fused plan (called at fit and
    /// restore; the `F64Exact` plan path is bit-identical to the layer
    /// chain, so persistence round-trips stay exact either way).
    pub(crate) fn compile_plan(&mut self) {
        self.plan = InferPlan::from_op(PlanOp::Nested(vec![
            Layer::plan_op(&self.encoder),
            Layer::plan_op(&self.head),
        ]))
        .ok();
    }

    /// Predicts a raw batch: normalize, embed, classify.
    pub(crate) fn predict(&self, features: &Matrix) -> Vec<usize> {
        self.predict_with(features, InferPrecision::F64Exact)
    }

    /// Predicts at an explicit kernel precision.
    pub(crate) fn predict_with(&self, features: &Matrix, precision: InferPrecision) -> Vec<usize> {
        let x = self.normalizer.transform(features);
        let logits = match &self.plan {
            Some(plan) => plan.infer(&x, precision),
            None => self.head.infer(&self.encoder.infer(&x)),
        };
        argmax_rows(&softmax(&logits))
    }
}

/// Hyper-parameters of the FMAA baseline.
#[derive(Debug, Clone)]
pub struct FmaaConfig {
    /// Encoder hidden width.
    pub hidden: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (source rows; every batch also carries all target
    /// shots so the class-conditional MMD always sees both domains).
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight of the class-conditional MMD term.
    pub mmd_weight: f64,
    /// Weight of the adversarial domain loss.
    pub domain_loss_weight: f64,
    /// Softmax confidence above which a target row's label is replaced by
    /// the classifier's own prediction for the metric term (the label
    /// self-correction threshold).
    pub confidence: f64,
    /// Divergence watchdog wrapped around the training loop.
    pub watchdog: WatchdogConfig,
}

impl Default for FmaaConfig {
    fn default() -> Self {
        FmaaConfig {
            hidden: 128,
            embed_dim: 64,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            mmd_weight: 1.0,
            domain_loss_weight: 0.5,
            confidence: 0.9,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// Runs FMAA: metric adversarial training on labelled source + labelled
/// shots, then predicts the test set.
///
/// # Errors
///
/// Returns an error when inputs are malformed (propagated from dataset
/// plumbing); training itself is infallible.
pub fn fmaa(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    let config = FmaaConfig {
        epochs: ctx.budget.nn_epochs,
        ..FmaaConfig::default()
    };
    run_with_config(ctx, &config)
}

/// FMAA with explicit hyper-parameters (exposed for ablations).
///
/// # Errors
///
/// As [`fmaa`].
pub fn run_with_config(ctx: &DaContext<'_>, config: &FmaaConfig) -> Result<Vec<usize>> {
    Ok(fit_with_config(&ctx.fit(), config)?.predict(ctx.test_features))
}

/// Trains FMAA and returns its fitted parts.
pub(crate) fn fit_with_config(ctx: &FitContext<'_>, config: &FmaaConfig) -> Result<FmaaParts> {
    let combined = ctx.source.concat(ctx.target_shots)?;
    let (train, normalizer) = zscore_fit(combined.features());
    let n_src = ctx.source.len();
    let n = combined.len();
    let labels = combined.labels();
    let num_classes = combined.num_classes();

    let mut rng = SeededRng::new(ctx.seed);
    let mut encoder = Sequential::new();
    encoder.push(Dense::new(train.cols(), config.hidden, &mut rng));
    encoder.push(Activation::relu());
    encoder.push(Dense::new(config.hidden, config.embed_dim, &mut rng));
    let mut head = Sequential::new();
    head.push(Dense::new(config.embed_dim, num_classes, &mut rng));
    let mut grl = GradientReversal::new(config.domain_loss_weight);
    let mut domain_head = Sequential::new();
    domain_head.push(Dense::new(config.embed_dim, 32, &mut rng));
    domain_head.push(Activation::relu());
    domain_head.push(Dense::new(32, 1, &mut rng));

    let mut opt = Adam::new(config.learning_rate);
    let mut watchdog = DivergenceWatchdog::new(config.watchdog);
    let shot_weight = (n_src as f64 / ctx.target_shots.len().max(1) as f64).clamp(1.0, 50.0);
    let shots: Vec<usize> = (n_src..n).collect();
    let total_steps = (config.epochs * n_src.div_ceil(config.batch_size.max(1))).max(1);
    let mut step = 0usize;
    for epoch in 0..config.epochs {
        let mut epoch_loss = 0.0;
        for mut batch in BatchIter::new(n_src, config.batch_size.min(n_src.max(1)), &mut rng) {
            step += 1;
            // The metric term ramps in on the standard adversarial
            // schedule: early pseudo-labels (and the class means built
            // from them) are noise, so alignment strength follows trust.
            let p = step as f64 / total_steps as f64;
            let mmd_ramp = config.mmd_weight * (2.0 / (1.0 + (-10.0 * p).exp()) - 1.0);
            // Every batch carries all target shots so the metric term
            // always sees both domains.
            batch.extend_from_slice(&shots);
            let bx = train.select_rows(&batch);
            let by: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            let bw: Vec<f64> = batch
                .iter()
                .map(|&i| if i >= n_src { shot_weight } else { 1.0 })
                .collect();
            let is_target: Vec<bool> = batch.iter().map(|&i| i >= n_src).collect();
            let bdom = Matrix::from_fn(batch.len(), 1, |r, _| f64::from(is_target[r]));

            encoder.zero_grad();
            head.zero_grad();
            domain_head.zero_grad();
            let emb = encoder.forward(&bx, true);
            let logits = head.forward(&emb, true);
            let (ce_loss, grad_ce) = weighted_cross_entropy(&logits, &by, &bw);
            let grad_ce_emb = head.backward(&grad_ce);

            // Label self-correction: a target row whose current softmax is
            // confident enough adopts the predicted class for the metric
            // alignment (cross-entropy keeps the given label).
            let probs = softmax(&logits);
            let corrected: Vec<usize> = by
                .iter()
                .enumerate()
                .map(|(r, &y)| {
                    if !is_target[r] {
                        return y;
                    }
                    let row = probs.row(r);
                    let (best, best_p) =
                        row.iter().enumerate().fold(
                            (y, 0.0),
                            |acc, (c, &p)| if p > acc.1 { (c, p) } else { acc },
                        );
                    if best_p >= config.confidence {
                        best
                    } else {
                        y
                    }
                })
                .collect();
            let (mmd_loss, grad_mmd) = class_conditional_mmd(&emb, &corrected, &is_target);

            let emb_rev = fsda_nn::Layer::forward(&mut grl, &emb, true);
            let dom_logits = domain_head.forward(&emb_rev, true);
            let (dom_loss, grad_dom) = bce_with_logits(&dom_logits, &bdom);
            let grad_dom_emb = fsda_nn::Layer::backward(&mut grl, &domain_head.backward(&grad_dom));
            epoch_loss += ce_loss + mmd_ramp * mmd_loss + dom_loss;

            let grad_emb = match grad_ce_emb
                .try_add(&grad_mmd.scale(mmd_ramp))
                .and_then(|g| g.try_add(&grad_dom_emb))
            {
                Ok(g) => g,
                // All three gradients flow back through the same embedding,
                // so their shapes cannot differ.
                Err(e) => panic!("embedding gradient shape invariant: {e}"),
            };
            encoder.backward(&grad_emb);
            let mut params = encoder.params_mut();
            params.extend(head.params_mut());
            params.extend(domain_head.params_mut());
            opt.step(&mut params);
        }
        let verdict = watchdog.observe(
            epoch,
            epoch_loss,
            &mut [&mut encoder, &mut head, &mut domain_head],
        );
        if verdict == WatchdogVerdict::Abort {
            break;
        }
    }

    let mut parts = FmaaParts {
        normalizer,
        encoder,
        head,
        hidden: config.hidden,
        embed_dim: config.embed_dim,
        num_classes,
        num_features: combined.num_features(),
        plan: None,
    };
    parts.compile_plan();
    Ok(parts)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::naive::src_only;
    use crate::baselines::testutil::{f1_of, scenario};
    use fsda_models::ClassifierKind;

    #[test]
    fn fmaa_beats_src_only() {
        let (bundle, shots) = scenario(14, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 16);
        let f_fmaa = f1_of(fmaa, &bundle, &shots, ClassifierKind::Mlp, 16);
        assert!(
            f_fmaa > f_src,
            "FMAA ({f_fmaa:.3}) should beat SrcOnly ({f_src:.3})"
        );
    }

    #[test]
    fn fmaa_runs_single_shot() {
        let (bundle, shots) = scenario(15, 1);
        let f = f1_of(fmaa, &bundle, &shots, ClassifierKind::Mlp, 17);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn fmaa_plan_path_matches_layer_path() {
        let (bundle, shots) = scenario(16, 5);
        let budget = crate::adapter::Budget::quick();
        let ctx = FitContext {
            source: &bundle.source_train,
            target_shots: &shots,
            classifier: ClassifierKind::Mlp,
            budget: &budget,
            seed: 18,
        };
        let config = FmaaConfig {
            epochs: budget.nn_epochs,
            ..FmaaConfig::default()
        };
        let mut parts = fit_with_config(&ctx, &config).unwrap();
        let with_plan = parts.predict(bundle.target_test.features());
        parts.plan = None;
        let without_plan = parts.predict(bundle.target_test.features());
        assert_eq!(with_plan, without_plan);
    }
}
