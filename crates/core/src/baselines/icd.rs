//! ICD: invariant conditional distributions (Magliacane et al., NeurIPS
//! 2018), adapted as the paper describes — the joint-causal-inference
//! machinery is used to split features into variant/invariant sets, and
//! the classifier trains on the invariant features only (of source +
//! shots).
//!
//! ICD was designed for low-dimensional medical data; on hundreds of
//! features its conservative testing identifies far fewer variant features
//! than FS (the paper's observation in §VI-B-d). This implementation
//! realizes that behaviour with *marginal* Kolmogorov–Smirnov two-sample
//! tests at a strict significance level — no conditional refinement and low
//! power at few shots, exactly the failure mode the paper reports.

use super::{zscore_fit, ClassifierParts, DaContext, FitContext};
use crate::adapter::build_classifier;
use crate::Result;
use fsda_linalg::stats::ks_pvalue;
use fsda_linalg::Matrix;

/// Hyper-parameters of the ICD baseline.
#[derive(Debug, Clone)]
pub struct IcdConfig {
    /// Significance level of the marginal KS tests (strict: ICD is
    /// conservative).
    pub alpha: f64,
    /// Minimum KS effect size to flag a feature as variant. ICD's
    /// invariant-set search only removes features whose conditionals shift
    /// unmistakably; small-effect drift passes its tests, which is why the
    /// paper finds it "identifies much less domain-variant features".
    pub min_effect: f64,
}

impl Default for IcdConfig {
    fn default() -> Self {
        IcdConfig {
            alpha: 1e-3,
            min_effect: 0.55,
        }
    }
}

/// Runs ICD and predicts the test set.
///
/// # Errors
///
/// Propagates training failures.
pub fn icd(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    icd_with_config(ctx, &IcdConfig::default())
}

/// ICD with explicit hyper-parameters.
///
/// # Errors
///
/// As [`icd`].
pub fn icd_with_config(ctx: &DaContext<'_>, config: &IcdConfig) -> Result<Vec<usize>> {
    Ok(fit_icd_with_config(&ctx.fit(), config)?.predict(ctx.test_features))
}

/// Trains the ICD parts: classifier on the invariant feature subset of
/// source + shots. `columns` is always `Some`, so serving reduces batches
/// before normalization.
pub(crate) fn fit_icd_with_config(
    ctx: &FitContext<'_>,
    config: &IcdConfig,
) -> Result<ClassifierParts> {
    let invariant = icd_invariant_features(
        ctx.source.features(),
        ctx.target_shots.features(),
        config.alpha,
        config.min_effect,
    );
    // Degenerate safeguard: if everything were flagged variant, fall back
    // to all features.
    let columns: Vec<usize> = if invariant.is_empty() {
        (0..ctx.source.num_features()).collect()
    } else {
        invariant
    };
    let combined = ctx.source.concat(ctx.target_shots)?;
    let reduced = combined.select_features(&columns);
    let (train, normalizer) = zscore_fit(reduced.features());
    let mut model = build_classifier(ctx.classifier, ctx.seed, ctx.budget);
    model.fit(&train, reduced.labels(), reduced.num_classes())?;
    Ok(ClassifierParts {
        normalizer,
        columns: Some(columns),
        classifier: model,
        num_classes: reduced.num_classes(),
        num_features: ctx.source.num_features(),
    })
}

/// The invariant-feature set according to ICD's (conservative, marginal)
/// testing: a feature is variant only when the shift is both significant
/// **and** large.
pub fn icd_invariant_features(
    source: &Matrix,
    shots: &Matrix,
    alpha: f64,
    min_effect: f64,
) -> Vec<usize> {
    use fsda_linalg::stats::ks_statistic;
    (0..source.cols())
        .filter(|&c| {
            let s = source.col(c);
            let t = shots.col(c);
            ks_pvalue(&s, &t) > alpha || ks_statistic(&s, &t) < min_effect
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{f1_of, scenario};
    use crate::fs::{FeatureSeparation, FsConfig};
    use fsda_models::ClassifierKind;

    #[test]
    fn icd_finds_fewer_variant_features_than_fs() {
        let (bundle, shots) = scenario(17, 5);
        let cfg = IcdConfig::default();
        let inv_icd = icd_invariant_features(
            bundle.source_train.features(),
            shots.features(),
            cfg.alpha,
            cfg.min_effect,
        );
        let fs =
            FeatureSeparation::fit(&bundle.source_train, &shots, &FsConfig::default()).unwrap();
        let variant_icd = bundle.source_train.num_features() - inv_icd.len();
        assert!(
            variant_icd < fs.variant().len(),
            "ICD ({variant_icd}) should flag fewer variant features than FS ({})",
            fs.variant().len()
        );
    }

    #[test]
    fn icd_runs_and_scores() {
        let (bundle, shots) = scenario(18, 5);
        let f = f1_of(icd, &bundle, &shots, ClassifierKind::RandomForest, 19);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn empty_invariant_falls_back_to_all() {
        // alpha = 1.0 rejects everything => fallback path.
        let (bundle, shots) = scenario(19, 5);
        let budget = crate::adapter::Budget::quick();
        let ctx = super::super::DaContext {
            source: &bundle.source_train,
            target_shots: &shots,
            test_features: bundle.target_test.features(),
            classifier: ClassifierKind::RandomForest,
            budget: &budget,
            seed: 20,
        };
        let pred = icd_with_config(
            &ctx,
            &IcdConfig {
                alpha: 1.0,
                min_effect: 0.0,
            },
        )
        .unwrap();
        assert_eq!(pred.len(), bundle.target_test.len());
    }
}
