//! The comparison suite of Table I: naive baselines, domain-independent
//! representation learning, few-shot learning, and causal-learning methods.
//!
//! Every baseline is a function from a [`DaContext`] (source data, the few
//! target shots, test features) to predicted labels, so the experiment
//! runner can treat all methods uniformly. Unlike the paper's FS/FS+GAN —
//! which train the network-management model on source data only — **all**
//! of these incorporate the target shots into training, which is exactly
//! the operational cost the paper's approach avoids.

pub mod cmt;
pub mod coral;
pub mod dann;
pub mod fada;
pub mod fewshot;
pub mod fmaa;
pub mod icd;
pub mod naive;
pub mod scl;

use crate::adapter::Budget;
use fsda_data::{Dataset, Normalizer};
use fsda_linalg::Matrix;
use fsda_models::{Classifier, ClassifierKind};

pub(crate) use crate::pipeline::fit_common::zscore_fit;

/// Inputs shared by every DA method.
#[derive(Clone, Copy)]
pub struct DaContext<'a> {
    /// Source-domain training data.
    pub source: &'a Dataset,
    /// The few labelled target-domain shots.
    pub target_shots: &'a Dataset,
    /// Raw (unnormalized) target test features.
    pub test_features: &'a Matrix,
    /// Classifier family for model-agnostic methods (model-specific
    /// methods — DANN, SCL, MatchNet, ProtoNet — ignore it).
    pub classifier: ClassifierKind,
    /// Compute budget.
    pub budget: &'a Budget,
    /// RNG seed.
    pub seed: u64,
}

impl std::fmt::Debug for DaContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaContext")
            .field("source_samples", &self.source.len())
            .field("target_shots", &self.target_shots.len())
            .field("test_rows", &self.test_features.rows())
            .field("classifier", &self.classifier)
            .finish()
    }
}

/// Training-only inputs of a DA method: a [`DaContext`] minus the test
/// features, so the fit half of a baseline cannot touch test data even by
/// accident. This is what makes the fit/predict split behaviour-preserving.
pub(crate) struct FitContext<'a> {
    /// Source-domain training data.
    pub source: &'a Dataset,
    /// The few labelled target-domain shots.
    pub target_shots: &'a Dataset,
    /// Classifier family for model-agnostic methods.
    pub classifier: ClassifierKind,
    /// Compute budget.
    pub budget: &'a Budget,
    /// RNG seed.
    pub seed: u64,
}

impl<'a> DaContext<'a> {
    /// The training half of this context.
    pub(crate) fn fit(&self) -> FitContext<'a> {
        FitContext {
            source: self.source,
            target_shots: self.target_shots,
            classifier: self.classifier,
            budget: self.budget,
            seed: self.seed,
        }
    }
}

/// The fitted state shared by every classifier-family baseline (SrcOnly,
/// TarOnly, S&T, Fine-tune, CORAL, CMT, ICD): a normalizer, an optional
/// feature subset (ICD), and the trained classifier.
pub(crate) struct ClassifierParts {
    /// Normalizer fitted on whatever matrix the method standardizes.
    pub normalizer: Normalizer,
    /// Feature columns the method trains on; `None` means all.
    pub columns: Option<Vec<usize>>,
    /// The trained classifier.
    pub classifier: Box<dyn Classifier>,
    /// Number of classes.
    pub num_classes: usize,
    /// Full input width (pre-column-selection).
    pub num_features: usize,
}

impl ClassifierParts {
    /// Predicts a batch that has already been reduced to the trained
    /// columns (raw, un-normalized values).
    pub(crate) fn predict_reduced(&self, reduced: &Matrix) -> Vec<usize> {
        self.classifier.predict(&self.normalizer.transform(reduced))
    }

    /// Predicts a raw full-width batch.
    pub(crate) fn predict(&self, features: &Matrix) -> Vec<usize> {
        match &self.columns {
            Some(cols) => self.predict_reduced(&features.select_cols(cols)),
            None => self.predict_reduced(features),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub(crate) mod testutil {
    use super::*;
    use fsda_data::fewshot::few_shot_subset;
    use fsda_data::synth5gc::{Synth5gc, Synth5gcBundle};
    use fsda_linalg::SeededRng;
    use fsda_models::metrics::macro_f1;

    /// Shared small-scale scenario for baseline tests.
    pub fn scenario(seed: u64, shots: usize) -> (Synth5gcBundle, Dataset) {
        let bundle = Synth5gc::small().generate(seed).unwrap();
        let mut rng = SeededRng::new(seed ^ 0x51);
        let s = few_shot_subset(&bundle.target_pool, shots, &mut rng).unwrap();
        (bundle, s)
    }

    /// Runs a baseline and returns its macro-F1 on the target test set.
    pub fn f1_of(
        run: impl Fn(&DaContext<'_>) -> crate::Result<Vec<usize>>,
        bundle: &Synth5gcBundle,
        shots: &Dataset,
        classifier: ClassifierKind,
        seed: u64,
    ) -> f64 {
        let budget = Budget::quick();
        let ctx = DaContext {
            source: &bundle.source_train,
            target_shots: shots,
            test_features: bundle.target_test.features(),
            classifier,
            budget: &budget,
            seed,
        };
        let pred = run(&ctx).unwrap();
        macro_f1(bundle.target_test.labels(), &pred, 16)
    }
}
