//! The comparison suite of Table I: naive baselines, domain-independent
//! representation learning, few-shot learning, and causal-learning methods.
//!
//! Every baseline is a function from a [`DaContext`] (source data, the few
//! target shots, test features) to predicted labels, so the experiment
//! runner can treat all methods uniformly. Unlike the paper's FS/FS+GAN —
//! which train the network-management model on source data only — **all**
//! of these incorporate the target shots into training, which is exactly
//! the operational cost the paper's approach avoids.

pub mod cmt;
pub mod coral;
pub mod dann;
pub mod fewshot;
pub mod icd;
pub mod naive;
pub mod scl;

use crate::adapter::Budget;
use fsda_data::Dataset;
use fsda_linalg::Matrix;
use fsda_models::ClassifierKind;

/// Inputs shared by every DA method.
#[derive(Clone, Copy)]
pub struct DaContext<'a> {
    /// Source-domain training data.
    pub source: &'a Dataset,
    /// The few labelled target-domain shots.
    pub target_shots: &'a Dataset,
    /// Raw (unnormalized) target test features.
    pub test_features: &'a Matrix,
    /// Classifier family for model-agnostic methods (model-specific
    /// methods — DANN, SCL, MatchNet, ProtoNet — ignore it).
    pub classifier: ClassifierKind,
    /// Compute budget.
    pub budget: &'a Budget,
    /// RNG seed.
    pub seed: u64,
}

impl std::fmt::Debug for DaContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaContext")
            .field("source_samples", &self.source.len())
            .field("target_shots", &self.target_shots.len())
            .field("test_rows", &self.test_features.rows())
            .field("classifier", &self.classifier)
            .finish()
    }
}

/// Fits a z-score normalizer on `fit_on` and returns the normalized
/// training matrix plus a closure-applied test matrix. Most baselines
/// follow "their suggested normalization", which is standardization.
pub(crate) fn zscore_pair(
    fit_on: &Matrix,
    apply_also: &Matrix,
) -> (Matrix, Matrix, fsda_data::Normalizer) {
    use fsda_data::normalize::NormKind;
    let norm = fsda_data::Normalizer::fit(fit_on, NormKind::ZScore);
    (norm.transform(fit_on), norm.transform(apply_also), norm)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub(crate) mod testutil {
    use super::*;
    use fsda_data::fewshot::few_shot_subset;
    use fsda_data::synth5gc::{Synth5gc, Synth5gcBundle};
    use fsda_linalg::SeededRng;
    use fsda_models::metrics::macro_f1;

    /// Shared small-scale scenario for baseline tests.
    pub fn scenario(seed: u64, shots: usize) -> (Synth5gcBundle, Dataset) {
        let bundle = Synth5gc::small().generate(seed).unwrap();
        let mut rng = SeededRng::new(seed ^ 0x51);
        let s = few_shot_subset(&bundle.target_pool, shots, &mut rng).unwrap();
        (bundle, s)
    }

    /// Runs a baseline and returns its macro-F1 on the target test set.
    pub fn f1_of(
        run: impl Fn(&DaContext<'_>) -> crate::Result<Vec<usize>>,
        bundle: &Synth5gcBundle,
        shots: &Dataset,
        classifier: ClassifierKind,
        seed: u64,
    ) -> f64 {
        let budget = Budget::quick();
        let ctx = DaContext {
            source: &bundle.source_train,
            target_shots: shots,
            test_features: bundle.target_test.features(),
            classifier,
            budget: &budget,
            seed,
        };
        let pred = run(&ctx).unwrap();
        macro_f1(bundle.target_test.labels(), &pred, 16)
    }
}
