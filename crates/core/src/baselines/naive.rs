//! Naive baselines: SrcOnly, TarOnly, S&T, and Fine-Tune.

use super::{zscore_fit, ClassifierParts, DaContext, FitContext};
use crate::adapter::build_classifier;
use crate::Result;
use fsda_models::mlp::{MlpClassifier, MlpConfig};
use fsda_models::Classifier;

/// Trains the SrcOnly parts: classifier on normalized source data only.
pub(crate) fn fit_src_only(ctx: &FitContext<'_>) -> Result<ClassifierParts> {
    let (train, normalizer) = zscore_fit(ctx.source.features());
    let mut model = build_classifier(ctx.classifier, ctx.seed, ctx.budget);
    model.fit(&train, ctx.source.labels(), ctx.source.num_classes())?;
    Ok(ClassifierParts {
        normalizer,
        columns: None,
        classifier: model,
        num_classes: ctx.source.num_classes(),
        num_features: ctx.source.num_features(),
    })
}

/// SrcOnly: train on source data only, no adaptation. The paper's
/// drift-damage reference point (F1 10.6–22.6 on 5GC).
///
/// # Errors
///
/// Propagates classifier-training failures.
pub fn src_only(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    Ok(fit_src_only(&ctx.fit())?.predict(ctx.test_features))
}

/// Trains the TarOnly parts: classifier on the few target shots only.
pub(crate) fn fit_tar_only(ctx: &FitContext<'_>) -> Result<ClassifierParts> {
    let (train, normalizer) = zscore_fit(ctx.target_shots.features());
    let mut model = build_classifier(ctx.classifier, ctx.seed, ctx.budget);
    model.fit(
        &train,
        ctx.target_shots.labels(),
        ctx.target_shots.num_classes(),
    )?;
    Ok(ClassifierParts {
        normalizer,
        columns: None,
        classifier: model,
        num_classes: ctx.target_shots.num_classes(),
        num_features: ctx.target_shots.num_features(),
    })
}

/// TarOnly: train on the few target shots only.
///
/// # Errors
///
/// Propagates classifier-training failures.
pub fn tar_only(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    Ok(fit_tar_only(&ctx.fit())?.predict(ctx.test_features))
}

/// Trains the S&T parts: source and target combined, shots up-weighted.
pub(crate) fn fit_source_and_target(ctx: &FitContext<'_>) -> Result<ClassifierParts> {
    let combined = ctx.source.concat(ctx.target_shots)?;
    let (train, normalizer) = zscore_fit(combined.features());
    let n_src = ctx.source.len() as f64;
    let n_tgt = ctx.target_shots.len() as f64;
    let target_weight = (n_src / n_tgt).max(1.0);
    let mut weights = vec![1.0; combined.len()];
    for w in weights.iter_mut().skip(ctx.source.len()) {
        *w = target_weight;
    }
    let mut model = build_classifier(ctx.classifier, ctx.seed, ctx.budget);
    model.fit_weighted(&train, combined.labels(), &weights, combined.num_classes())?;
    Ok(ClassifierParts {
        normalizer,
        columns: None,
        classifier: model,
        num_classes: combined.num_classes(),
        num_features: combined.num_features(),
    })
}

/// S&T: source and target combined, with target shots up-weighted so the
/// two domains contribute equal total weight.
///
/// # Errors
///
/// Propagates data-combination and training failures.
pub fn source_and_target(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    Ok(fit_source_and_target(&ctx.fit())?.predict(ctx.test_features))
}

/// Trains the Fine-Tune parts: MLP pre-trained on source, all parameters
/// re-optimized on the shots.
pub(crate) fn fit_fine_tune(ctx: &FitContext<'_>) -> Result<ClassifierParts> {
    let (train, normalizer) = zscore_fit(ctx.source.features());
    let mut model = MlpClassifier::new(
        MlpConfig {
            epochs: ctx.budget.nn_epochs,
            ..MlpConfig::default()
        },
        ctx.seed,
    );
    model.fit(&train, ctx.source.labels(), ctx.source.num_classes())?;
    let shots = normalizer.transform(ctx.target_shots.features());
    model.fine_tune(
        &shots,
        ctx.target_shots.labels(),
        ctx.budget.nn_epochs,
        2e-4,
    )?;
    Ok(ClassifierParts {
        normalizer,
        columns: None,
        classifier: Box::new(model),
        num_classes: ctx.source.num_classes(),
        num_features: ctx.source.num_features(),
    })
}

/// Fine-Tune: pre-train an MLP on source, then re-optimize **all**
/// parameters on the target shots (the paper found full re-optimization
/// beats last-layer-only updates). Only applicable to the MLP, as in the
/// paper's Table I.
///
/// # Errors
///
/// Propagates training failures.
pub fn fine_tune(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    Ok(fit_fine_tune(&ctx.fit())?.predict(ctx.test_features))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::testutil::{f1_of, scenario};
    use fsda_models::ClassifierKind;

    #[test]
    fn src_only_degrades_under_drift() {
        // In-domain performance is ~0.9+ (see the integration suite); the
        // drifted target must knock a source-only model far below that.
        // The MLP shows the collapse most sharply at reduced scale.
        let (bundle, shots) = scenario(1, 5);
        let f_rf = f1_of(src_only, &bundle, &shots, ClassifierKind::RandomForest, 3);
        let f_mlp = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 3);
        assert!(
            f_rf < 0.6,
            "SrcOnly RF should degrade under drift, got {f_rf:.3}"
        );
        assert!(
            f_mlp < 0.7,
            "SrcOnly MLP should degrade under drift, got {f_mlp:.3}"
        );
    }

    #[test]
    fn tar_only_beats_src_only_with_shots() {
        let (bundle, shots) = scenario(2, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::RandomForest, 4);
        let f_tar = f1_of(tar_only, &bundle, &shots, ClassifierKind::RandomForest, 4);
        assert!(
            f_tar > f_src,
            "TarOnly ({f_tar:.3}) should beat SrcOnly ({f_src:.3}) at 10 shots"
        );
    }

    #[test]
    fn snt_beats_tar_only() {
        let (bundle, shots) = scenario(3, 5);
        let f_tar = f1_of(tar_only, &bundle, &shots, ClassifierKind::RandomForest, 5);
        let f_snt = f1_of(
            source_and_target,
            &bundle,
            &shots,
            ClassifierKind::RandomForest,
            5,
        );
        assert!(
            f_snt + 0.05 > f_tar,
            "S&T ({f_snt:.3}) should be at least comparable to TarOnly ({f_tar:.3})"
        );
    }

    #[test]
    fn fine_tune_improves_over_src_only_mlp() {
        let (bundle, shots) = scenario(4, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 6);
        let f_ft = f1_of(fine_tune, &bundle, &shots, ClassifierKind::Mlp, 6);
        assert!(
            f_ft > f_src,
            "Fine-tune ({f_ft:.3}) should improve on SrcOnly MLP ({f_src:.3})"
        );
    }
}
