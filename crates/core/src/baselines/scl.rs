//! SCL: supervised contrastive learning combined with domain-adversarial
//! training (Kim et al., ICASSP 2024), the second representation-learning
//! baseline of Table I.
//!
//! An encoder is trained with (a) the supervised contrastive loss over the
//! labelled source + target batch (pulling same-class embeddings together
//! across domains) and (b) a domain classifier behind gradient reversal.
//! A linear classifier is then fit on the frozen embeddings.

use super::{zscore_fit, DaContext, FitContext};
use crate::Result;
use fsda_data::Normalizer;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::classifier::argmax_rows;
use fsda_nn::layer::{Activation, Dense, GradientReversal};
use fsda_nn::loss::{bce_with_logits, softmax, supervised_contrastive, weighted_cross_entropy};
use fsda_nn::optim::{Adam, Optimizer};
use fsda_nn::train::BatchIter;
use fsda_nn::Sequential;

/// The fitted state of SCL: normalizer, encoder, and classification head
/// (the domain head only exists during training).
pub(crate) struct SclParts {
    /// Normalizer fitted on source + shots.
    pub normalizer: Normalizer,
    /// The contrastively trained encoder.
    pub encoder: Sequential,
    /// The linear classification head.
    pub head: Sequential,
    /// Encoder hidden width (needed to rebuild the architecture on
    /// restore).
    pub hidden: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Input width.
    pub num_features: usize,
}

impl SclParts {
    /// Predicts a raw batch: normalize, embed, classify.
    pub(crate) fn predict(&self, features: &Matrix) -> Vec<usize> {
        let emb = self.encoder.infer(&self.normalizer.transform(features));
        argmax_rows(&softmax(&self.head.infer(&emb)))
    }
}

/// Hyper-parameters of the SCL baseline.
#[derive(Debug, Clone)]
pub struct SclConfig {
    /// Encoder hidden width.
    pub hidden: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Encoder training epochs.
    pub epochs: usize,
    /// Linear-head training epochs.
    pub head_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Contrastive temperature.
    pub temperature: f64,
    /// Weight of the adversarial domain loss.
    pub domain_loss_weight: f64,
}

impl Default for SclConfig {
    fn default() -> Self {
        SclConfig {
            hidden: 128,
            embed_dim: 64,
            epochs: 60,
            head_epochs: 40,
            batch_size: 64,
            learning_rate: 1e-3,
            temperature: 0.5,
            domain_loss_weight: 0.5,
        }
    }
}

/// Runs the SCL baseline and predicts the test set.
///
/// # Errors
///
/// Propagates dataset-combination failures.
pub fn scl(ctx: &DaContext<'_>) -> Result<Vec<usize>> {
    let config = SclConfig {
        epochs: ctx.budget.emb_epochs,
        head_epochs: ctx.budget.nn_epochs,
        ..SclConfig::default()
    };
    run_with_config(ctx, &config)
}

/// SCL with explicit hyper-parameters.
///
/// # Errors
///
/// As [`scl`].
pub fn run_with_config(ctx: &DaContext<'_>, config: &SclConfig) -> Result<Vec<usize>> {
    Ok(fit_with_config(&ctx.fit(), config)?.predict(ctx.test_features))
}

/// Trains SCL and returns its fitted parts.
pub(crate) fn fit_with_config(ctx: &FitContext<'_>, config: &SclConfig) -> Result<SclParts> {
    let combined = ctx.source.concat(ctx.target_shots)?;
    let (train, normalizer) = zscore_fit(combined.features());
    let n_src = ctx.source.len();
    let n = combined.len();
    let labels = combined.labels();
    let num_classes = combined.num_classes();

    let mut rng = SeededRng::new(ctx.seed);
    let mut encoder = Sequential::new();
    encoder.push(Dense::new(train.cols(), config.hidden, &mut rng));
    encoder.push(Activation::relu());
    encoder.push(Dense::new(config.hidden, config.embed_dim, &mut rng));
    let mut grl = GradientReversal::new(config.domain_loss_weight);
    let mut domain_head = Sequential::new();
    domain_head.push(Dense::new(config.embed_dim, 32, &mut rng));
    domain_head.push(Activation::relu());
    domain_head.push(Dense::new(32, 1, &mut rng));

    // Classification head trained jointly: practical SCL implementations
    // combine the contrastive objective with a cross-entropy head (the
    // contrastive term shapes the metric space, the head provides the
    // decision rule) alongside the adversarial domain loss.
    let mut head = Sequential::new();
    head.push(Dense::new(config.embed_dim, num_classes, &mut rng));

    let mut opt = Adam::new(config.learning_rate);
    let shot_weight = (n_src as f64 / ctx.target_shots.len() as f64).clamp(1.0, 50.0);
    let epochs = config.epochs + config.head_epochs;
    for _ in 0..epochs {
        for batch in BatchIter::new(n, config.batch_size.min(n), &mut rng) {
            if batch.len() < 4 {
                continue; // the contrastive loss needs several anchors
            }
            let bx = train.select_rows(&batch);
            let by: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
            let bw: Vec<f64> = batch
                .iter()
                .map(|&i| if i >= n_src { shot_weight } else { 1.0 })
                .collect();
            let bdom = Matrix::from_fn(batch.len(), 1, |r, _| f64::from(batch[r] >= n_src));
            encoder.zero_grad();
            domain_head.zero_grad();
            head.zero_grad();
            let emb = encoder.forward(&bx, true);
            let (_, grad_supcon) = supervised_contrastive(&emb, &by, config.temperature);
            let logits = head.forward(&emb, true);
            let (_, grad_ce) = weighted_cross_entropy(&logits, &by, &bw);
            let grad_ce_emb = head.backward(&grad_ce);
            let emb_rev = fsda_nn::Layer::forward(&mut grl, &emb, true);
            let dom_logits = domain_head.forward(&emb_rev, true);
            let (_, grad_dom) = bce_with_logits(&dom_logits, &bdom);
            let grad_dom_emb = fsda_nn::Layer::backward(&mut grl, &domain_head.backward(&grad_dom));
            let grad_emb = match grad_supcon
                .try_add(&grad_ce_emb)
                .and_then(|g| g.try_add(&grad_dom_emb))
            {
                Ok(g) => g,
                // All three gradients flow back through the same embedding,
                // so their shapes cannot differ.
                Err(e) => panic!("embedding gradient shape invariant: {e}"),
            };
            encoder.backward(&grad_emb);
            let mut params = encoder.params_mut();
            params.extend(head.params_mut());
            params.extend(domain_head.params_mut());
            opt.step(&mut params);
        }
    }
    Ok(SclParts {
        normalizer,
        encoder,
        head,
        hidden: config.hidden,
        embed_dim: config.embed_dim,
        num_classes,
        num_features: combined.num_features(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::baselines::naive::src_only;
    use crate::baselines::testutil::{f1_of, scenario};
    use fsda_models::ClassifierKind;

    #[test]
    fn scl_beats_src_only() {
        let (bundle, shots) = scenario(9, 10);
        let f_src = f1_of(src_only, &bundle, &shots, ClassifierKind::Mlp, 11);
        let f_scl = f1_of(scl, &bundle, &shots, ClassifierKind::Mlp, 11);
        assert!(
            f_scl > f_src,
            "SCL ({f_scl:.3}) should beat SrcOnly ({f_src:.3})"
        );
    }

    #[test]
    fn scl_runs_single_shot() {
        let (bundle, shots) = scenario(10, 1);
        let f = f1_of(scl, &bundle, &shots, ClassifierKind::Mlp, 12);
        assert!((0.0..=1.0).contains(&f));
    }
}
