//! Online drift detection: deciding *when* to re-run FS and retrain the
//! GAN.
//!
//! §VI-F of the paper observes that the FS+GAN front-end "only needs to be
//! updated when the data distribution undergoes significant changes". This
//! module operationalizes that: a [`DriftDetector`] is fit on source-domain
//! statistics and scores incoming (unlabeled!) windows of operational
//! samples; when enough features shift beyond their source behaviour, it
//! recommends re-running the (cheap) FS + GAN pipeline — never the
//! network-management models themselves.

use fsda_linalg::stats::{ks_statistic, mean, std_dev};
use fsda_linalg::Matrix;

/// Per-feature reference statistics from the source domain.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    means: Vec<f64>,
    stds: Vec<f64>,
    /// Reference sample for the KS test, subsampled for memory
    /// friendliness: one row per feature (`d x n_ref`).
    reference: Matrix,
    config: DriftConfig,
}

/// Detector thresholds.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// A feature counts as drifted when its window mean moves more than
    /// this many source standard deviations…
    pub z_threshold: f64,
    /// …or its KS statistic against the source reference exceeds this.
    pub ks_threshold: f64,
    /// Fraction of features that must drift to recommend re-adaptation.
    pub feature_fraction: f64,
    /// Maximum reference samples kept per feature.
    pub reference_cap: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        // The KS threshold must sit below ~0.29, the supremum gap between
        // N(0,1) and N(0,16) — a 4x noise inflation is exactly the kind of
        // regime change worth re-adapting to.
        DriftConfig {
            z_threshold: 1.0,
            ks_threshold: 0.25,
            feature_fraction: 0.05,
            reference_cap: 512,
        }
    }
}

/// Result of scoring one window.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Indices of features whose window statistics left the source
    /// envelope.
    pub drifted_features: Vec<usize>,
    /// Per-feature |mean shift| in source standard deviations.
    pub z_scores: Vec<f64>,
    /// Per-feature KS statistic vs the source reference.
    pub ks: Vec<f64>,
    /// Whether the detector recommends re-running FS + GAN.
    pub readapt: bool,
}

impl DriftDetector {
    /// Fits the detector on source-domain features (rows are samples).
    ///
    /// # Panics
    ///
    /// Panics if `source` has no rows or no columns.
    pub fn fit(source: &Matrix, config: DriftConfig) -> Self {
        assert!(
            source.rows() > 0 && source.cols() > 0,
            "DriftDetector: empty source"
        );
        let d = source.cols();
        let mut means = Vec::with_capacity(d);
        let mut stds = Vec::with_capacity(d);
        let step = (source.rows() / config.reference_cap).max(1);
        // Every column is subsampled with the same stride, so each keeps
        // the same number of samples: one matrix row per feature.
        let n_ref = source.rows().div_ceil(step);
        let mut reference = Matrix::zeros(d, n_ref);
        for c in 0..d {
            let col = source.col(c);
            means.push(mean(&col));
            stds.push(std_dev(&col).max(1e-9));
            for (dst, src) in reference
                .row_mut(c)
                .iter_mut()
                .zip(col.into_iter().step_by(step))
            {
                *dst = src;
            }
        }
        DriftDetector {
            means,
            stds,
            reference,
            config,
        }
    }

    /// Number of monitored features.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Scores a window of operational samples (no labels needed).
    ///
    /// # Panics
    ///
    /// Panics if the window's column count differs from the source.
    pub fn score(&self, window: &Matrix) -> DriftReport {
        assert_eq!(
            window.cols(),
            self.num_features(),
            "DriftDetector: column mismatch"
        );
        let d = self.num_features();
        let mut drifted = Vec::new();
        let mut z_scores = Vec::with_capacity(d);
        let mut ks = Vec::with_capacity(d);
        for c in 0..d {
            let col = window.col(c);
            let z = ((mean(&col) - self.means[c]) / self.stds[c]).abs();
            let k = ks_statistic(self.reference.row(c), &col);
            if z > self.config.z_threshold || k > self.config.ks_threshold {
                drifted.push(c);
            }
            z_scores.push(z);
            ks.push(k);
        }
        let readapt =
            drifted.len() as f64 >= self.config.feature_fraction * d as f64 && !drifted.is_empty();
        DriftReport {
            drifted_features: drifted,
            z_scores,
            ks,
            readapt,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::SeededRng;

    fn source(seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        rng.normal_matrix(400, 10, 0.0, 1.0)
    }

    #[test]
    fn no_drift_on_in_distribution_window() {
        let src = source(1);
        let det = DriftDetector::fit(&src, DriftConfig::default());
        let mut rng = SeededRng::new(2);
        let window = rng.normal_matrix(100, 10, 0.0, 1.0);
        let report = det.score(&window);
        assert!(
            !report.readapt,
            "in-distribution window flagged: {:?}",
            report.drifted_features
        );
        assert!(report.drifted_features.len() <= 1);
    }

    #[test]
    fn detects_shifted_features() {
        let src = source(3);
        let det = DriftDetector::fit(&src, DriftConfig::default());
        let mut rng = SeededRng::new(4);
        let window = Matrix::from_fn(100, 10, |_, c| {
            if c < 3 {
                rng.normal(2.5, 1.0)
            } else {
                rng.normal(0.0, 1.0)
            }
        });
        let report = det.score(&window);
        assert!(report.readapt);
        for c in 0..3 {
            assert!(report.drifted_features.contains(&c), "feature {c} missed");
            assert!(report.z_scores[c] > 1.0);
        }
        assert!(!report.drifted_features.contains(&5));
    }

    #[test]
    fn detects_variance_drift_via_ks() {
        // Pure variance change: means stay, KS catches it.
        let src = source(5);
        let det = DriftDetector::fit(&src, DriftConfig::default());
        let mut rng = SeededRng::new(6);
        let window = Matrix::from_fn(300, 10, |_, c| {
            if c == 0 {
                rng.normal(0.0, 4.0)
            } else {
                rng.normal(0.0, 1.0)
            }
        });
        let report = det.score(&window);
        assert!(
            report.drifted_features.contains(&0),
            "variance drift missed"
        );
        assert!(report.z_scores[0] < 1.0, "mean did not move");
        assert!(report.ks[0] > 0.3);
    }

    #[test]
    fn integrates_with_synthetic_target_domain() {
        // The 5GC target domain must trip the detector; that is the signal
        // to re-run FS + GAN.
        let bundle = fsda_data::synth5gc::Synth5gc::small().generate(7).unwrap();
        let det = DriftDetector::fit(bundle.source_train.features(), DriftConfig::default());
        let report = det.score(bundle.target_test.features());
        assert!(report.readapt, "synthetic drift must be detected");
        // Most flagged features should be true intervention targets or
        // their descendants; at minimum the strong tier is caught.
        for &c in bundle.ground_truth_variant.iter().take(4) {
            assert!(
                report.drifted_features.contains(&c),
                "strong variant feature {c} missed: {:?}",
                report.drifted_features
            );
        }
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn window_width_is_validated() {
        let det = DriftDetector::fit(&source(8), DriftConfig::default());
        let _ = det.score(&Matrix::zeros(5, 3));
    }
}
