//! Online drift detection: deciding *when* to re-run FS and retrain the
//! GAN.
//!
//! §VI-F of the paper observes that the FS+GAN front-end "only needs to be
//! updated when the data distribution undergoes significant changes". This
//! module operationalizes that: a [`DriftDetector`] is fit on source-domain
//! statistics and scores incoming (unlabeled!) windows of operational
//! samples; when enough features shift beyond their source behaviour, it
//! recommends re-running the (cheap) FS + GAN pipeline — never the
//! network-management models themselves.

use fsda_linalg::stats::{ks_statistic, mean, std_dev};
use fsda_linalg::Matrix;

/// Typed failure from scoring a window — the serving-adjacent analogue of
/// `ServeError` (`crate::serve::ServeError`): localized enough that an
/// operator can find the offending exporter column without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftError {
    /// The window's feature count differs from the fitted source.
    FeatureMismatch {
        /// Features the detector was fitted on.
        expected: usize,
        /// Features the window actually has.
        got: usize,
    },
    /// The window contains a NaN/Inf cell; the payload localizes the first.
    NonFinite {
        /// Row index of the first offending cell.
        row: usize,
        /// Column index of the first offending cell.
        col: usize,
    },
    /// The window has no rows — there is nothing to score.
    EmptyWindow,
}

impl std::fmt::Display for DriftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftError::FeatureMismatch { expected, got } => {
                write!(
                    f,
                    "drift window has {got} features, detector monitors {expected}"
                )
            }
            DriftError::NonFinite { row, col } => {
                write!(
                    f,
                    "drift window has a non-finite cell at row {row}, column {col}"
                )
            }
            DriftError::EmptyWindow => write!(f, "drift window is empty"),
        }
    }
}

impl std::error::Error for DriftError {}

/// Per-feature reference statistics from the source domain.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    means: Vec<f64>,
    stds: Vec<f64>,
    /// Reference sample for the KS test, subsampled for memory
    /// friendliness: one row per feature (`d x n_ref`).
    reference: Matrix,
    config: DriftConfig,
}

/// Detector thresholds.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// A feature counts as drifted when its window mean moves more than
    /// this many source standard deviations…
    pub z_threshold: f64,
    /// …or its KS statistic against the source reference exceeds this.
    pub ks_threshold: f64,
    /// Fraction of features that must drift to recommend re-adaptation.
    pub feature_fraction: f64,
    /// Maximum reference samples kept per feature.
    pub reference_cap: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        // The KS threshold must sit below ~0.29, the supremum gap between
        // N(0,1) and N(0,16) — a 4x noise inflation is exactly the kind of
        // regime change worth re-adapting to.
        DriftConfig {
            z_threshold: 1.0,
            ks_threshold: 0.25,
            feature_fraction: 0.05,
            reference_cap: 512,
        }
    }
}

/// Result of scoring one window.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Indices of features whose window statistics left the source
    /// envelope.
    pub drifted_features: Vec<usize>,
    /// Per-feature |mean shift| in source standard deviations.
    pub z_scores: Vec<f64>,
    /// Per-feature KS statistic vs the source reference.
    pub ks: Vec<f64>,
    /// Whether the detector recommends re-running FS + GAN.
    pub readapt: bool,
}

impl DriftDetector {
    /// Fits the detector on source-domain features (rows are samples).
    ///
    /// # Panics
    ///
    /// Panics if `source` has no rows or no columns.
    pub fn fit(source: &Matrix, config: DriftConfig) -> Self {
        assert!(
            source.rows() > 0 && source.cols() > 0,
            "DriftDetector: empty source"
        );
        let d = source.cols();
        let mut means = Vec::with_capacity(d);
        let mut stds = Vec::with_capacity(d);
        let step = (source.rows() / config.reference_cap).max(1);
        // Every column is subsampled with the same stride, so each keeps
        // the same number of samples: one matrix row per feature.
        let n_ref = source.rows().div_ceil(step);
        let mut reference = Matrix::zeros(d, n_ref);
        for c in 0..d {
            let col = source.col(c);
            means.push(mean(&col));
            stds.push(std_dev(&col).max(1e-9));
            for (dst, src) in reference
                .row_mut(c)
                .iter_mut()
                .zip(col.into_iter().step_by(step))
            {
                *dst = src;
            }
        }
        DriftDetector {
            means,
            stds,
            reference,
            config,
        }
    }

    /// Number of monitored features.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Scores a window of operational samples (no labels needed).
    ///
    /// # Panics
    ///
    /// Panics on any input [`try_score`](DriftDetector::try_score) rejects:
    /// column mismatch, non-finite cells, or an empty window. Online
    /// callers fed by untrusted exporters should use `try_score`.
    pub fn score(&self, window: &Matrix) -> DriftReport {
        match self.try_score(window) {
            Ok(report) => report,
            Err(DriftError::FeatureMismatch { .. }) => {
                panic!("DriftDetector: column mismatch")
            }
            Err(e) => panic!("DriftDetector: {e}"),
        }
    }

    /// Scores a window, returning a typed, localized error instead of
    /// indexing blind: width mismatches, NaN/Inf cells (first offending
    /// row/column reported), and empty windows are all rejected up front,
    /// so a corrupt telemetry export can never poison the drift statistics
    /// or panic a long-running controller.
    ///
    /// # Errors
    ///
    /// See [`DriftError`].
    pub fn try_score(&self, window: &Matrix) -> Result<DriftReport, DriftError> {
        if window.cols() != self.num_features() {
            return Err(DriftError::FeatureMismatch {
                expected: self.num_features(),
                got: window.cols(),
            });
        }
        if window.rows() == 0 {
            return Err(DriftError::EmptyWindow);
        }
        for (r, row) in window.iter_rows().enumerate() {
            if let Some(c) = row.iter().position(|v| !v.is_finite()) {
                return Err(DriftError::NonFinite { row: r, col: c });
            }
        }
        let d = self.num_features();
        let mut drifted = Vec::new();
        let mut z_scores = Vec::with_capacity(d);
        let mut ks = Vec::with_capacity(d);
        for c in 0..d {
            let col = window.col(c);
            let z = ((mean(&col) - self.means[c]) / self.stds[c]).abs();
            let k = ks_statistic(self.reference.row(c), &col);
            if z > self.config.z_threshold || k > self.config.ks_threshold {
                drifted.push(c);
            }
            z_scores.push(z);
            ks.push(k);
        }
        let readapt =
            drifted.len() as f64 >= self.config.feature_fraction * d as f64 && !drifted.is_empty();
        Ok(DriftReport {
            drifted_features: drifted,
            z_scores,
            ks,
            readapt,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::SeededRng;

    fn source(seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        rng.normal_matrix(400, 10, 0.0, 1.0)
    }

    #[test]
    fn no_drift_on_in_distribution_window() {
        let src = source(1);
        let det = DriftDetector::fit(&src, DriftConfig::default());
        let mut rng = SeededRng::new(2);
        let window = rng.normal_matrix(100, 10, 0.0, 1.0);
        let report = det.score(&window);
        assert!(
            !report.readapt,
            "in-distribution window flagged: {:?}",
            report.drifted_features
        );
        assert!(report.drifted_features.len() <= 1);
    }

    #[test]
    fn detects_shifted_features() {
        let src = source(3);
        let det = DriftDetector::fit(&src, DriftConfig::default());
        let mut rng = SeededRng::new(4);
        let window = Matrix::from_fn(100, 10, |_, c| {
            if c < 3 {
                rng.normal(2.5, 1.0)
            } else {
                rng.normal(0.0, 1.0)
            }
        });
        let report = det.score(&window);
        assert!(report.readapt);
        for c in 0..3 {
            assert!(report.drifted_features.contains(&c), "feature {c} missed");
            assert!(report.z_scores[c] > 1.0);
        }
        assert!(!report.drifted_features.contains(&5));
    }

    #[test]
    fn detects_variance_drift_via_ks() {
        // Pure variance change: means stay, KS catches it.
        let src = source(5);
        let det = DriftDetector::fit(&src, DriftConfig::default());
        let mut rng = SeededRng::new(6);
        let window = Matrix::from_fn(300, 10, |_, c| {
            if c == 0 {
                rng.normal(0.0, 4.0)
            } else {
                rng.normal(0.0, 1.0)
            }
        });
        let report = det.score(&window);
        assert!(
            report.drifted_features.contains(&0),
            "variance drift missed"
        );
        assert!(report.z_scores[0] < 1.0, "mean did not move");
        assert!(report.ks[0] > 0.3);
    }

    #[test]
    fn integrates_with_synthetic_target_domain() {
        // The 5GC target domain must trip the detector; that is the signal
        // to re-run FS + GAN.
        let bundle = fsda_data::synth5gc::Synth5gc::small().generate(7).unwrap();
        let det = DriftDetector::fit(bundle.source_train.features(), DriftConfig::default());
        let report = det.score(bundle.target_test.features());
        assert!(report.readapt, "synthetic drift must be detected");
        // Most flagged features should be true intervention targets or
        // their descendants; at minimum the strong tier is caught.
        for &c in bundle.ground_truth_variant.iter().take(4) {
            assert!(
                report.drifted_features.contains(&c),
                "strong variant feature {c} missed: {:?}",
                report.drifted_features
            );
        }
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn window_width_is_validated() {
        let det = DriftDetector::fit(&source(8), DriftConfig::default());
        let _ = det.score(&Matrix::zeros(5, 3));
    }

    #[test]
    fn try_score_rejects_width_mismatch_typed() {
        let det = DriftDetector::fit(&source(8), DriftConfig::default());
        assert_eq!(
            det.try_score(&Matrix::zeros(5, 3)).unwrap_err(),
            DriftError::FeatureMismatch {
                expected: 10,
                got: 3
            }
        );
    }

    #[test]
    fn try_score_localizes_non_finite_cells() {
        let det = DriftDetector::fit(&source(9), DriftConfig::default());
        let mut rng = SeededRng::new(10);
        let mut window = rng.normal_matrix(40, 10, 0.0, 1.0);
        window.set(13, 6, f64::NAN);
        assert_eq!(
            det.try_score(&window).unwrap_err(),
            DriftError::NonFinite { row: 13, col: 6 }
        );
        window.set(13, 6, f64::NEG_INFINITY);
        assert_eq!(
            det.try_score(&window).unwrap_err(),
            DriftError::NonFinite { row: 13, col: 6 }
        );
    }

    #[test]
    fn try_score_rejects_empty_window() {
        let det = DriftDetector::fit(&source(11), DriftConfig::default());
        assert_eq!(
            det.try_score(&Matrix::zeros(0, 10)).unwrap_err(),
            DriftError::EmptyWindow
        );
    }

    #[test]
    fn try_score_matches_score_on_clean_windows() {
        let det = DriftDetector::fit(&source(12), DriftConfig::default());
        let mut rng = SeededRng::new(13);
        let window = rng.normal_matrix(80, 10, 0.5, 1.2);
        let a = det.try_score(&window).unwrap();
        let b = det.score(&window);
        assert_eq!(a.drifted_features, b.drifted_features);
        assert_eq!(a.z_scores, b.z_scores);
        assert_eq!(a.ks, b.ks);
        assert_eq!(a.readapt, b.readapt);
    }
}
