//! Experiment runner: (method × classifier × shots × repeats) grids with
//! deterministic seeding and parallel repeats, matching the paper's
//! protocol ("experiments are repeated 20 times with different random
//! target-sample selections").

use crate::adapter::Budget;
use crate::method::{run_method, Method};
use crate::Result;
use fsda_data::fewshot::few_shot_indices;
use fsda_data::Dataset;
use fsda_linalg::SeededRng;
use fsda_models::metrics::macro_f1;
use fsda_models::ClassifierKind;

/// One dataset scenario (5GC or 5GIPC) with its few-shot pool and test set.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name ("5GC", "5GIPC").
    pub name: String,
    /// Source-domain training data.
    pub source: Dataset,
    /// Target-domain pool from which few-shot subsets are drawn.
    pub target_pool: Dataset,
    /// Few-shot group per pool sample; `None` uses the class labels (5GC).
    /// 5GIPC groups by fault *type* while labels are binary.
    pub pool_groups: Option<Vec<usize>>,
    /// Number of few-shot groups (ignored when `pool_groups` is `None`).
    pub num_groups: usize,
    /// Target-domain test data.
    pub target_test: Dataset,
}

impl Scenario {
    /// Draws a `k`-shot subset of the target pool.
    ///
    /// # Errors
    ///
    /// Propagates sampling failures (undersized groups).
    pub fn draw_shots(&self, k: usize, rng: &mut SeededRng) -> Result<Dataset> {
        let idx = match &self.pool_groups {
            Some(groups) => few_shot_indices(groups, self.num_groups, k, rng)?,
            None => few_shot_indices(
                self.target_pool.labels(),
                self.target_pool.num_classes(),
                k,
                rng,
            )?,
        };
        Ok(self.target_pool.subset(&idx))
    }
}

/// Grid-run configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Shot counts to sweep (paper: 1, 5, 10).
    pub shots: Vec<usize>,
    /// Repeats with different random shot selections (paper: 20).
    pub repeats: usize,
    /// Compute budget for every trained component.
    pub budget: Budget,
    /// Base seed; repeat `r` uses `seed + r`.
    pub seed: u64,
    /// Run repeats on worker threads.
    pub parallel: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            shots: vec![1, 5, 10],
            repeats: 3,
            budget: Budget::full(),
            seed: 0,
            parallel: true,
        }
    }
}

impl ExperimentConfig {
    /// Reduced configuration for tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            shots: vec![5],
            repeats: 1,
            budget: Budget::quick(),
            parallel: false,
            ..ExperimentConfig::default()
        }
    }
}

/// Mean/σ of F1 over the repeats of one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Mean macro-F1 (0–1).
    pub mean_f1: f64,
    /// Standard deviation over repeats.
    pub std_f1: f64,
    /// Per-repeat F1 values.
    pub runs: Vec<f64>,
}

impl CellResult {
    fn from_runs(runs: Vec<f64>) -> Self {
        let mean = fsda_linalg::stats::mean(&runs);
        let std = fsda_linalg::stats::std_dev(&runs);
        CellResult {
            mean_f1: mean,
            std_f1: std,
            runs,
        }
    }

    /// Mean F1 as the paper's 0–100 number.
    pub fn percent(&self) -> f64 {
        100.0 * self.mean_f1
    }
}

/// One labelled grid row: method × classifier × shots.
#[derive(Debug, Clone)]
pub struct GridEntry {
    /// The DA method.
    pub method: Method,
    /// The classifier column (`None` for model-specific methods).
    pub classifier: Option<ClassifierKind>,
    /// Shots per fault type.
    pub shots: usize,
    /// Result over repeats.
    pub result: CellResult,
}

/// Runs one cell: `repeats` random shot draws, each evaluated end-to-end.
///
/// # Errors
///
/// Propagates method failures from any repeat.
pub fn run_cell(
    scenario: &Scenario,
    method: Method,
    classifier: ClassifierKind,
    k: usize,
    config: &ExperimentConfig,
) -> Result<CellResult> {
    let repeat_seeds: Vec<u64> = (0..config.repeats)
        .map(|r| config.seed.wrapping_add(r as u64).wrapping_mul(0x9E37_79B9))
        .collect();
    let run_one = |seed: u64| -> Result<f64> {
        let mut rng = SeededRng::new(seed);
        let shots = scenario.draw_shots(k, &mut rng)?;
        let pred = run_method(
            method,
            &scenario.source,
            &shots,
            scenario.target_test.features(),
            classifier,
            &config.budget,
            seed,
        )?;
        Ok(macro_f1(
            scenario.target_test.labels(),
            &pred,
            scenario.target_test.num_classes(),
        ))
    };
    // Each repeat is a pure function of its pre-derived seed, so the pool
    // cannot change any run's F1; errors propagate in repeat order.
    let threads = if config.parallel {
        repeat_seeds.len().max(1)
    } else {
        1
    };
    let runs = fsda_linalg::par::par_map(threads, &repeat_seeds, |_, &s| run_one(s))
        .into_iter()
        .collect::<Result<Vec<f64>>>()?;
    Ok(CellResult::from_runs(runs))
}

/// Runs the full grid for a scenario: every method × classifier × shots.
/// Model-specific methods contribute one column; Fine-tune runs on the MLP
/// only, exactly as in Table I.
///
/// # Errors
///
/// Propagates failures from any cell.
pub fn run_grid(
    scenario: &Scenario,
    methods: &[Method],
    classifiers: &[ClassifierKind],
    config: &ExperimentConfig,
) -> Result<Vec<GridEntry>> {
    let mut out = Vec::new();
    for &k in &config.shots {
        for &method in methods {
            if method.is_model_agnostic() {
                let kinds: Vec<ClassifierKind> = match method.fixed_classifier() {
                    Some(fixed) => vec![fixed],
                    None => classifiers.to_vec(),
                };
                for kind in kinds {
                    let result = run_cell(scenario, method, kind, k, config)?;
                    out.push(GridEntry {
                        method,
                        classifier: Some(kind),
                        shots: k,
                        result,
                    });
                }
            } else {
                // Model-specific: single column; classifier arg is unused.
                let result = run_cell(scenario, method, ClassifierKind::Mlp, k, config)?;
                out.push(GridEntry {
                    method,
                    classifier: None,
                    shots: k,
                    result,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_data::synth5gc::Synth5gc;

    fn small_scenario(seed: u64) -> Scenario {
        let b = Synth5gc::small().generate(seed).unwrap();
        Scenario {
            name: "5GC-small".into(),
            source: b.source_train,
            target_pool: b.target_pool,
            pool_groups: None,
            num_groups: 16,
            target_test: b.target_test,
        }
    }

    #[test]
    fn draw_shots_respects_k() {
        let s = small_scenario(1);
        let mut rng = SeededRng::new(2);
        let shots = s.draw_shots(3, &mut rng).unwrap();
        assert_eq!(shots.len(), 48);
        assert_eq!(shots.class_counts(), vec![3; 16]);
    }

    #[test]
    fn run_cell_produces_sane_f1() {
        let s = small_scenario(3);
        let cfg = ExperimentConfig::quick();
        let cell = run_cell(&s, Method::SrcOnly, ClassifierKind::RandomForest, 5, &cfg).unwrap();
        assert_eq!(cell.runs.len(), 1);
        assert!((0.0..=1.0).contains(&cell.mean_f1));
        assert!((0.0..=100.0).contains(&cell.percent()));
    }

    #[test]
    fn parallel_repeats_match_sequential() {
        let s = small_scenario(4);
        let mut cfg = ExperimentConfig::quick();
        cfg.repeats = 2;
        cfg.parallel = false;
        let seq = run_cell(&s, Method::TarOnly, ClassifierKind::RandomForest, 5, &cfg).unwrap();
        cfg.parallel = true;
        let par = run_cell(&s, Method::TarOnly, ClassifierKind::RandomForest, 5, &cfg).unwrap();
        assert_eq!(seq.runs, par.runs, "threading must not change results");
    }

    #[test]
    fn grid_row_shapes() {
        let s = small_scenario(5);
        let cfg = ExperimentConfig::quick();
        let grid = run_grid(
            &s,
            &[Method::SrcOnly, Method::ProtoNet],
            &[ClassifierKind::RandomForest, ClassifierKind::Xgb],
            &cfg,
        )
        .unwrap();
        // SrcOnly × 2 classifiers + ProtoNet × 1.
        assert_eq!(grid.len(), 3);
        assert!(grid.iter().any(|g| g.classifier.is_none()));
    }

    #[test]
    fn fine_tune_runs_mlp_only_in_grid() {
        let s = small_scenario(6);
        let cfg = ExperimentConfig::quick();
        let grid = run_grid(
            &s,
            &[Method::FineTune],
            &[ClassifierKind::RandomForest, ClassifierKind::Xgb],
            &cfg,
        )
        .unwrap();
        assert_eq!(grid.len(), 1);
        assert_eq!(grid[0].classifier, Some(ClassifierKind::Mlp));
    }
}
