//! The FS (feature separation) method: Section V-A of the paper.

use crate::{CoreError, Result};
use fsda_causal::fnode::{find_intervened_features, FnodeConfig};
use fsda_causal::warm::{find_intervened_features_warm, CiCache};
use fsda_data::normalize::{NormKind, Normalizer};
use fsda_data::Dataset;
use fsda_linalg::Matrix;

/// Configuration of the FS method.
#[derive(Debug, Clone, PartialEq)]
pub struct FsConfig {
    /// Significance level of the conditional-independence tests.
    pub alpha: f64,
    /// Maximum conditioning-set size in the F-node search.
    pub max_cond_size: usize,
    /// Cap on conditioning candidates per feature.
    pub max_candidates: usize,
    /// Run the F-node search's CI tests on a worker pool. The separation is
    /// bit-identical to the sequential path (see
    /// [`fsda_causal::fnode::FnodeConfig::parallel`]); only wall-clock
    /// changes.
    pub parallel: bool,
    /// Worker threads when `parallel` is set; `None` uses every available
    /// core.
    pub num_threads: Option<usize>,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            alpha: 0.01,
            max_cond_size: 1,
            max_candidates: 6,
            parallel: false,
            num_threads: None,
        }
    }
}

impl From<&FsConfig> for FnodeConfig {
    fn from(c: &FsConfig) -> Self {
        FnodeConfig {
            alpha: c.alpha,
            max_cond_size: c.max_cond_size,
            max_candidates: c.max_candidates,
            parallel: c.parallel,
            num_threads: c.num_threads,
        }
    }
}

/// Welch-z threshold of the marginal drift screen that runs after the
/// F-node search (see [`marginal_screen`]). At five shots per class the
/// false-positive probability per stable feature is below `1e-6`, while
/// drift propagated through one feature→feature edge at the strengths
/// the scenario DSL emits lands well above the threshold.
const MARGINAL_SCREEN_Z: f64 = 5.0;

/// Escalates conditionally-invariant features whose *marginal*
/// distribution still shifted into the variant set.
///
/// The F-node search answers a causal question — did this feature's
/// mechanism change? — but serving asks an operational one: the frozen
/// source classifier reads raw feature values, so a feature whose
/// mechanism is intact but whose causal parents drifted (drift
/// propagating through feature→feature edges) still poisons prediction.
/// Those features are exactly what the reconstructor exists to rebuild,
/// so any invariant column whose normalized Welch z against the target
/// shots exceeds [`MARGINAL_SCREEN_Z`] is moved to the variant side.
/// Each escalation bumps the `causal.fnode.marginal_escalated` counter.
fn marginal_screen(
    src_n: &Matrix,
    tgt_n: &Matrix,
    variant: &mut Vec<usize>,
    invariant: &mut Vec<usize>,
) {
    let moments = |m: &Matrix, c: usize| -> (f64, f64) {
        let n = m.rows() as f64;
        let mean = (0..m.rows()).map(|r| m.get(r, c)).sum::<f64>() / n;
        let var = (0..m.rows())
            .map(|r| (m.get(r, c) - mean).powi(2))
            .sum::<f64>()
            / n;
        (mean, var)
    };
    let (n_s, n_t) = (src_n.rows() as f64, tgt_n.rows() as f64);
    let mut escalated = 0u64;
    invariant.retain(|&c| {
        let (m_s, v_s) = moments(src_n, c);
        let (m_t, v_t) = moments(tgt_n, c);
        let z = (m_s - m_t).abs() / (v_s / n_s + v_t / n_t).sqrt().max(1e-12);
        if z > MARGINAL_SCREEN_Z {
            variant.push(c);
            escalated += 1;
            false
        } else {
            true
        }
    });
    if escalated > 0 {
        variant.sort_unstable();
        fsda_telemetry::counter("causal.fnode.marginal_escalated", escalated);
    }
}

/// Shape of a fitted partition. The degenerate modes are legitimate
/// outcomes (no detectable drift, or drift touching everything) but force
/// the FS+GAN adapter into pass-through serving, so they are surfaced as a
/// diagnostic instead of being silently absorbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeparationMode {
    /// Both variant and invariant features exist: the full FS+GAN pipeline
    /// applies.
    Mixed,
    /// Every feature is invariant: no drift was detected, nothing to
    /// reconstruct.
    AllInvariant,
    /// Every feature is variant: the reconstructor has nothing to condition
    /// on.
    AllVariant,
}

impl std::fmt::Display for SeparationMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeparationMode::Mixed => write!(f, "mixed"),
            SeparationMode::AllInvariant => write!(f, "all-invariant"),
            SeparationMode::AllVariant => write!(f, "all-variant"),
        }
    }
}

/// The result of feature separation: the variant/invariant partition, the
/// normalizer fitted on the source domain, the configuration that produced
/// it (provenance), and diagnostics.
#[derive(Debug, Clone)]
pub struct FeatureSeparation {
    variant: Vec<usize>,
    invariant: Vec<usize>,
    normalizer: Normalizer,
    tests_run: usize,
    num_features: usize,
    config: FsConfig,
}

impl FeatureSeparation {
    /// Runs feature separation: normalizes both domains with a source-fit
    /// `[-1, 1]` normalizer (the paper's preprocessing for its own
    /// methods), identifies the intervened features with the F-node
    /// search, then escalates marginally drifted survivors with
    /// a marginal drift screen so propagated drift cannot hide in the
    /// invariant block the classifier is served.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] when the domains have different
    /// feature counts, and propagates causal-discovery failures.
    pub fn fit(source: &Dataset, target_shots: &Dataset, config: &FsConfig) -> Result<Self> {
        if source.num_features() != target_shots.num_features() {
            return Err(CoreError::InvalidInput(format!(
                "source has {} features, target {}",
                source.num_features(),
                target_shots.num_features()
            )));
        }
        let normalizer = Normalizer::fit(source.features(), NormKind::MinMaxSymmetric);
        let src_n = normalizer.transform(source.features());
        let tgt_n = normalizer.transform(target_shots.features());
        let mut result = find_intervened_features(&src_n, &tgt_n, &config.into())?;
        marginal_screen(&src_n, &tgt_n, &mut result.variant, &mut result.invariant);
        Ok(FeatureSeparation {
            variant: result.variant,
            invariant: result.invariant,
            normalizer,
            tests_run: result.tests_run,
            num_features: source.num_features(),
            config: config.clone(),
        })
    }

    /// Rebuilds a separation from previously extracted parts (e.g. decoded
    /// from a persisted artifact).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] unless `variant` and `invariant`
    /// form an exact partition of the normalizer's feature columns — the
    /// invariant every separation produced by [`FeatureSeparation::fit`]
    /// satisfies.
    pub fn from_parts(
        variant: Vec<usize>,
        invariant: Vec<usize>,
        normalizer: Normalizer,
        tests_run: usize,
        config: FsConfig,
    ) -> Result<Self> {
        let num_features = normalizer.num_features();
        if variant.len() + invariant.len() != num_features {
            return Err(CoreError::InvalidInput(format!(
                "partition covers {} columns of {num_features}",
                variant.len() + invariant.len()
            )));
        }
        let mut seen = vec![false; num_features];
        for &c in variant.iter().chain(invariant.iter()) {
            if c >= num_features {
                return Err(CoreError::InvalidInput(format!(
                    "feature index {c} out of range for {num_features} features"
                )));
            }
            if seen[c] {
                return Err(CoreError::InvalidInput(format!(
                    "feature index {c} appears twice in the partition"
                )));
            }
            seen[c] = true;
        }
        Ok(FeatureSeparation {
            variant,
            invariant,
            normalizer,
            tests_run,
            num_features,
            config,
        })
    }

    /// The configuration this separation was fitted with (provenance).
    pub fn config(&self) -> &FsConfig {
        &self.config
    }

    /// Domain-variant feature columns (the identified intervention targets).
    pub fn variant(&self) -> &[usize] {
        &self.variant
    }

    /// Domain-invariant feature columns.
    pub fn invariant(&self) -> &[usize] {
        &self.invariant
    }

    /// The `[-1, 1]` normalizer fitted on the source domain.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// Number of CI tests run (for the running-time analysis of §VI-D).
    pub fn tests_run(&self) -> usize {
        self.tests_run
    }

    /// Whether the partition is mixed or degenerate (see
    /// [`SeparationMode`]).
    pub fn mode(&self) -> SeparationMode {
        if self.variant.is_empty() {
            SeparationMode::AllInvariant
        } else if self.invariant.is_empty() {
            SeparationMode::AllVariant
        } else {
            SeparationMode::Mixed
        }
    }

    /// Total feature count.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Splits a (raw, unnormalized) feature matrix into normalized
    /// `(invariant, variant)` blocks.
    ///
    /// # Panics
    ///
    /// Panics if the column count disagrees with the fitted data.
    pub fn split_normalized(&self, features: &Matrix) -> (Matrix, Matrix) {
        let n = self.normalizer.transform(features);
        (n.select_cols(&self.invariant), n.select_cols(&self.variant))
    }

    /// Reassembles a full normalized feature matrix from invariant and
    /// variant blocks, restoring the original column order.
    ///
    /// # Panics
    ///
    /// Panics if block shapes are inconsistent with the separation.
    pub fn reassemble(&self, inv_block: &Matrix, var_block: &Matrix) -> Matrix {
        assert_eq!(
            inv_block.cols(),
            self.invariant.len(),
            "invariant block width"
        );
        assert_eq!(var_block.cols(), self.variant.len(), "variant block width");
        assert_eq!(inv_block.rows(), var_block.rows(), "row mismatch");
        let mut out = Matrix::zeros(inv_block.rows(), self.num_features);
        for r in 0..out.rows() {
            for (k, &c) in self.invariant.iter().enumerate() {
                out.set(r, c, inv_block.get(r, k));
            }
            for (k, &c) in self.variant.iter().enumerate() {
                out.set(r, c, var_block.get(r, k));
            }
        }
        out
    }

    /// Precision/recall of the separation against a known ground truth
    /// (only available with synthetic data). Returns `(precision, recall)`.
    pub fn score_against(&self, ground_truth_variant: &[usize]) -> (f64, f64) {
        let truth: std::collections::BTreeSet<usize> =
            ground_truth_variant.iter().copied().collect();
        let hits = self.variant.iter().filter(|c| truth.contains(c)).count() as f64;
        let precision = if self.variant.is_empty() {
            1.0
        } else {
            hits / self.variant.len() as f64
        };
        let recall = if truth.is_empty() {
            1.0
        } else {
            hits / truth.len() as f64
        };
        (precision, recall)
    }
}

/// Which search path a warm-capable separation actually took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchPath {
    /// Cached sufficient statistics + previous-skeleton priority.
    Warm,
    /// Full recomputation over the stacked source+target data.
    Cold,
}

impl std::fmt::Display for SearchPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchPath::Warm => write!(f, "warm"),
            SearchPath::Cold => write!(f, "cold"),
        }
    }
}

/// Reusable source-side state for repeated separations against a fixed
/// source domain: the fitted normalizer, the normalized source matrix (the
/// cold-fallback input), and the cached CI-test sufficient statistics
/// ([`fsda_causal::warm::CiCache`]). Build once per tenant, re-separate per
/// drift event — [`FeatureSeparation::fit_warm`] then costs
/// `O(n_window · d²)` instead of `O(n_src · d²)`.
#[derive(Debug, Clone)]
pub struct SeparationCache {
    normalizer: Normalizer,
    src_n: Matrix,
    ci: CiCache,
    config: FsConfig,
}

impl SeparationCache {
    /// Fits the normalizer on the source domain and folds the source rows
    /// into the CI cache.
    ///
    /// # Errors
    ///
    /// Propagates [`fsda_causal::warm::CiCache::new`] failures (tiny or
    /// corrupt source data).
    pub fn new(source: &Dataset, config: &FsConfig) -> Result<Self> {
        let normalizer = Normalizer::fit(source.features(), NormKind::MinMaxSymmetric);
        let src_n = normalizer.transform(source.features());
        let ci = CiCache::new(&src_n)?;
        Ok(SeparationCache {
            normalizer,
            src_n,
            ci,
            config: config.clone(),
        })
    }

    /// Feature count the cache was built over.
    pub fn num_features(&self) -> usize {
        self.ci.num_features()
    }

    /// Source rows folded into the cache.
    pub fn source_rows(&self) -> usize {
        self.ci.source_rows()
    }

    /// The FS configuration the cache separates with.
    pub fn config(&self) -> &FsConfig {
        &self.config
    }
}

impl FeatureSeparation {
    /// Re-runs feature separation against a fresh target window using the
    /// cached source-side state, warm-starting the F-node search from the
    /// previous variant set when one is given. Falls back to the cold
    /// search — same `O(n_src · d²)` contract as
    /// [`FeatureSeparation::fit`] — when the previous skeleton does not
    /// match the cached feature space (e.g. a stale controller handed over
    /// indices from a different deployment).
    ///
    /// Returns the separation together with the [`SearchPath`] actually
    /// taken, so callers can report warm-hit rates. Note the warm path is
    /// deterministic but not bit-identical to cold (see
    /// [`fsda_causal::warm`] for the floating-point caveat); hard input
    /// failures (corrupt window, width mismatch) are *not* masked by the
    /// fallback — they error on both paths.
    ///
    /// A previous variant set is accepted only when it is a well-formed
    /// subset of the cached feature space: every index in range, no
    /// duplicates. Anything else is a stale skeleton — each rejection
    /// bumps the `causal.fnode.warm_rejected` telemetry counter and the
    /// search runs cold.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidInput`] on a feature-count mismatch
    /// between the cache and the window, and propagates causal failures
    /// (non-finite cells, empty windows).
    pub fn fit_warm(
        cache: &SeparationCache,
        target_shots: &Dataset,
        prev_variant: Option<&[usize]>,
    ) -> Result<(Self, SearchPath)> {
        if target_shots.num_features() != cache.num_features() {
            return Err(CoreError::InvalidInput(format!(
                "cache has {} features, target {}",
                cache.num_features(),
                target_shots.num_features()
            )));
        }
        let tgt_n = cache.normalizer.transform(target_shots.features());
        let fnode_cfg: FnodeConfig = (&cache.config).into();
        let warm_applicable = match prev_variant {
            Some(prev) => {
                let mut seen = vec![false; cache.num_features()];
                let fresh = prev
                    .iter()
                    .all(|&x| x < cache.num_features() && !std::mem::replace(&mut seen[x], true));
                if !fresh {
                    fsda_telemetry::counter("causal.fnode.warm_rejected", 1);
                }
                fresh
            }
            None => false,
        };
        let (mut result, path) = if warm_applicable {
            let prev = prev_variant.unwrap_or(&[]);
            (
                find_intervened_features_warm(&cache.ci, &tgt_n, prev, &fnode_cfg)?,
                SearchPath::Warm,
            )
        } else {
            (
                find_intervened_features(&cache.src_n, &tgt_n, &fnode_cfg)?,
                SearchPath::Cold,
            )
        };
        marginal_screen(
            &cache.src_n,
            &tgt_n,
            &mut result.variant,
            &mut result.invariant,
        );
        Ok((
            FeatureSeparation {
                variant: result.variant,
                invariant: result.invariant,
                normalizer: cache.normalizer.clone(),
                tests_run: result.tests_run,
                num_features: cache.num_features(),
                config: cache.config.clone(),
            },
            path,
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_data::fewshot::few_shot_subset;
    use fsda_data::synth5gc::Synth5gc;
    use fsda_linalg::SeededRng;

    fn separation(shots: usize, seed: u64) -> (FeatureSeparation, Vec<usize>) {
        let bundle = Synth5gc::small().generate(seed).unwrap();
        let mut rng = SeededRng::new(seed ^ 0xFF);
        let target = few_shot_subset(&bundle.target_pool, shots, &mut rng).unwrap();
        let fs =
            FeatureSeparation::fit(&bundle.source_train, &target, &FsConfig::default()).unwrap();
        (fs, bundle.ground_truth_variant)
    }

    #[test]
    fn detects_strong_interventions() {
        let (fs, truth) = separation(10, 1);
        let (precision, recall) = fs.score_against(&truth);
        assert!(precision > 0.7, "precision {precision}");
        assert!(
            recall > 0.5,
            "recall {recall} (strong + medium tiers detectable at 10 shots)"
        );
        assert!(fs.tests_run() > 0);
    }

    #[test]
    fn partition_is_complete() {
        let (fs, _) = separation(5, 2);
        assert_eq!(fs.variant().len() + fs.invariant().len(), fs.num_features());
        let mut all: Vec<usize> = fs.variant().iter().chain(fs.invariant()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), fs.num_features());
    }

    #[test]
    fn more_shots_detect_at_least_as_many() {
        let (fs1, _) = separation(1, 3);
        let (fs10, _) = separation(10, 3);
        assert!(
            fs10.variant().len() + 2 >= fs1.variant().len(),
            "10-shot should not detect materially fewer: {} vs {}",
            fs10.variant().len(),
            fs1.variant().len()
        );
    }

    #[test]
    fn split_and_reassemble_round_trip() {
        let (fs, _) = separation(5, 4);
        let bundle = Synth5gc::small().generate(4).unwrap();
        let x = bundle.target_test.features();
        let (inv, var) = fs.split_normalized(x);
        let back = fs.reassemble(&inv, &var);
        let direct = fs.normalizer().transform(x);
        assert!(back.try_sub(&direct).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn mismatched_features_error() {
        let bundle = Synth5gc::small().generate(5).unwrap();
        let narrow = bundle.target_pool.select_features(&[0, 1, 2]);
        assert!(matches!(
            FeatureSeparation::fit(&bundle.source_train, &narrow, &FsConfig::default()),
            Err(CoreError::InvalidInput(_))
        ));
    }

    #[test]
    fn from_parts_round_trips_a_fitted_separation() {
        let (fs, _) = separation(5, 7);
        let rebuilt = FeatureSeparation::from_parts(
            fs.variant().to_vec(),
            fs.invariant().to_vec(),
            fs.normalizer().clone(),
            fs.tests_run(),
            fs.config().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt.variant(), fs.variant());
        assert_eq!(rebuilt.invariant(), fs.invariant());
        assert_eq!(rebuilt.num_features(), fs.num_features());
        assert_eq!(rebuilt.config(), fs.config());
    }

    #[test]
    fn from_parts_rejects_broken_partitions() {
        let (fs, _) = separation(5, 8);
        let norm = fs.normalizer().clone();
        let d = fs.num_features();
        // Incomplete cover.
        assert!(FeatureSeparation::from_parts(
            vec![0],
            vec![1],
            norm.clone(),
            0,
            FsConfig::default()
        )
        .is_err());
        // Duplicate column.
        let mut inv: Vec<usize> = (0..d).collect();
        inv[0] = 1;
        assert!(
            FeatureSeparation::from_parts(vec![], inv, norm.clone(), 0, FsConfig::default())
                .is_err()
        );
        // Out-of-range column.
        let mut inv: Vec<usize> = (0..d).collect();
        inv[0] = d + 5;
        assert!(FeatureSeparation::from_parts(vec![], inv, norm, 0, FsConfig::default()).is_err());
    }

    #[test]
    fn score_against_handles_edge_cases() {
        let (fs, _) = separation(5, 6);
        let (p, r) = fs.score_against(&[]);
        assert_eq!(r, 1.0);
        assert!(p <= 1.0);
    }

    #[test]
    fn fit_warm_matches_cold_partition() {
        let bundle = Synth5gc::small().generate(21).unwrap();
        let mut rng = SeededRng::new(22);
        let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).unwrap();
        let cfg = FsConfig::default();
        let cold = FeatureSeparation::fit(&bundle.source_train, &shots, &cfg).unwrap();
        let cache = SeparationCache::new(&bundle.source_train, &cfg).unwrap();
        assert_eq!(cache.num_features(), cold.num_features());
        assert_eq!(cache.source_rows(), bundle.source_train.len());

        // Warm from the cold skeleton: the steady-state re-detection. The
        // warm path is deterministic but not bit-identical to cold, so a
        // borderline feature may flip — the partitions must still agree on
        // all but a sliver of the feature space.
        let (warm, path) =
            FeatureSeparation::fit_warm(&cache, &shots, Some(cold.variant())).unwrap();
        assert_eq!(path, SearchPath::Warm);
        let warm_set: std::collections::BTreeSet<usize> = warm.variant().iter().copied().collect();
        let cold_set: std::collections::BTreeSet<usize> = cold.variant().iter().copied().collect();
        let flipped = warm_set.symmetric_difference(&cold_set).count();
        assert!(
            flipped <= 2,
            "warm and cold partitions diverged on {flipped} features: {warm_set:?} vs {cold_set:?}"
        );
        assert_eq!(warm.num_features(), cold.num_features());
        assert_eq!(
            warm.variant().len() + warm.invariant().len(),
            warm.num_features()
        );

        // No previous skeleton: the cache still avoids re-normalizing but
        // runs the cold search.
        let (cold2, path2) = FeatureSeparation::fit_warm(&cache, &shots, None).unwrap();
        assert_eq!(path2, SearchPath::Cold);
        assert_eq!(cold2.variant(), cold.variant());
    }

    #[test]
    fn fit_warm_falls_back_to_cold_on_stale_skeleton() {
        let recorder = std::sync::Arc::new(fsda_telemetry::InMemoryRecorder::new());
        fsda_telemetry::set_recorder(recorder.clone());
        let bundle = Synth5gc::small().generate(23).unwrap();
        let mut rng = SeededRng::new(24);
        let shots = few_shot_subset(&bundle.target_pool, 8, &mut rng).unwrap();
        let cache = SeparationCache::new(&bundle.source_train, &FsConfig::default()).unwrap();
        // A skeleton from some other feature space: indices out of range.
        let stale = vec![0, cache.num_features() + 3];
        let (fs, path) = FeatureSeparation::fit_warm(&cache, &shots, Some(&stale)).unwrap();
        assert_eq!(
            path,
            SearchPath::Cold,
            "mismatched skeleton must cold-start"
        );
        assert_eq!(fs.variant().len() + fs.invariant().len(), fs.num_features());
        // A duplicated index is also stale: it cannot have come from a
        // partition of this feature space.
        let dup = vec![1, 1];
        let (_, path) = FeatureSeparation::fit_warm(&cache, &shots, Some(&dup)).unwrap();
        assert_eq!(path, SearchPath::Cold, "duplicate skeleton must cold-start");
        // Both rejections were counted; a well-formed warm start and the
        // explicit cold path (`None`) are not.
        let (_, path) = FeatureSeparation::fit_warm(&cache, &shots, Some(&[0, 1])).unwrap();
        assert_eq!(path, SearchPath::Warm);
        FeatureSeparation::fit_warm(&cache, &shots, None).unwrap();
        fsda_telemetry::clear_recorder();
        assert_eq!(
            recorder
                .snapshot_now()
                .counter("causal.fnode.warm_rejected"),
            2
        );
    }

    #[test]
    fn fit_warm_rejects_mismatched_windows() {
        let bundle = Synth5gc::small().generate(25).unwrap();
        let cache = SeparationCache::new(&bundle.source_train, &FsConfig::default()).unwrap();
        let narrow = bundle.target_pool.select_features(&[0, 1, 2]);
        assert!(matches!(
            FeatureSeparation::fit_warm(&cache, &narrow, None),
            Err(CoreError::InvalidInput(_))
        ));
    }
}
