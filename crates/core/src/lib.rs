//! The paper's few-shot domain-adaptation framework, its eleven competing
//! baselines, and the experiment harness that regenerates every table.
//!
//! # The two-step method
//!
//! 1. **[`fs`] — causal feature separation**: treat the source data as
//!    observational and the few target shots as interventional, add an
//!    F-node (domain indicator), and identify the features whose mechanisms
//!    the drift changed ([`fs::FeatureSeparation`]).
//! 2. **[`adapter`] — GAN reconstruction**: train a conditional GAN on
//!    source data only to model `P(X_var | X_inv)`; at inference replace a
//!    target sample's variant features with generated source-like values
//!    and feed the result to a classifier trained purely on source data
//!    ([`adapter::FsGanAdapter`]).
//!
//! The network-management classifier is **never retrained** — when the
//! domain drifts further, only FS and the GAN are re-run (§VI-F, Table III).
//!
//! # Baselines
//!
//! [`baselines`] implements the full comparison suite of Table I: SrcOnly,
//! TarOnly, S&T, Fine-Tune, CORAL, DANN, SCL, MatchNet, ProtoNet, CMT, and
//! ICD, all behind the [`method::Method`] dispatcher.
//!
//! # Experiments
//!
//! [`experiment`] runs (method × classifier × shots × repeats) grids and
//! [`report`] formats them as the paper's tables.
//!
//! # Example
//!
//! ```no_run
//! use fsda_core::adapter::{AdapterConfig, FsGanAdapter};
//! use fsda_data::synth5gc::Synth5gc;
//! use fsda_data::fewshot::few_shot_subset;
//! use fsda_linalg::SeededRng;
//! use fsda_models::metrics::macro_f1;
//!
//! let bundle = Synth5gc::small().generate(1)?;
//! let mut rng = SeededRng::new(2);
//! let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng)?;
//! let adapter = FsGanAdapter::fit(&bundle.source_train, &shots, &AdapterConfig::quick(), 3)?;
//! let pred = adapter.predict(bundle.target_test.features());
//! let f1 = macro_f1(bundle.target_test.labels(), &pred, 16);
//! println!("FS+GAN F1 = {:.1}", 100.0 * f1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod adapter;
pub mod baselines;
pub mod drift;
pub mod experiment;
pub mod fs;
pub mod method;
pub mod persist;
pub mod pipeline;
pub mod report;
pub mod retry;
pub mod serve;
pub mod sweep;

pub use fsda_telemetry as telemetry;

pub use adapter::{AdapterConfig, DegradedMode, FsAdapter, FsGanAdapter};
pub use drift::DriftError;
pub use fs::{FeatureSeparation, SearchPath, SeparationCache};
pub use fsda_models::InferPrecision;
pub use method::Method;
pub use pipeline::{BaselineMitigator, DriftMitigator};
pub use retry::RetryPolicy;
pub use serve::{FitError, GuardConfig, InputPolicy, ServeError};

/// Errors raised by the DA framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Invalid inputs (shape mismatches, empty data, bad configuration).
    InvalidInput(String),
    /// Causal discovery failed.
    Causal(String),
    /// A dataset operation failed.
    Data(String),
    /// A classifier failed to train.
    Model(String),
    /// A reconstructor failed to train.
    Reconstruction(String),
    /// An artifact failed to encode, decode, or hit the filesystem.
    Persist(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            CoreError::Causal(m) => write!(f, "causal discovery failure: {m}"),
            CoreError::Data(m) => write!(f, "data failure: {m}"),
            CoreError::Model(m) => write!(f, "model failure: {m}"),
            CoreError::Reconstruction(m) => write!(f, "reconstruction failure: {m}"),
            CoreError::Persist(m) => write!(f, "persistence failure: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<fsda_causal::CausalError> for CoreError {
    fn from(e: fsda_causal::CausalError) -> Self {
        CoreError::Causal(e.to_string())
    }
}

impl From<fsda_data::DataError> for CoreError {
    fn from(e: fsda_data::DataError) -> Self {
        CoreError::Data(e.to_string())
    }
}

impl From<fsda_models::ModelError> for CoreError {
    fn from(e: fsda_models::ModelError) -> Self {
        CoreError::Model(e.to_string())
    }
}

impl From<fsda_gan::GanError> for CoreError {
    fn from(e: fsda_gan::GanError) -> Self {
        CoreError::Reconstruction(e.to_string())
    }
}

impl From<persist::PersistError> for CoreError {
    fn from(e: persist::PersistError) -> Self {
        CoreError::Persist(e.to_string())
    }
}

impl From<fsda_linalg::LinalgError> for CoreError {
    fn from(e: fsda_linalg::LinalgError) -> Self {
        CoreError::InvalidInput(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        assert!(!CoreError::InvalidInput("x".into()).to_string().is_empty());
        let e: CoreError = fsda_causal::CausalError::InsufficientData("n".into()).into();
        assert!(matches!(e, CoreError::Causal(_)));
        let e: CoreError = fsda_models::ModelError::NotFitted.into();
        assert!(matches!(e, CoreError::Model(_)));
        let e: CoreError = fsda_gan::GanError::NotFitted.into();
        assert!(matches!(e, CoreError::Reconstruction(_)));
    }
}
