//! The [`Method`] dispatcher: one enum covering the paper's approaches and
//! every compared baseline, so the experiment runner and benches can
//! iterate over Table I/II rows uniformly.

use crate::adapter::{AdapterConfig, Budget, ReconKind};
use crate::fs::FsConfig;
use crate::Result;
use fsda_data::Dataset;
use fsda_linalg::Matrix;
use fsda_models::ClassifierKind;

/// Every DA method evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// FS + GAN reconstruction (ours; Table I & II).
    FsGan,
    /// FS + GAN without label-conditioned discriminator (Table II).
    FsNoCond,
    /// FS + VAE reconstruction (Table II).
    FsVae,
    /// FS + vanilla autoencoder (Table II).
    FsVanillaAe,
    /// FS only: classifier on invariant source features (ours).
    Fs,
    /// Causal mechanism transfer.
    Cmt,
    /// Invariant conditional distributions.
    Icd,
    /// Source-only training.
    SrcOnly,
    /// Target-shots-only training.
    TarOnly,
    /// Source + up-weighted target shots.
    SourceAndTarget,
    /// Source pre-training + full fine-tuning on shots (MLP only).
    FineTune,
    /// Correlation alignment.
    Coral,
    /// Domain-adversarial neural network (model-specific).
    Dann,
    /// Supervised-contrastive + adversarial learning (model-specific).
    Scl,
    /// Matching networks (model-specific).
    MatchNet,
    /// Prototypical networks (model-specific).
    ProtoNet,
    /// Few-shot adversarial domain adaptation: a domain-class
    /// discriminator over embedding pairs, trained in alternating
    /// freeze phases (Motiian et al., model-specific).
    Fada,
    /// Few-shot metric adversarial adaptation: adversarial domain
    /// confusion plus a label self-correcting class-conditional MMD
    /// (model-specific).
    Fmaa,
}

impl Method {
    /// Every registered method, in registry order. New methods must be
    /// appended here; the registry tests iterate this array so a missing
    /// entry fails loudly.
    pub const ALL: [Method; 18] = [
        Method::FsGan,
        Method::FsNoCond,
        Method::FsVae,
        Method::FsVanillaAe,
        Method::Fs,
        Method::Cmt,
        Method::Icd,
        Method::SrcOnly,
        Method::TarOnly,
        Method::SourceAndTarget,
        Method::FineTune,
        Method::Coral,
        Method::Dann,
        Method::Scl,
        Method::MatchNet,
        Method::ProtoNet,
        Method::Fada,
        Method::Fmaa,
    ];

    /// The rows of Table I, in the paper's order.
    pub const TABLE1: [Method; 13] = [
        Method::FsGan,
        Method::Fs,
        Method::Cmt,
        Method::Icd,
        Method::SrcOnly,
        Method::TarOnly,
        Method::SourceAndTarget,
        Method::FineTune,
        Method::Coral,
        Method::Dann,
        Method::Scl,
        Method::MatchNet,
        Method::ProtoNet,
    ];

    /// The rows of Table II (reconstruction-strategy ablation).
    pub const TABLE2: [Method; 4] = [
        Method::FsGan,
        Method::FsNoCond,
        Method::FsVae,
        Method::FsVanillaAe,
    ];

    /// Table row label, matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Method::FsGan => "FS+GAN (ours)",
            Method::FsNoCond => "FS+NoCond",
            Method::FsVae => "FS+VAE",
            Method::FsVanillaAe => "FS+VanillaAE",
            Method::Fs => "FS (ours)",
            Method::Cmt => "CMT",
            Method::Icd => "ICD",
            Method::SrcOnly => "SrcOnly",
            Method::TarOnly => "TarOnly",
            Method::SourceAndTarget => "S&T",
            Method::FineTune => "Fine-tune",
            Method::Coral => "CORAL",
            Method::Dann => "DANN",
            Method::Scl => "SCL",
            Method::MatchNet => "MatchNet",
            Method::ProtoNet => "ProtoNet",
            Method::Fada => "FADA",
            Method::Fmaa => "FMAA",
        }
    }

    /// Stable lowercase identifier used in telemetry metric names
    /// (e.g. `pipeline.fit.fs_gan`). Unlike [`Method::label`] it contains
    /// no spaces or punctuation, so it embeds cleanly in dot-separated
    /// metric paths and JSON keys.
    pub fn slug(self) -> &'static str {
        match self {
            Method::FsGan => "fs_gan",
            Method::FsNoCond => "fs_nocond",
            Method::FsVae => "fs_vae",
            Method::FsVanillaAe => "fs_vanilla_ae",
            Method::Fs => "fs",
            Method::Cmt => "cmt",
            Method::Icd => "icd",
            Method::SrcOnly => "src_only",
            Method::TarOnly => "tar_only",
            Method::SourceAndTarget => "src_and_tgt",
            Method::FineTune => "fine_tune",
            Method::Coral => "coral",
            Method::Dann => "dann",
            Method::Scl => "scl",
            Method::MatchNet => "match_net",
            Method::ProtoNet => "proto_net",
            Method::Fada => "fada",
            Method::Fmaa => "fmaa",
        }
    }

    /// Whether the method accepts an arbitrary classifier (Table I's four
    /// model columns) or brings its own model.
    pub fn is_model_agnostic(self) -> bool {
        !matches!(
            self,
            Method::Dann
                | Method::Scl
                | Method::MatchNet
                | Method::ProtoNet
                | Method::Fada
                | Method::Fmaa
        )
    }

    /// Whether the method only applies to one specific classifier column
    /// (the paper runs Fine-tune with the MLP only).
    ///
    /// The match is exhaustive on purpose: a new method must state its
    /// classifier policy here or the build breaks.
    pub fn fixed_classifier(self) -> Option<ClassifierKind> {
        match self {
            Method::FineTune => Some(ClassifierKind::Mlp),
            Method::FsGan
            | Method::FsNoCond
            | Method::FsVae
            | Method::FsVanillaAe
            | Method::Fs
            | Method::Cmt
            | Method::Icd
            | Method::SrcOnly
            | Method::TarOnly
            | Method::SourceAndTarget
            | Method::Coral
            | Method::Dann
            | Method::Scl
            | Method::MatchNet
            | Method::ProtoNet
            | Method::Fada
            | Method::Fmaa => None,
        }
    }

    /// Whether this method trains the network-management model exclusively
    /// on source-domain data (the paper's no-retraining property).
    pub fn trains_on_source_only(self) -> bool {
        matches!(
            self,
            Method::FsGan | Method::FsNoCond | Method::FsVae | Method::FsVanillaAe | Method::Fs
        )
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs one method end-to-end and returns predictions on the test features.
///
/// Every method — the FS family and all eleven baselines — goes through
/// the registry ([`Method::build`]) and the
/// [`DriftMitigator`](crate::pipeline::DriftMitigator) interface; there is
/// no per-method dispatch here.
///
/// # Errors
///
/// Propagates failures from the underlying method.
pub fn run_method(
    method: Method,
    source: &Dataset,
    target_shots: &Dataset,
    test_features: &Matrix,
    classifier: ClassifierKind,
    budget: &Budget,
    seed: u64,
) -> Result<Vec<usize>> {
    let config = AdapterConfig {
        fs: FsConfig::default(),
        recon: ReconKind::Gan,
        classifier,
        budget: budget.clone(),
        watchdog: fsda_gan::WatchdogConfig::default(),
    };
    let mut mitigator = method.build(&config, seed);
    mitigator.fit(source, target_shots)?;
    Ok(mitigator.predict(test_features))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_table_row() {
        for m in Method::TABLE1.iter().chain(&Method::TABLE2) {
            assert!(Method::ALL.contains(m), "{m:?} missing from Method::ALL");
        }
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let mut seen = std::collections::BTreeSet::new();
        for m in Method::ALL {
            assert!(!m.label().is_empty());
            seen.insert(m.label());
        }
        assert_eq!(seen.len(), Method::ALL.len());
    }

    #[test]
    fn slugs_are_unique_and_metric_safe() {
        let mut seen = std::collections::BTreeSet::new();
        for m in Method::ALL {
            let slug = m.slug();
            assert!(!slug.is_empty());
            assert!(
                slug.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "slug {slug:?} not metric-safe"
            );
            seen.insert(slug);
        }
        assert_eq!(seen.len(), Method::ALL.len());
    }

    #[test]
    fn agnosticism_flags() {
        assert!(Method::FsGan.is_model_agnostic());
        assert!(Method::Cmt.is_model_agnostic());
        assert!(!Method::Dann.is_model_agnostic());
        assert!(!Method::MatchNet.is_model_agnostic());
        assert!(!Method::Fada.is_model_agnostic());
        assert!(!Method::Fmaa.is_model_agnostic());
        assert_eq!(
            Method::FineTune.fixed_classifier(),
            Some(ClassifierKind::Mlp)
        );
        assert_eq!(Method::FsGan.fixed_classifier(), None);
    }

    #[test]
    fn source_only_training_property() {
        assert!(Method::FsGan.trains_on_source_only());
        assert!(Method::Fs.trains_on_source_only());
        assert!(!Method::Cmt.trains_on_source_only());
        assert!(!Method::Coral.trains_on_source_only());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(format!("{}", Method::SourceAndTarget), "S&T");
    }
}
