//! Versioned binary persistence for trained pipelines.
//!
//! The paper's central operational promise is *train once, serve forever*:
//! when the domain drifts, only FS and the GAN are re-run — the
//! network-management classifier is never retrained (§VI-F). That promise
//! only matters if a trained pipeline can actually outlive the process that
//! trained it, so this module defines a self-describing binary artifact
//! format and hand-rolled little-endian codecs for every component of the
//! pipeline: the FS partition (with its [`crate::fs::FsConfig`]
//! provenance), the source-fitted normalizer, the reconstructor
//! (GAN/VAE/AE weights including batch-norm running statistics), and the
//! classifier (TNet/MLP/RF/XGB).
//!
//! # Container layout (format version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"FSDA"
//! 4       4     format version (u32 LE)
//! 8       4     section count N (u32 LE)
//! 12      20*N  section table: tag [u8;4], offset u64 LE, length u64 LE
//! 12+20N  ...   section payloads (offsets are relative to this point)
//! end-4   4     CRC-32 (IEEE) of every preceding byte (u32 LE)
//! ```
//!
//! Sections are looked up by tag, so readers skip tags they do not know —
//! a future writer can append new sections without breaking version-1
//! readers, while incompatible layout changes bump [`FORMAT_VERSION`].
//! All integers are little-endian; `f64` values are stored as their IEEE-754
//! bit patterns, so encode → decode → encode is byte-identical and decoded
//! models predict bit-identically.
//!
//! Everything here is `std`-only: no serde, no external formats, matching
//! the workspace's offline-buildable constraint.

#![warn(missing_docs)]

use crate::fs::{FeatureSeparation, FsConfig};
use fsda_data::normalize::{NormKind, Normalizer};
use fsda_gan::autoencoder::AeConfig;
use fsda_gan::cond_gan::CondGanConfig;
use fsda_gan::vae::VaeConfig;
use fsda_gan::ReconSnapshot;
use fsda_linalg::Matrix;
use fsda_models::forest::ForestConfig;
use fsda_models::gbdt::GbdtConfig;
use fsda_models::mlp::MlpConfig;
use fsda_models::tnet::TnetConfig;
use fsda_models::tree::{FlatNode, FlatRegNode};
use fsda_models::ClassifierSnapshot;
use fsda_nn::state::StateDict;
use fsda_nn::WatchdogConfig;

/// The artifact magic bytes.
pub const MAGIC: [u8; 4] = *b"FSDA";

/// The container format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Section tag: artifact kind, pipeline seed, class count.
pub const TAG_META: [u8; 4] = *b"META";
/// Section tag: the FS partition and its configuration provenance.
pub const TAG_FSEP: [u8; 4] = *b"FSEP";
/// Section tag: the source-fitted normalizer statistics.
pub const TAG_NORM: [u8; 4] = *b"NORM";
/// Section tag: the reconstructor snapshot (may record "absent").
pub const TAG_RECN: [u8; 4] = *b"RECN";
/// Section tag: the classifier snapshot.
pub const TAG_CLSF: [u8; 4] = *b"CLSF";
/// Section tag: method-specific auxiliary payload (baseline artifacts).
pub const TAG_AUX: [u8; 4] = *b"AUXD";

/// Errors raised while encoding or decoding artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// A filesystem read/write failed.
    Io(String),
    /// The buffer does not start with the `FSDA` magic bytes.
    BadMagic,
    /// The artifact was written by an incompatible format version.
    Version {
        /// Version found in the artifact header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The bytes are structurally invalid (failed checksum, bad enum tag,
    /// out-of-bounds section, inconsistent component state).
    Corrupt(String),
    /// The buffer ends before a declared field or section does.
    Truncated(String),
    /// A required section is missing from the section table.
    MissingSection([u8; 4]),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(m) => write!(f, "io failure: {m}"),
            PersistError::BadMagic => write!(f, "not an FSDA artifact (bad magic)"),
            PersistError::Version { found, supported } => {
                write!(
                    f,
                    "format version {found} (this build supports {supported})"
                )
            }
            PersistError::Corrupt(m) => write!(f, "corrupt artifact: {m}"),
            PersistError::Truncated(m) => write!(f, "truncated artifact: {m}"),
            PersistError::MissingSection(tag) => {
                write!(f, "missing section {:?}", String::from_utf8_lossy(tag))
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Result alias for this module.
pub type Result<T> = std::result::Result<T, PersistError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), the zlib/PNG checksum.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `bytes`, as used in the artifact trailer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitive little-endian encoder / decoder.
// ---------------------------------------------------------------------------

/// An append-only little-endian byte encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn put_usizes(&mut self, v: &[usize]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_usize(x);
        }
    }

    /// Appends a matrix as `rows, cols, row-major data`.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &x in m.as_slice() {
            self.put_f64(x);
        }
    }
}

/// A bounds-checked little-endian byte decoder.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice for decoding from its start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn need(&self, n: usize, what: &str) -> Result<()> {
        if self.remaining() < n {
            return Err(PersistError::Truncated(format!(
                "{what}: need {n} bytes, {} left",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Fails unless every byte has been consumed — catches sections with
    /// trailing garbage, which a valid writer never produces.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] when bytes remain.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(PersistError::Corrupt(format!(
                "{} trailing bytes after section payload",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn take_u8(&mut self) -> Result<u8> {
        self.need(1, "u8")?;
        let v = self.bytes[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn take_u32(&mut self) -> Result<u32> {
        self.need(4, "u32")?;
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.bytes[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn take_u64(&mut self) -> Result<u64> {
        self.need(8, "u64")?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` stored as `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input and
    /// [`PersistError::Corrupt`] if the value overflows `usize`.
    pub fn take_usize(&mut self) -> Result<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt(format!("length {v} overflows usize")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool byte.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input and
    /// [`PersistError::Corrupt`] on a byte other than 0 or 1.
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] when the declared length exceeds
    /// the remaining input (checked before allocating).
    pub fn take_f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.take_usize()?;
        self.need(n.saturating_mul(8), "f64 vector")?;
        (0..n).map(|_| self.take_f64()).collect()
    }

    /// Reads a length-prefixed `usize` vector.
    ///
    /// # Errors
    ///
    /// As [`Decoder::take_f64s`].
    pub fn take_usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.take_usize()?;
        self.need(n.saturating_mul(8), "usize vector")?;
        (0..n).map(|_| self.take_usize()).collect()
    }

    /// Reads a matrix written by [`Encoder::put_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] when the declared shape exceeds
    /// the remaining input.
    pub fn take_matrix(&mut self) -> Result<Matrix> {
        let rows = self.take_usize()?;
        let cols = self.take_usize()?;
        let n = rows.saturating_mul(cols);
        self.need(n.saturating_mul(8), "matrix data")?;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.take_f64()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }
}

// ---------------------------------------------------------------------------
// Container: magic + version + section table + payloads + CRC trailer.
// ---------------------------------------------------------------------------

const HEADER_LEN: usize = 4 + 4 + 4;
const TABLE_ENTRY_LEN: usize = 4 + 8 + 8;
const TRAILER_LEN: usize = 4;

/// Assembles sections into a checksummed artifact container.
pub fn write_container(sections: &[([u8; 4], Vec<u8>)]) -> Vec<u8> {
    let payload_len: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let total = HEADER_LEN + TABLE_ENTRY_LEN * sections.len() + payload_len + TRAILER_LEN;
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = 0u64;
    for (tag, payload) in sections {
        out.extend_from_slice(tag);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        offset += payload.len() as u64;
    }
    for (_, payload) in sections {
        out.extend_from_slice(payload);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates an artifact container (magic, version, checksum, section
/// bounds) and returns its sections as `(tag, payload)` pairs.
///
/// # Errors
///
/// [`PersistError::BadMagic`], [`PersistError::Version`],
/// [`PersistError::Truncated`], or [`PersistError::Corrupt`] per the
/// respective structural failure.
pub fn read_container(bytes: &[u8]) -> Result<Vec<([u8; 4], &[u8])>> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(PersistError::Truncated(format!(
            "container is {} bytes, header+trailer need {}",
            bytes.len(),
            HEADER_LEN + TRAILER_LEN
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let mut trailer = [0u8; 4];
    trailer.copy_from_slice(&bytes[bytes.len() - TRAILER_LEN..]);
    let declared = u32::from_le_bytes(trailer);
    let actual = crc32(body);
    // Version is checked before the checksum so a structurally intact
    // artifact from a newer format reports the actionable error.
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(PersistError::Version {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    if declared != actual {
        return Err(PersistError::Corrupt(format!(
            "checksum mismatch: trailer {declared:#010x}, computed {actual:#010x}"
        )));
    }
    let count = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let payload_start = HEADER_LEN + TABLE_ENTRY_LEN * count;
    if payload_start > body.len() {
        return Err(PersistError::Truncated(format!(
            "section table declares {count} sections but the container ends inside the table"
        )));
    }
    let payload_region = &body[payload_start..];
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let entry = &bytes[HEADER_LEN + TABLE_ENTRY_LEN * i..];
        let tag = [entry[0], entry[1], entry[2], entry[3]];
        let mut b = [0u8; 8];
        b.copy_from_slice(&entry[4..12]);
        let offset = u64::from_le_bytes(b) as usize;
        b.copy_from_slice(&entry[12..20]);
        let len = u64::from_le_bytes(b) as usize;
        let end = offset
            .checked_add(len)
            .ok_or_else(|| PersistError::Corrupt(format!("section {i} offset+length overflows")))?;
        if end > payload_region.len() {
            return Err(PersistError::Corrupt(format!(
                "section {i} ({}) spans [{offset}, {end}) of a {}-byte payload region",
                String::from_utf8_lossy(&tag),
                payload_region.len()
            )));
        }
        sections.push((tag, &payload_region[offset..end]));
    }
    Ok(sections)
}

/// Looks up a required section by tag.
///
/// # Errors
///
/// Returns [`PersistError::MissingSection`] when absent.
pub fn find_section<'a>(sections: &[([u8; 4], &'a [u8])], tag: [u8; 4]) -> Result<&'a [u8]> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or(PersistError::MissingSection(tag))
}

// ---------------------------------------------------------------------------
// Component codecs.
// ---------------------------------------------------------------------------

/// Encodes normalizer statistics (kind, offsets, scales).
pub fn write_normalizer(enc: &mut Encoder, n: &Normalizer) {
    enc.put_u8(match n.kind() {
        NormKind::MinMaxSymmetric => 0,
        NormKind::ZScore => 1,
    });
    enc.put_f64s(n.offset());
    enc.put_f64s(n.scale());
}

/// Decodes normalizer statistics written by [`write_normalizer`].
///
/// # Errors
///
/// Structural failures per [`Decoder`]; [`PersistError::Corrupt`] when the
/// statistics could not have come from a fitted normalizer.
pub fn read_normalizer(dec: &mut Decoder) -> Result<Normalizer> {
    let kind = match dec.take_u8()? {
        0 => NormKind::MinMaxSymmetric,
        1 => NormKind::ZScore,
        t => return Err(PersistError::Corrupt(format!("normalizer kind tag {t}"))),
    };
    let offset = dec.take_f64s()?;
    let scale = dec.take_f64s()?;
    Normalizer::from_parts(kind, offset, scale).map_err(|e| PersistError::Corrupt(e.to_string()))
}

/// Encodes a network state dict (parameter tensors + buffers).
pub fn write_state_dict(enc: &mut Encoder, state: &StateDict) {
    enc.put_usize(state.tensors().len());
    for t in state.tensors() {
        enc.put_matrix(t);
    }
    // Buffers are 1 × n matrices; only the flat values are written (the
    // same bytes the format carried when buffers were plain vectors).
    enc.put_usize(state.buffers().len());
    for b in state.buffers() {
        enc.put_f64s(b.as_slice());
    }
}

/// Decodes a state dict written by [`write_state_dict`].
///
/// # Errors
///
/// Structural failures per [`Decoder`].
pub fn read_state_dict(dec: &mut Decoder) -> Result<StateDict> {
    let nt = dec.take_usize()?;
    let mut tensors = Vec::with_capacity(nt.min(1 << 16));
    for _ in 0..nt {
        tensors.push(dec.take_matrix()?);
    }
    let nb = dec.take_usize()?;
    let mut buffers = Vec::with_capacity(nb.min(1 << 16));
    for _ in 0..nb {
        let b = dec.take_f64s()?;
        buffers.push(Matrix::from_vec(1, b.len(), b));
    }
    Ok(StateDict::from_parts(tensors, buffers))
}

/// Encodes the FS partition and its configuration provenance (everything in
/// a [`FeatureSeparation`] except the normalizer, which has its own
/// section).
pub fn write_separation(enc: &mut Encoder, sep: &FeatureSeparation) {
    enc.put_usizes(sep.variant());
    enc.put_usizes(sep.invariant());
    enc.put_usize(sep.tests_run());
    enc.put_usize(sep.num_features());
    let cfg = sep.config();
    enc.put_f64(cfg.alpha);
    enc.put_usize(cfg.max_cond_size);
    enc.put_usize(cfg.max_candidates);
    enc.put_bool(cfg.parallel);
    enc.put_bool(cfg.num_threads.is_some());
    enc.put_usize(cfg.num_threads.unwrap_or(0));
}

/// Partial decode of [`write_separation`]: the partition, diagnostics, and
/// config. Combined with the `NORM` section via
/// [`FeatureSeparation::from_parts`].
pub struct SeparationParts {
    /// Domain-variant feature columns.
    pub variant: Vec<usize>,
    /// Domain-invariant feature columns.
    pub invariant: Vec<usize>,
    /// CI tests run during the search.
    pub tests_run: usize,
    /// Total feature count (cross-checked against the normalizer).
    pub num_features: usize,
    /// FS configuration provenance.
    pub config: FsConfig,
}

/// Decodes the FS section written by [`write_separation`].
///
/// # Errors
///
/// Structural failures per [`Decoder`].
pub fn read_separation(dec: &mut Decoder) -> Result<SeparationParts> {
    let variant = dec.take_usizes()?;
    let invariant = dec.take_usizes()?;
    let tests_run = dec.take_usize()?;
    let num_features = dec.take_usize()?;
    let alpha = dec.take_f64()?;
    let max_cond_size = dec.take_usize()?;
    let max_candidates = dec.take_usize()?;
    let parallel = dec.take_bool()?;
    let has_threads = dec.take_bool()?;
    let threads = dec.take_usize()?;
    Ok(SeparationParts {
        variant,
        invariant,
        tests_run,
        num_features,
        config: FsConfig {
            alpha,
            max_cond_size,
            max_candidates,
            parallel,
            num_threads: has_threads.then_some(threads),
        },
    })
}

fn write_cond_gan_config(enc: &mut Encoder, c: &CondGanConfig) {
    enc.put_usize(c.noise_dim);
    enc.put_usize(c.hidden);
    enc.put_usize(c.epochs);
    enc.put_usize(c.batch_size);
    enc.put_f64(c.learning_rate);
    enc.put_f64(c.weight_decay);
    enc.put_f64(c.dropout);
    enc.put_bool(c.condition_on_label);
    enc.put_f64(c.recon_weight);
}

fn read_cond_gan_config(dec: &mut Decoder) -> Result<CondGanConfig> {
    Ok(CondGanConfig {
        noise_dim: dec.take_usize()?,
        hidden: dec.take_usize()?,
        epochs: dec.take_usize()?,
        batch_size: dec.take_usize()?,
        learning_rate: dec.take_f64()?,
        weight_decay: dec.take_f64()?,
        dropout: dec.take_f64()?,
        condition_on_label: dec.take_bool()?,
        recon_weight: dec.take_f64()?,
        // Training-time policy, deliberately not persisted: restored
        // models never retrain, so they carry the default.
        watchdog: WatchdogConfig::default(),
    })
}

/// Encodes a reconstructor snapshot (family tag, config, seed, dims,
/// network state).
pub fn write_recon_snapshot(enc: &mut Encoder, snap: &ReconSnapshot) {
    match snap {
        ReconSnapshot::Gan {
            config,
            seed,
            dims,
            state,
        } => {
            enc.put_u8(0);
            write_cond_gan_config(enc, config);
            enc.put_u64(*seed);
            enc.put_usize(dims.0);
            enc.put_usize(dims.1);
            write_state_dict(enc, state);
        }
        ReconSnapshot::Vae {
            config,
            seed,
            dims,
            state,
        } => {
            enc.put_u8(1);
            enc.put_usize(config.latent_dim);
            enc.put_usize(config.hidden);
            enc.put_usize(config.epochs);
            enc.put_usize(config.batch_size);
            enc.put_f64(config.learning_rate);
            enc.put_f64(config.beta);
            enc.put_u64(*seed);
            enc.put_usize(dims.0);
            enc.put_usize(dims.1);
            write_state_dict(enc, state);
        }
        ReconSnapshot::Ae {
            config,
            seed,
            dims,
            state,
        } => {
            enc.put_u8(2);
            enc.put_usize(config.bottleneck);
            enc.put_usize(config.hidden);
            enc.put_usize(config.epochs);
            enc.put_usize(config.batch_size);
            enc.put_f64(config.learning_rate);
            enc.put_u64(*seed);
            enc.put_usize(dims.0);
            enc.put_usize(dims.1);
            write_state_dict(enc, state);
        }
    }
}

/// Decodes a reconstructor snapshot written by [`write_recon_snapshot`].
///
/// # Errors
///
/// Structural failures per [`Decoder`]; [`PersistError::Corrupt`] on an
/// unknown family tag.
pub fn read_recon_snapshot(dec: &mut Decoder) -> Result<ReconSnapshot> {
    match dec.take_u8()? {
        0 => {
            let config = read_cond_gan_config(dec)?;
            let seed = dec.take_u64()?;
            let dims = (dec.take_usize()?, dec.take_usize()?);
            let state = read_state_dict(dec)?;
            Ok(ReconSnapshot::Gan {
                config,
                seed,
                dims,
                state,
            })
        }
        1 => {
            let config = VaeConfig {
                latent_dim: dec.take_usize()?,
                hidden: dec.take_usize()?,
                epochs: dec.take_usize()?,
                batch_size: dec.take_usize()?,
                learning_rate: dec.take_f64()?,
                beta: dec.take_f64()?,
                watchdog: WatchdogConfig::default(),
            };
            let seed = dec.take_u64()?;
            let dims = (dec.take_usize()?, dec.take_usize()?);
            let state = read_state_dict(dec)?;
            Ok(ReconSnapshot::Vae {
                config,
                seed,
                dims,
                state,
            })
        }
        2 => {
            let config = AeConfig {
                bottleneck: dec.take_usize()?,
                hidden: dec.take_usize()?,
                epochs: dec.take_usize()?,
                batch_size: dec.take_usize()?,
                learning_rate: dec.take_f64()?,
                watchdog: WatchdogConfig::default(),
            };
            let seed = dec.take_u64()?;
            let dims = (dec.take_usize()?, dec.take_usize()?);
            let state = read_state_dict(dec)?;
            Ok(ReconSnapshot::Ae {
                config,
                seed,
                dims,
                state,
            })
        }
        t => Err(PersistError::Corrupt(format!("reconstructor tag {t}"))),
    }
}

fn write_flat_nodes(enc: &mut Encoder, nodes: &[FlatNode]) {
    enc.put_usize(nodes.len());
    for node in nodes {
        match node {
            FlatNode::Leaf { probs } => {
                enc.put_u8(0);
                enc.put_f64s(probs);
            }
            FlatNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                enc.put_u8(1);
                enc.put_usize(*feature);
                enc.put_f64(*threshold);
                enc.put_usize(*left);
                enc.put_usize(*right);
            }
        }
    }
}

fn read_flat_nodes(dec: &mut Decoder) -> Result<Vec<FlatNode>> {
    let n = dec.take_usize()?;
    let mut nodes = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        nodes.push(match dec.take_u8()? {
            0 => FlatNode::Leaf {
                probs: dec.take_f64s()?,
            },
            1 => FlatNode::Split {
                feature: dec.take_usize()?,
                threshold: dec.take_f64()?,
                left: dec.take_usize()?,
                right: dec.take_usize()?,
            },
            t => return Err(PersistError::Corrupt(format!("tree node tag {t}"))),
        });
    }
    Ok(nodes)
}

fn write_flat_reg_nodes(enc: &mut Encoder, nodes: &[FlatRegNode]) {
    enc.put_usize(nodes.len());
    for node in nodes {
        match node {
            FlatRegNode::Leaf { value } => {
                enc.put_u8(0);
                enc.put_f64(*value);
            }
            FlatRegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                enc.put_u8(1);
                enc.put_usize(*feature);
                enc.put_f64(*threshold);
                enc.put_usize(*left);
                enc.put_usize(*right);
            }
        }
    }
}

fn read_flat_reg_nodes(dec: &mut Decoder) -> Result<Vec<FlatRegNode>> {
    let n = dec.take_usize()?;
    let mut nodes = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        nodes.push(match dec.take_u8()? {
            0 => FlatRegNode::Leaf {
                value: dec.take_f64()?,
            },
            1 => FlatRegNode::Split {
                feature: dec.take_usize()?,
                threshold: dec.take_f64()?,
                left: dec.take_usize()?,
                right: dec.take_usize()?,
            },
            t => return Err(PersistError::Corrupt(format!("regression node tag {t}"))),
        });
    }
    Ok(nodes)
}

/// Encodes a classifier snapshot (family tag, config, seed, learned state).
pub fn write_classifier_snapshot(enc: &mut Encoder, snap: &ClassifierSnapshot) {
    match snap {
        ClassifierSnapshot::Tnet {
            config,
            seed,
            in_dim,
            num_classes,
            state,
        } => {
            enc.put_u8(0);
            enc.put_usize(config.hidden);
            enc.put_f64(config.dropout);
            enc.put_usize(config.epochs);
            enc.put_usize(config.batch_size);
            enc.put_f64(config.learning_rate);
            enc.put_f64(config.weight_decay);
            enc.put_u64(*seed);
            enc.put_usize(*in_dim);
            enc.put_usize(*num_classes);
            write_state_dict(enc, state);
        }
        ClassifierSnapshot::Mlp {
            config,
            seed,
            in_dim,
            num_classes,
            state,
        } => {
            enc.put_u8(1);
            enc.put_usizes(&config.hidden);
            enc.put_usize(config.epochs);
            enc.put_usize(config.batch_size);
            enc.put_f64(config.learning_rate);
            enc.put_f64(config.weight_decay);
            enc.put_u64(*seed);
            enc.put_usize(*in_dim);
            enc.put_usize(*num_classes);
            write_state_dict(enc, state);
        }
        ClassifierSnapshot::Forest {
            config,
            seed,
            num_classes,
            trees,
        } => {
            enc.put_u8(2);
            enc.put_usize(config.num_trees);
            enc.put_usize(config.max_depth);
            enc.put_usize(config.min_samples_leaf);
            enc.put_bool(config.mtry.is_some());
            enc.put_usize(config.mtry.unwrap_or(0));
            enc.put_f64(config.sample_fraction);
            enc.put_usize(config.threads);
            enc.put_u64(*seed);
            enc.put_usize(*num_classes);
            enc.put_usize(trees.len());
            for tree in trees {
                write_flat_nodes(enc, tree);
            }
        }
        ClassifierSnapshot::Gbdt {
            config,
            seed,
            num_classes,
            base_score,
            trees,
        } => {
            enc.put_u8(3);
            enc.put_usize(config.rounds);
            enc.put_f64(config.eta);
            enc.put_usize(config.max_depth);
            enc.put_f64(config.lambda);
            enc.put_f64(config.min_child_weight);
            enc.put_f64(config.subsample);
            enc.put_f64(config.colsample);
            enc.put_u64(*seed);
            enc.put_usize(*num_classes);
            enc.put_f64s(base_score);
            enc.put_usize(trees.len());
            for round in trees {
                enc.put_usize(round.len());
                for tree in round {
                    write_flat_reg_nodes(enc, tree);
                }
            }
        }
    }
}

/// Decodes a classifier snapshot written by [`write_classifier_snapshot`].
///
/// # Errors
///
/// Structural failures per [`Decoder`]; [`PersistError::Corrupt`] on an
/// unknown family tag.
pub fn read_classifier_snapshot(dec: &mut Decoder) -> Result<ClassifierSnapshot> {
    match dec.take_u8()? {
        0 => {
            let config = TnetConfig {
                hidden: dec.take_usize()?,
                dropout: dec.take_f64()?,
                epochs: dec.take_usize()?,
                batch_size: dec.take_usize()?,
                learning_rate: dec.take_f64()?,
                weight_decay: dec.take_f64()?,
            };
            let seed = dec.take_u64()?;
            let in_dim = dec.take_usize()?;
            let num_classes = dec.take_usize()?;
            let state = read_state_dict(dec)?;
            Ok(ClassifierSnapshot::Tnet {
                config,
                seed,
                in_dim,
                num_classes,
                state,
            })
        }
        1 => {
            let config = MlpConfig {
                hidden: dec.take_usizes()?,
                epochs: dec.take_usize()?,
                batch_size: dec.take_usize()?,
                learning_rate: dec.take_f64()?,
                weight_decay: dec.take_f64()?,
            };
            let seed = dec.take_u64()?;
            let in_dim = dec.take_usize()?;
            let num_classes = dec.take_usize()?;
            let state = read_state_dict(dec)?;
            Ok(ClassifierSnapshot::Mlp {
                config,
                seed,
                in_dim,
                num_classes,
                state,
            })
        }
        2 => {
            let num_trees = dec.take_usize()?;
            let max_depth = dec.take_usize()?;
            let min_samples_leaf = dec.take_usize()?;
            let has_mtry = dec.take_bool()?;
            let mtry = dec.take_usize()?;
            let config = ForestConfig {
                num_trees,
                max_depth,
                min_samples_leaf,
                mtry: has_mtry.then_some(mtry),
                sample_fraction: dec.take_f64()?,
                threads: dec.take_usize()?,
            };
            let seed = dec.take_u64()?;
            let num_classes = dec.take_usize()?;
            let n = dec.take_usize()?;
            let mut trees = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                trees.push(read_flat_nodes(dec)?);
            }
            Ok(ClassifierSnapshot::Forest {
                config,
                seed,
                num_classes,
                trees,
            })
        }
        3 => {
            let config = GbdtConfig {
                rounds: dec.take_usize()?,
                eta: dec.take_f64()?,
                max_depth: dec.take_usize()?,
                lambda: dec.take_f64()?,
                min_child_weight: dec.take_f64()?,
                subsample: dec.take_f64()?,
                colsample: dec.take_f64()?,
            };
            let seed = dec.take_u64()?;
            let num_classes = dec.take_usize()?;
            let base_score = dec.take_f64s()?;
            let rounds = dec.take_usize()?;
            let mut trees = Vec::with_capacity(rounds.min(1 << 16));
            for _ in 0..rounds {
                let per_class = dec.take_usize()?;
                let mut round = Vec::with_capacity(per_class.min(1 << 16));
                for _ in 0..per_class {
                    round.push(read_flat_reg_nodes(dec)?);
                }
                trees.push(round);
            }
            Ok(ClassifierSnapshot::Gbdt {
                config,
                seed,
                num_classes,
                base_score,
                trees,
            })
        }
        t => Err(PersistError::Corrupt(format!("classifier tag {t}"))),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_f64(-0.0);
        enc.put_f64(f64::MIN_POSITIVE);
        enc.put_bool(true);
        enc.put_f64s(&[1.5, -2.25]);
        enc.put_usizes(&[3, 0, 9]);
        enc.put_matrix(&Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_u8().unwrap(), 7);
        assert_eq!(dec.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.take_u64().unwrap(), u64::MAX);
        assert_eq!(dec.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.take_f64().unwrap(), f64::MIN_POSITIVE);
        assert!(dec.take_bool().unwrap());
        assert_eq!(dec.take_f64s().unwrap(), vec![1.5, -2.25]);
        assert_eq!(dec.take_usizes().unwrap(), vec![3, 0, 9]);
        let m = dec.take_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
        dec.expect_end().unwrap();
    }

    #[test]
    fn decoder_reports_truncation() {
        let mut enc = Encoder::new();
        enc.put_u64(5);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes[..4]);
        assert!(matches!(dec.take_u64(), Err(PersistError::Truncated(_))));
        // A huge declared length fails before allocating.
        let mut enc = Encoder::new();
        enc.put_usize(usize::MAX / 16);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.take_f64s(), Err(PersistError::Truncated(_))));
    }

    #[test]
    fn container_round_trips_and_validates() {
        let sections = vec![
            (*b"AAAA", vec![1, 2, 3]),
            (*b"BBBB", vec![]),
            (*b"CCCC", vec![9; 40]),
        ];
        let bytes = write_container(&sections);
        let read = read_container(&bytes).unwrap();
        assert_eq!(read.len(), 3);
        assert_eq!(read[0].0, *b"AAAA");
        assert_eq!(read[0].1, &[1, 2, 3]);
        assert_eq!(read[1].1.len(), 0);
        assert_eq!(find_section(&read, *b"CCCC").unwrap().len(), 40);
        assert!(matches!(
            find_section(&read, *b"ZZZZ"),
            Err(PersistError::MissingSection(_))
        ));
    }

    #[test]
    fn container_rejects_bad_magic_version_crc_truncation() {
        let bytes = write_container(&[(*b"AAAA", vec![5, 6, 7])]);
        // Magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_container(&bad), Err(PersistError::BadMagic)));
        // Version (recompute the CRC so the version check is what fires).
        let mut bad = bytes.clone();
        bad[4] = 99;
        let crc = crc32(&bad[..bad.len() - 4]);
        let n = bad.len();
        bad[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_container(&bad),
            Err(PersistError::Version { found: 99, .. })
        ));
        // Flipped payload byte -> checksum mismatch.
        let mut bad = bytes.clone();
        let flip = bytes.len() - 6;
        bad[flip] ^= 0xFF;
        assert!(matches!(
            read_container(&bad),
            Err(PersistError::Corrupt(_))
        ));
        // Truncation at every prefix fails loudly rather than panicking.
        for cut in 0..bytes.len() {
            assert!(read_container(&bytes[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::Version {
            found: 2,
            supported: 1
        }
        .to_string()
        .contains('2'));
        assert!(PersistError::MissingSection(*b"CLSF")
            .to_string()
            .contains("CLSF"));
        assert!(PersistError::Io("nope".into()).to_string().contains("nope"));
    }
}
