//! [`BaselineMitigator`]: the eleven Table I baselines behind the
//! [`DriftMitigator`] interface.
//!
//! Each baseline's fitted state is one of seven shapes — a plain
//! classifier over (optionally column-reduced) normalized features, the
//! DANN extractor + label head, the SCL encoder + head, the MatchNet
//! support set, the ProtoNet prototypes, the FADA extractor + label head,
//! or the FMAA encoder + head — and each shape persists as a
//! `META + NORM + AUXD` container whose META kind byte tells
//! [`super::restore`] how to rebuild it.

use crate::adapter::{
    decode_meta, encode_meta, AdapterConfig, Budget, ARTIFACT_CLASSIFIER, ARTIFACT_DANN,
    ARTIFACT_FADA, ARTIFACT_FMAA, ARTIFACT_MATCHNET, ARTIFACT_PROTONET, ARTIFACT_SCL,
};
use crate::baselines::cmt::CmtConfig;
use crate::baselines::dann::{DannConfig, DannParts};
use crate::baselines::fada::{FadaConfig, FadaParts};
use crate::baselines::fewshot::{FewShotConfig, MatchNetParts, ProtoNetParts};
use crate::baselines::fmaa::{FmaaConfig, FmaaParts};
use crate::baselines::icd::IcdConfig;
use crate::baselines::scl::{SclConfig, SclParts};
use crate::baselines::{
    cmt, coral, dann, fada, fewshot, fmaa, icd, naive, scl, ClassifierParts, FitContext,
};
use crate::method::Method;
use crate::persist::{
    find_section, read_classifier_snapshot, read_container, read_normalizer, read_state_dict,
    write_classifier_snapshot, write_container, write_normalizer, write_state_dict, Decoder,
    Encoder, TAG_AUX, TAG_META, TAG_NORM,
};
use crate::pipeline::{observe, DriftMitigator};
use crate::serve::{sanitize_batch, GuardConfig, ServeError};
use crate::{CoreError, Result};
use fsda_data::Dataset;
use fsda_linalg::{Matrix, SeededRng};
use fsda_models::embedding::{EmbeddingConfig, EmbeddingNet};
use fsda_models::{restore_classifier, ClassifierKind, InferPrecision};
use fsda_nn::layer::{Activation, Dense};
use fsda_nn::Sequential;

/// The fitted state of a baseline, one variant per architecture family.
enum Fitted {
    /// SrcOnly / TarOnly / S&T / Fine-tune / CORAL / CMT / ICD.
    Classifier(ClassifierParts),
    /// DANN's extractor + label head.
    Dann(DannParts),
    /// SCL's encoder + linear head.
    Scl(SclParts),
    /// MatchNet's embedding net + support set.
    MatchNet(MatchNetParts),
    /// ProtoNet's embedding net + prototypes.
    ProtoNet(ProtoNetParts),
    /// FADA's extractor + label head (plan-compiled).
    Fada(FadaParts),
    /// FMAA's encoder + head (plan-compiled).
    Fmaa(FmaaParts),
}

impl Fitted {
    fn num_features(&self) -> usize {
        match self {
            Fitted::Classifier(p) => p.num_features,
            Fitted::Dann(p) => p.num_features,
            Fitted::Scl(p) => p.num_features,
            Fitted::MatchNet(p) => p.num_features,
            Fitted::ProtoNet(p) => p.num_features,
            Fitted::Fada(p) => p.num_features,
            Fitted::Fmaa(p) => p.num_features,
        }
    }

    fn num_classes(&self) -> usize {
        match self {
            Fitted::Classifier(p) => p.num_classes,
            Fitted::Dann(p) => p.num_classes,
            Fitted::Scl(p) => p.num_classes,
            Fitted::MatchNet(p) => p.num_classes,
            Fitted::ProtoNet(p) => p.num_classes,
            Fitted::Fada(p) => p.num_classes,
            Fitted::Fmaa(p) => p.num_classes,
        }
    }
}

/// Any Table I baseline as a [`DriftMitigator`]: built unfitted by
/// [`Method::build`], trained with the exact numerics of the corresponding
/// `baselines::*` function, and persisted as a versioned artifact that
/// [`super::restore`] can serve.
pub struct BaselineMitigator {
    method: Method,
    classifier: ClassifierKind,
    budget: Budget,
    watchdog: fsda_nn::WatchdogConfig,
    seed: u64,
    fitted: Option<Fitted>,
}

impl std::fmt::Debug for BaselineMitigator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineMitigator")
            .field("method", &self.method)
            .field("classifier", &self.classifier)
            .field("fitted", &self.fitted.is_some())
            .finish()
    }
}

/// AUX method tag of a classifier-family artifact (kind 2).
fn classifier_method_tag(method: Method) -> Result<u8> {
    Ok(match method {
        Method::SrcOnly => 0,
        Method::TarOnly => 1,
        Method::SourceAndTarget => 2,
        Method::FineTune => 3,
        Method::Coral => 4,
        Method::Cmt => 5,
        Method::Icd => 6,
        m => {
            return Err(CoreError::Persist(format!(
                "{m} is not a classifier-family baseline"
            )))
        }
    })
}

/// Inverse of [`classifier_method_tag`].
fn classifier_method_from_tag(tag: u8) -> Result<Method> {
    Ok(match tag {
        0 => Method::SrcOnly,
        1 => Method::TarOnly,
        2 => Method::SourceAndTarget,
        3 => Method::FineTune,
        4 => Method::Coral,
        5 => Method::Cmt,
        6 => Method::Icd,
        t => {
            return Err(CoreError::Persist(format!(
                "unknown baseline method tag {t}"
            )))
        }
    })
}

/// The few-shot configuration the `matchnet()` / `protonet()` wrappers
/// derive from a budget.
fn few_shot_config(budget: &Budget) -> FewShotConfig {
    FewShotConfig {
        embedding: EmbeddingConfig {
            epochs: budget.emb_epochs,
            ..EmbeddingConfig::default()
        },
        ..FewShotConfig::default()
    }
}

/// Loads a state dict into a freshly built network, mapping shape
/// mismatches to [`CoreError::Persist`].
fn load_into(net: &mut Sequential, state: &fsda_nn::state::StateDict) -> Result<()> {
    fsda_nn::state::load_state(net, state).map_err(CoreError::Persist)
}

impl BaselineMitigator {
    /// Creates an unfitted baseline mitigator. `config` supplies the
    /// classifier family and budget; FS-family methods are rejected at
    /// [`BaselineMitigator::fit`] time (use the adapters).
    pub(crate) fn new(method: Method, config: &AdapterConfig, seed: u64) -> Self {
        BaselineMitigator {
            method,
            classifier: config.classifier,
            budget: config.budget.clone(),
            watchdog: config.watchdog,
            seed,
            fitted: None,
        }
    }

    fn fitted(&self) -> &Fitted {
        match &self.fitted {
            Some(fitted) => fitted,
            None => panic!("BaselineMitigator: use before fit"),
        }
    }

    /// Shared prediction dispatch; the trait's `predict` and
    /// `predict_batch` wrap this in their own telemetry spans.
    fn predict_inner(&self, features: &Matrix) -> Vec<usize> {
        self.predict_inner_with(features, InferPrecision::F64Exact)
    }

    /// Precision-aware prediction dispatch: the plan-compiled baselines
    /// (FADA, FMAA) thread the hint into their kernels; every other shape
    /// stays on its exact path regardless.
    fn predict_inner_with(&self, features: &Matrix, precision: InferPrecision) -> Vec<usize> {
        match self.fitted() {
            Fitted::Classifier(p) => p.predict(features),
            Fitted::Dann(p) => p.predict(features),
            Fitted::Scl(p) => p.predict(features),
            Fitted::MatchNet(p) => p.predict(features),
            Fitted::ProtoNet(p) => p.predict(features),
            Fitted::Fada(p) => p.predict_with(features, precision),
            Fitted::Fmaa(p) => p.predict_with(features, precision),
        }
    }

    /// Restores a fitted baseline from artifact bytes (kinds 2–8). The
    /// training-time knobs (classifier family, budget) are not part of the
    /// artifact; restored mitigators serve predictions only.
    ///
    /// # Errors
    ///
    /// Structural failures and unknown kinds surface as
    /// [`CoreError::Persist`].
    pub(crate) fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let sections = read_container(bytes)?;
        let (kind, seed, num_classes) = decode_meta(&sections)?;
        let mut norm_dec = Decoder::new(find_section(&sections, TAG_NORM)?);
        let normalizer = read_normalizer(&mut norm_dec)?;
        norm_dec.expect_end()?;
        let mut aux = Decoder::new(find_section(&sections, TAG_AUX)?);
        let (method, fitted) = match kind {
            ARTIFACT_CLASSIFIER => {
                let method = classifier_method_from_tag(aux.take_u8()?)?;
                let num_features = aux.take_usize()?;
                let columns = if aux.take_bool()? {
                    Some(aux.take_usizes()?)
                } else {
                    None
                };
                let snapshot = read_classifier_snapshot(&mut aux)?;
                let classifier = restore_classifier(&snapshot)?;
                (
                    method,
                    Fitted::Classifier(ClassifierParts {
                        normalizer,
                        columns,
                        classifier,
                        num_classes,
                        num_features,
                    }),
                )
            }
            ARTIFACT_DANN => {
                let num_features = aux.take_usize()?;
                let hidden = aux.take_usize()?;
                let feature_dim = aux.take_usize()?;
                let extractor_state = read_state_dict(&mut aux)?;
                let head_state = read_state_dict(&mut aux)?;
                // Dummy rng: load_state overwrites every parameter.
                let mut rng = SeededRng::new(0);
                let mut extractor = Sequential::new();
                extractor.push(Dense::new(num_features, hidden, &mut rng));
                extractor.push(Activation::relu());
                extractor.push(Dense::new(hidden, feature_dim, &mut rng));
                extractor.push(Activation::relu());
                let mut label_head = Sequential::new();
                label_head.push(Dense::new(feature_dim, num_classes, &mut rng));
                load_into(&mut extractor, &extractor_state)?;
                load_into(&mut label_head, &head_state)?;
                (
                    Method::Dann,
                    Fitted::Dann(DannParts {
                        normalizer,
                        extractor,
                        label_head,
                        hidden,
                        feature_dim,
                        num_classes,
                        num_features,
                    }),
                )
            }
            ARTIFACT_SCL => {
                let num_features = aux.take_usize()?;
                let hidden = aux.take_usize()?;
                let embed_dim = aux.take_usize()?;
                let encoder_state = read_state_dict(&mut aux)?;
                let head_state = read_state_dict(&mut aux)?;
                let mut rng = SeededRng::new(0);
                let mut encoder = Sequential::new();
                encoder.push(Dense::new(num_features, hidden, &mut rng));
                encoder.push(Activation::relu());
                encoder.push(Dense::new(hidden, embed_dim, &mut rng));
                let mut head = Sequential::new();
                head.push(Dense::new(embed_dim, num_classes, &mut rng));
                load_into(&mut encoder, &encoder_state)?;
                load_into(&mut head, &head_state)?;
                (
                    Method::Scl,
                    Fitted::Scl(SclParts {
                        normalizer,
                        encoder,
                        head,
                        hidden,
                        embed_dim,
                        num_classes,
                        num_features,
                    }),
                )
            }
            ARTIFACT_MATCHNET => {
                let num_features = aux.take_usize()?;
                let hidden = aux.take_usizes()?;
                let embed_dim = aux.take_usize()?;
                let state = read_state_dict(&mut aux)?;
                let config = EmbeddingConfig {
                    hidden,
                    embed_dim,
                    ..EmbeddingConfig::default()
                };
                let net = EmbeddingNet::from_encoder_state(config, seed, num_features, &state)?;
                let support = aux.take_matrix()?;
                let support_labels = aux.take_usizes()?;
                let temperature = aux.take_f64()?;
                (
                    Method::MatchNet,
                    Fitted::MatchNet(MatchNetParts {
                        normalizer,
                        net,
                        support,
                        support_labels,
                        temperature,
                        num_classes,
                        num_features,
                    }),
                )
            }
            ARTIFACT_PROTONET => {
                let num_features = aux.take_usize()?;
                let hidden = aux.take_usizes()?;
                let embed_dim = aux.take_usize()?;
                let state = read_state_dict(&mut aux)?;
                let config = EmbeddingConfig {
                    hidden,
                    embed_dim,
                    ..EmbeddingConfig::default()
                };
                let net = EmbeddingNet::from_encoder_state(config, seed, num_features, &state)?;
                let prototypes = aux.take_matrix()?;
                (
                    Method::ProtoNet,
                    Fitted::ProtoNet(ProtoNetParts {
                        normalizer,
                        net,
                        prototypes,
                        num_classes,
                        num_features,
                    }),
                )
            }
            ARTIFACT_FADA => {
                let num_features = aux.take_usize()?;
                let hidden = aux.take_usize()?;
                let feature_dim = aux.take_usize()?;
                let extractor_state = read_state_dict(&mut aux)?;
                let head_state = read_state_dict(&mut aux)?;
                let mut rng = SeededRng::new(0);
                let mut extractor = Sequential::new();
                extractor.push(Dense::new(num_features, hidden, &mut rng));
                extractor.push(Activation::relu());
                extractor.push(Dense::new(hidden, feature_dim, &mut rng));
                extractor.push(Activation::relu());
                let mut label_head = Sequential::new();
                label_head.push(Dense::new(feature_dim, num_classes, &mut rng));
                load_into(&mut extractor, &extractor_state)?;
                load_into(&mut label_head, &head_state)?;
                let mut parts = FadaParts {
                    normalizer,
                    extractor,
                    label_head,
                    hidden,
                    feature_dim,
                    num_classes,
                    num_features,
                    plan: None,
                };
                // Plans are never persisted; the deterministic recompile
                // keeps restored predictions bit-identical.
                parts.compile_plan();
                (Method::Fada, Fitted::Fada(parts))
            }
            ARTIFACT_FMAA => {
                let num_features = aux.take_usize()?;
                let hidden = aux.take_usize()?;
                let embed_dim = aux.take_usize()?;
                let encoder_state = read_state_dict(&mut aux)?;
                let head_state = read_state_dict(&mut aux)?;
                let mut rng = SeededRng::new(0);
                let mut encoder = Sequential::new();
                encoder.push(Dense::new(num_features, hidden, &mut rng));
                encoder.push(Activation::relu());
                encoder.push(Dense::new(hidden, embed_dim, &mut rng));
                let mut head = Sequential::new();
                head.push(Dense::new(embed_dim, num_classes, &mut rng));
                load_into(&mut encoder, &encoder_state)?;
                load_into(&mut head, &head_state)?;
                let mut parts = FmaaParts {
                    normalizer,
                    encoder,
                    head,
                    hidden,
                    embed_dim,
                    num_classes,
                    num_features,
                    plan: None,
                };
                parts.compile_plan();
                (Method::Fmaa, Fitted::Fmaa(parts))
            }
            other => {
                return Err(CoreError::Persist(format!(
                    "artifact kind {other} is not a baseline artifact"
                )))
            }
        };
        aux.expect_end()?;
        Ok(BaselineMitigator {
            method,
            classifier: ClassifierKind::Tnet,
            budget: Budget::default(),
            watchdog: fsda_nn::WatchdogConfig::default(),
            seed,
            fitted: Some(fitted),
        })
    }
}

impl DriftMitigator for BaselineMitigator {
    fn method(&self) -> Method {
        self.method
    }

    fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    fn num_classes(&self) -> usize {
        self.fitted().num_classes()
    }

    fn fit(&mut self, source: &Dataset, target_shots: &Dataset) -> Result<()> {
        let _span = observe::call_span(observe::Call::Fit, self.method);
        let ctx = FitContext {
            source,
            target_shots,
            classifier: self.classifier,
            budget: &self.budget,
            seed: self.seed,
        };
        let fitted = match self.method {
            Method::SrcOnly => Fitted::Classifier(naive::fit_src_only(&ctx)?),
            Method::TarOnly => Fitted::Classifier(naive::fit_tar_only(&ctx)?),
            Method::SourceAndTarget => Fitted::Classifier(naive::fit_source_and_target(&ctx)?),
            Method::FineTune => Fitted::Classifier(naive::fit_fine_tune(&ctx)?),
            Method::Coral => Fitted::Classifier(coral::fit_coral(&ctx)?),
            Method::Cmt => {
                Fitted::Classifier(cmt::fit_cmt_with_config(&ctx, &CmtConfig::default())?)
            }
            Method::Icd => {
                Fitted::Classifier(icd::fit_icd_with_config(&ctx, &IcdConfig::default())?)
            }
            Method::Dann => {
                let config = DannConfig {
                    epochs: self.budget.nn_epochs,
                    ..DannConfig::default()
                };
                Fitted::Dann(dann::fit_with_config(&ctx, &config)?)
            }
            Method::Scl => {
                let config = SclConfig {
                    epochs: self.budget.emb_epochs,
                    head_epochs: self.budget.nn_epochs,
                    ..SclConfig::default()
                };
                Fitted::Scl(scl::fit_with_config(&ctx, &config)?)
            }
            Method::MatchNet => Fitted::MatchNet(fewshot::fit_matchnet_with_config(
                &ctx,
                &few_shot_config(&self.budget),
            )?),
            Method::ProtoNet => Fitted::ProtoNet(fewshot::fit_protonet_with_config(
                &ctx,
                &few_shot_config(&self.budget),
            )?),
            Method::Fada => {
                let config = FadaConfig {
                    watchdog: self.watchdog,
                    ..FadaConfig::from_epochs(self.budget.nn_epochs)
                };
                Fitted::Fada(fada::fit_with_config(&ctx, &config)?)
            }
            Method::Fmaa => {
                let config = FmaaConfig {
                    epochs: self.budget.nn_epochs,
                    watchdog: self.watchdog,
                    ..FmaaConfig::default()
                };
                Fitted::Fmaa(fmaa::fit_with_config(&ctx, &config)?)
            }
            m @ (Method::FsGan
            | Method::FsNoCond
            | Method::FsVae
            | Method::FsVanillaAe
            | Method::Fs) => {
                return Err(CoreError::InvalidInput(format!(
                    "BaselineMitigator cannot run {m}; use the FS adapters"
                )))
            }
        };
        self.fitted = Some(fitted);
        Ok(())
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::Predict, self.method);
        self.predict_inner(features)
    }

    fn predict_batch(&self, features: &Matrix, _threads: Option<usize>) -> Vec<usize> {
        let _span = observe::call_span(observe::Call::PredictBatch, self.method);
        self.predict_inner(features)
    }

    fn try_predict_batch(
        &self,
        features: &Matrix,
        _threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        let _span = observe::call_span(observe::Call::TryPredictBatch, self.method);
        let fitted = self.fitted();
        if features.cols() != fitted.num_features() {
            return Err(crate::serve::rejected(ServeError::DimensionMismatch {
                expected: fitted.num_features(),
                got: features.cols(),
            }));
        }
        match fitted {
            // ICD trains on a column subset; reduce first so the guard
            // checks against the normalizer the classifier actually uses.
            Fitted::Classifier(p) => match &p.columns {
                Some(cols) => {
                    let reduced = features.select_cols(cols);
                    let repaired = sanitize_batch(&reduced, &p.normalizer, guard)?;
                    Ok(p.predict_reduced(repaired.as_ref().unwrap_or(&reduced)))
                }
                None => {
                    let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                    Ok(p.predict_reduced(repaired.as_ref().unwrap_or(features)))
                }
            },
            Fitted::Dann(p) => {
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict(repaired.as_ref().unwrap_or(features)))
            }
            Fitted::Scl(p) => {
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict(repaired.as_ref().unwrap_or(features)))
            }
            Fitted::MatchNet(p) => {
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict(repaired.as_ref().unwrap_or(features)))
            }
            Fitted::ProtoNet(p) => {
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict(repaired.as_ref().unwrap_or(features)))
            }
            Fitted::Fada(p) => {
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict(repaired.as_ref().unwrap_or(features)))
            }
            Fitted::Fmaa(p) => {
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict(repaired.as_ref().unwrap_or(features)))
            }
        }
    }

    fn predict_batch_with(
        &self,
        features: &Matrix,
        _threads: Option<usize>,
        precision: InferPrecision,
    ) -> Vec<usize> {
        observe::note_precision(precision);
        let _span = observe::call_span(observe::Call::PredictBatch, self.method);
        self.predict_inner_with(features, precision)
    }

    fn try_predict_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
        precision: InferPrecision,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        observe::note_precision(precision);
        match self.fitted() {
            // The plan-compiled shapes sanitize and then run at the
            // requested precision; everything else keeps the exact path.
            Fitted::Fada(p) => {
                let _span = observe::call_span(observe::Call::TryPredictBatch, self.method);
                if features.cols() != p.num_features {
                    return Err(crate::serve::rejected(ServeError::DimensionMismatch {
                        expected: p.num_features,
                        got: features.cols(),
                    }));
                }
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict_with(repaired.as_ref().unwrap_or(features), precision))
            }
            Fitted::Fmaa(p) => {
                let _span = observe::call_span(observe::Call::TryPredictBatch, self.method);
                if features.cols() != p.num_features {
                    return Err(crate::serve::rejected(ServeError::DimensionMismatch {
                        expected: p.num_features,
                        got: features.cols(),
                    }));
                }
                let repaired = sanitize_batch(features, &p.normalizer, guard)?;
                Ok(p.predict_with(repaired.as_ref().unwrap_or(features), precision))
            }
            _ => self.try_predict_batch(features, threads, guard),
        }
    }

    fn to_bytes(&self) -> Result<Vec<u8>> {
        let fitted = match &self.fitted {
            Some(fitted) => fitted,
            None => {
                return Err(CoreError::InvalidInput(
                    "BaselineMitigator: to_bytes before fit".to_string(),
                ))
            }
        };
        let mut norm = Encoder::new();
        let mut aux = Encoder::new();
        let kind = match fitted {
            Fitted::Classifier(p) => {
                write_normalizer(&mut norm, &p.normalizer);
                aux.put_u8(classifier_method_tag(self.method)?);
                aux.put_usize(p.num_features);
                aux.put_bool(p.columns.is_some());
                if let Some(cols) = &p.columns {
                    aux.put_usizes(cols);
                }
                write_classifier_snapshot(&mut aux, &p.classifier.snapshot()?);
                ARTIFACT_CLASSIFIER
            }
            Fitted::Dann(p) => {
                write_normalizer(&mut norm, &p.normalizer);
                aux.put_usize(p.num_features);
                aux.put_usize(p.hidden);
                aux.put_usize(p.feature_dim);
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.extractor));
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.label_head));
                ARTIFACT_DANN
            }
            Fitted::Scl(p) => {
                write_normalizer(&mut norm, &p.normalizer);
                aux.put_usize(p.num_features);
                aux.put_usize(p.hidden);
                aux.put_usize(p.embed_dim);
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.encoder));
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.head));
                ARTIFACT_SCL
            }
            Fitted::MatchNet(p) => {
                write_normalizer(&mut norm, &p.normalizer);
                aux.put_usize(p.num_features);
                aux.put_usizes(&p.net.config().hidden);
                aux.put_usize(p.net.embed_dim());
                write_state_dict(&mut aux, &p.net.export_encoder()?);
                aux.put_matrix(&p.support);
                aux.put_usizes(&p.support_labels);
                aux.put_f64(p.temperature);
                ARTIFACT_MATCHNET
            }
            Fitted::ProtoNet(p) => {
                write_normalizer(&mut norm, &p.normalizer);
                aux.put_usize(p.num_features);
                aux.put_usizes(&p.net.config().hidden);
                aux.put_usize(p.net.embed_dim());
                write_state_dict(&mut aux, &p.net.export_encoder()?);
                aux.put_matrix(&p.prototypes);
                ARTIFACT_PROTONET
            }
            Fitted::Fada(p) => {
                write_normalizer(&mut norm, &p.normalizer);
                aux.put_usize(p.num_features);
                aux.put_usize(p.hidden);
                aux.put_usize(p.feature_dim);
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.extractor));
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.label_head));
                ARTIFACT_FADA
            }
            Fitted::Fmaa(p) => {
                write_normalizer(&mut norm, &p.normalizer);
                aux.put_usize(p.num_features);
                aux.put_usize(p.hidden);
                aux.put_usize(p.embed_dim);
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.encoder));
                write_state_dict(&mut aux, &fsda_nn::state::export_state(&p.head));
                ARTIFACT_FMAA
            }
        };
        Ok(write_container(&[
            (TAG_META, encode_meta(kind, self.seed, fitted.num_classes())),
            (TAG_NORM, norm.into_bytes()),
            (TAG_AUX, aux.into_bytes()),
        ]))
    }
}
