//! The shared fit preamble: every baseline normalizes its training matrix
//! the same way and guards its inputs the same way. Hoisting the plumbing
//! here keeps the method files about the *method*.

use crate::serve::{sanitize_fit_features, FitError, InputPolicy};
use fsda_data::normalize::NormKind;
use fsda_data::{Dataset, Normalizer};
use fsda_linalg::Matrix;

/// Fits a z-score normalizer on `fit_on` and returns the normalized
/// training matrix plus the fitted normalizer. Most baselines follow
/// "their suggested normalization", which is standardization.
pub(crate) fn zscore_fit(fit_on: &Matrix) -> (Matrix, Normalizer) {
    let norm = Normalizer::fit(fit_on, NormKind::ZScore);
    (norm.transform(fit_on), norm)
}

/// Guarded-fit preamble shared by every [`super::DriftMitigator`]:
/// sanitizes the source and shot features under `policy` and rebuilds the
/// datasets when cells were repaired. `None` entries mean "use the original
/// dataset unchanged" (the clean path allocates nothing).
///
/// # Errors
///
/// [`FitError::CorruptSource`] / [`FitError::CorruptShots`] localize the
/// first non-finite cell under [`InputPolicy::Reject`].
pub(crate) fn sanitize_fit_pair(
    source: &Dataset,
    target_shots: &Dataset,
    policy: InputPolicy,
) -> std::result::Result<(Option<Dataset>, Option<Dataset>), FitError> {
    let repaired_src = sanitize_fit_features(source.features(), policy)
        .map_err(|(row, col)| FitError::CorruptSource { row, col })?;
    let repaired_shots = sanitize_fit_features(target_shots.features(), policy)
        .map_err(|(row, col)| FitError::CorruptShots { row, col })?;
    let src = match repaired_src {
        Some(features) => Some(
            Dataset::new(features, source.labels().to_vec(), source.num_classes())
                .map_err(|e| FitError::Core(e.into()))?,
        ),
        None => None,
    };
    let shots = match repaired_shots {
        Some(features) => Some(
            Dataset::new(
                features,
                target_shots.labels().to_vec(),
                target_shots.num_classes(),
            )
            .map_err(|e| FitError::Core(e.into()))?,
        ),
        None => None,
    };
    Ok((src, shots))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn zscore_fit_standardizes_columns() {
        let train = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 5.0], &[4.0, 3.0]]);
        let (normalized, norm) = zscore_fit(&train);
        for c in 0..normalized.cols() {
            let col = normalized.col(c);
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12, "column {c} mean {mean}");
        }
        // The returned normalizer reproduces the training transform.
        assert_eq!(norm.transform(&train), normalized);
    }

    #[test]
    fn sanitize_pair_localizes_by_dataset() {
        let good = Dataset::new(Matrix::from_rows(&[&[1.0], &[2.0]]), vec![0, 1], 2).unwrap();
        let bad = Dataset::new(Matrix::from_rows(&[&[f64::NAN], &[2.0]]), vec![0, 1], 2).unwrap();
        assert!(matches!(
            sanitize_fit_pair(&bad, &good, InputPolicy::Reject),
            Err(FitError::CorruptSource { row: 0, col: 0 })
        ));
        assert!(matches!(
            sanitize_fit_pair(&good, &bad, InputPolicy::Reject),
            Err(FitError::CorruptShots { row: 0, col: 0 })
        ));
        let (src, shots) = sanitize_fit_pair(&good, &good, InputPolicy::Reject).unwrap();
        assert!(
            src.is_none() && shots.is_none(),
            "clean pair allocates nothing"
        );
        let (src, _) = sanitize_fit_pair(&bad, &good, InputPolicy::ImputeSourceMean).unwrap();
        assert_eq!(src.unwrap().features().get(0, 0), 2.0);
    }
}
