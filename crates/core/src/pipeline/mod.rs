//! The composable stage pipeline and the unified mitigation interface.
//!
//! The paper's central claim is that drift mitigation is *model-agnostic*:
//! separation, reconstruction, and classification are independent stages
//! that compose with any downstream classifier. This module makes that
//! compositionality a first-class API instead of an implementation detail:
//!
//! - [`stage`] defines the per-stage traits ([`SeparatorStage`],
//!   [`ReconstructorStage`], [`ClassifierStage`]) over [`Matrix`] batches,
//!   so the building blocks of a pipeline can be named, swapped, and tested
//!   in isolation.
//! - [`DriftMitigator`] is the uniform end-to-end interface — `fit`,
//!   `try_fit`, `predict`, `predict_batch`, `try_predict_batch`,
//!   `to_bytes`, `health` — implemented by [`crate::FsAdapter`],
//!   [`crate::FsGanAdapter`], and every baseline via
//!   [`BaselineMitigator`].
//! - [`registry`] turns a [`Method`] into a boxed mitigator
//!   ([`Method::build`]) and restores one from artifact bytes
//!   ([`restore`]), replacing per-call-site `match` dispatch.
//! - [`fit_common`] hoists the normalization preamble every baseline used
//!   to copy-paste.
//!
//! # Serving without naming types
//!
//! ```no_run
//! use fsda_core::adapter::AdapterConfig;
//! use fsda_core::pipeline::DriftMitigator;
//! use fsda_core::Method;
//! use fsda_data::fewshot::few_shot_subset;
//! use fsda_data::synth5gc::Synth5gc;
//! use fsda_linalg::SeededRng;
//!
//! let bundle = Synth5gc::small().generate(1)?;
//! let mut rng = SeededRng::new(2);
//! let shots = few_shot_subset(&bundle.target_pool, 5, &mut rng)?;
//! let mut mitigator = Method::FsGan.build(&AdapterConfig::quick(), 3);
//! mitigator.fit(&bundle.source_train, &shots)?;
//! let bytes = mitigator.to_bytes()?;
//! let served = fsda_core::pipeline::restore(&bytes)?;
//! let pred = served.predict_batch(bundle.target_test.features(), None);
//! # let _ = pred;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baseline;
pub mod fit_common;
pub(crate) mod observe;
pub mod registry;
pub mod stage;

pub use baseline::BaselineMitigator;
pub use registry::restore;
pub use stage::{ClassifierStage, ReconstructorStage, SeparatorStage, Stage};

use crate::method::Method;
use crate::serve::{FitError, GuardConfig, ServeError};
use crate::Result;
use fsda_data::Dataset;
use fsda_linalg::Matrix;
use fsda_models::InferPrecision;

/// The uniform end-to-end interface of every drift-mitigation method.
///
/// A mitigator is built unfitted (via [`Method::build`] or a concrete
/// constructor), trained once with [`DriftMitigator::fit`] /
/// [`DriftMitigator::try_fit`], and then serves predictions on raw
/// (unnormalized) target batches. The trait is object-safe, so experiments,
/// serving, and persistence all operate on `Box<dyn DriftMitigator>`
/// without naming concrete types; [`restore`] brings an artifact back as
/// one.
///
/// Two prediction entry points exist because the FS+GAN family is
/// stochastic at inference: [`DriftMitigator::predict`] is the experiment
/// path (one noise draw per batch, Eq. 12's M = 1), while
/// [`DriftMitigator::predict_batch`] is the serving path (one independent
/// noise seed per row, bit-identical at every thread count). Deterministic
/// mitigators serve both from the same code path.
///
/// The trait requires `Send + Sync`: a fitted mitigator is immutable at
/// serving time (all prediction entry points take `&self` and no
/// implementation uses interior mutability), so the multi-tenant server can
/// share one artifact across its shard threads and hot-swap it without
/// copying (see the `fsda-serve` crate).
pub trait DriftMitigator: std::fmt::Debug + Send + Sync {
    /// The [`Method`] this mitigator implements.
    fn method(&self) -> Method;

    /// Whether the mitigator has been fitted (or restored from an
    /// artifact).
    fn is_fitted(&self) -> bool;

    /// Number of classes.
    ///
    /// # Panics
    ///
    /// Panics when the mitigator has not been fitted.
    fn num_classes(&self) -> usize;

    /// Trains the mitigator from source data and the few target shots.
    ///
    /// # Errors
    ///
    /// Propagates separation, reconstruction, and training failures.
    fn fit(&mut self, source: &Dataset, target_shots: &Dataset) -> Result<()>;

    /// Guarded variant of [`DriftMitigator::fit`]: validates both training
    /// sets against `guard.policy` before fitting.
    ///
    /// # Errors
    ///
    /// [`FitError::CorruptSource`] / [`FitError::CorruptShots`] localize
    /// the first non-finite training cell under
    /// [`crate::InputPolicy::Reject`]; everything the infallible path
    /// raises arrives as [`FitError::Core`].
    fn try_fit(
        &mut self,
        source: &Dataset,
        target_shots: &Dataset,
        guard: &GuardConfig,
    ) -> std::result::Result<(), FitError> {
        let (src, shots) = fit_common::sanitize_fit_pair(source, target_shots, guard.policy)?;
        self.fit(
            src.as_ref().unwrap_or(source),
            shots.as_ref().unwrap_or(target_shots),
        )?;
        Ok(())
    }

    /// Predicts labels for raw target features (the experiment path; for
    /// the FS+GAN family this is one Monte-Carlo draw for the whole batch).
    ///
    /// # Panics
    ///
    /// Panics when the mitigator has not been fitted or on a column-count
    /// mismatch.
    fn predict(&self, features: &Matrix) -> Vec<usize>;

    /// Batched serving prediction. For the FS+GAN family this uses one
    /// independent noise seed per row and parallelizes over row chunks
    /// (bit-identical at every thread count); deterministic mitigators
    /// ignore `threads`.
    ///
    /// # Panics
    ///
    /// As [`DriftMitigator::predict`].
    fn predict_batch(&self, features: &Matrix, threads: Option<usize>) -> Vec<usize> {
        let _ = threads;
        self.predict(features)
    }

    /// Guarded variant of [`DriftMitigator::predict_batch`]: validates the
    /// batch (rejecting or repairing corrupt cells per `guard`) before
    /// prediction.
    ///
    /// # Errors
    ///
    /// [`ServeError::DimensionMismatch`] on a column-count mismatch, and
    /// the localized [`ServeError`] of the first corrupt cell under
    /// [`crate::InputPolicy::Reject`].
    fn try_predict_batch(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
    ) -> std::result::Result<Vec<usize>, ServeError>;

    /// [`DriftMitigator::predict_batch`] at an explicit numeric precision.
    ///
    /// [`InferPrecision::F64Exact`] (the default everywhere) must be
    /// bit-identical to `predict_batch`; [`InferPrecision::F32Fast`] lets
    /// mitigators with a compiled inference plan run the single-precision
    /// kernels, trading a small bounded divergence for throughput. The
    /// default implementation ignores the hint and serves the exact path,
    /// so baselines without a fast path stay correct.
    ///
    /// Every entry increments the
    /// `pipeline.predict.precision.{f64_exact,f32_fast}` counter.
    ///
    /// # Panics
    ///
    /// As [`DriftMitigator::predict_batch`].
    fn predict_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        precision: InferPrecision,
    ) -> Vec<usize> {
        observe::note_precision(precision);
        self.predict_batch(features, threads)
    }

    /// [`DriftMitigator::try_predict_batch`] at an explicit numeric
    /// precision; the serving precision policy enters here. The default
    /// ignores the hint (exact path); see
    /// [`DriftMitigator::predict_batch_with`] for the contract.
    ///
    /// # Errors
    ///
    /// As [`DriftMitigator::try_predict_batch`].
    fn try_predict_batch_with(
        &self,
        features: &Matrix,
        threads: Option<usize>,
        guard: &GuardConfig,
        precision: InferPrecision,
    ) -> std::result::Result<Vec<usize>, ServeError> {
        observe::note_precision(precision);
        self.try_predict_batch(features, threads, guard)
    }

    /// Serializes the fitted mitigator into a versioned artifact (see
    /// [`crate::persist`] for the container format). [`restore`] reverses
    /// this for every registered method.
    ///
    /// # Errors
    ///
    /// Fails when the mitigator has not been fitted or a component does not
    /// support snapshots.
    fn to_bytes(&self) -> Result<Vec<u8>>;

    /// The domain-variant feature columns this mitigator identified during
    /// fitting, when it performs feature separation (`FS`, `FS+GAN` and its
    /// reconstruction variants). Baselines that never look at the causal
    /// structure return `None` — which scenario scoring treats as "nothing
    /// detected", distinct from an empty detection.
    fn variant_features(&self) -> Option<Vec<usize>> {
        None
    }

    /// One-line health summary for experiment logs and serving dashboards.
    fn health(&self) -> String {
        format!(
            "pipeline health: method={} status={}",
            self.method().label(),
            if self.is_fitted() {
                "fitted"
            } else {
                "unfitted"
            }
        )
    }
}
