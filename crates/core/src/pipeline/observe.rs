//! Scoped telemetry spans for the [`DriftMitigator`] call surface.
//!
//! Every mitigator implementation wraps its trait entry points in a
//! [`CallSpan`]: one per-method request counter on entry, one duration
//! histogram observation on drop. The span is fully disarmed when no
//! recorder is installed — no allocation, no `Instant::now()` — so the
//! unguarded serving hot path stays within the no-op overhead budget.
//!
//! [`DriftMitigator`]: crate::pipeline::DriftMitigator

use crate::method::Method;
use fsda_models::InferPrecision;
use fsda_telemetry as telemetry;
use std::time::Instant;

/// Which trait entry point a [`CallSpan`] wraps.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Call {
    /// `fit` / `try_fit`.
    Fit,
    /// `predict` (the experiment path).
    Predict,
    /// `predict_batch` (the unguarded serving path).
    PredictBatch,
    /// `try_predict_batch` (the guarded serving path).
    TryPredictBatch,
}

impl Call {
    fn counter_prefix(self) -> &'static str {
        match self {
            Call::Fit => "pipeline.fit.",
            Call::Predict | Call::PredictBatch | Call::TryPredictBatch => "pipeline.predict.",
        }
    }

    fn histogram(self) -> &'static str {
        match self {
            Call::Fit => "pipeline.fit.seconds",
            Call::Predict => "pipeline.predict.seconds",
            Call::PredictBatch => "pipeline.predict_batch.seconds",
            Call::TryPredictBatch => "serve.predict_batch.seconds",
        }
    }
}

/// Drop guard recording one mitigator call: request counters on
/// construction, latency on drop.
#[derive(Debug)]
pub(crate) struct CallSpan {
    histogram: &'static str,
    start: Option<Instant>,
}

/// Opens a span for one mitigator call. Increments
/// `pipeline.{fit,predict}.{method-slug}` (and `serve.requests.{slug}`
/// for the guarded path) immediately; the matching latency histogram is
/// recorded when the returned guard drops.
pub(crate) fn call_span(call: Call, method: Method) -> CallSpan {
    if !telemetry::enabled() {
        return CallSpan {
            histogram: call.histogram(),
            start: None,
        };
    }
    let slug = method.slug();
    telemetry::with_recorder(|rec| {
        rec.counter(&format!("{}{slug}", call.counter_prefix()), 1);
        if matches!(call, Call::TryPredictBatch) {
            rec.counter(&format!("serve.requests.{slug}"), 1);
        }
    });
    CallSpan {
        histogram: call.histogram(),
        start: Some(Instant::now()),
    }
}

impl Drop for CallSpan {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            telemetry::duration(self.histogram, start.elapsed().as_secs_f64());
        }
    }
}

/// Counts one precision-policied prediction entry:
/// `pipeline.predict.precision.{f64_exact,f32_fast}`. Called exactly once
/// per `*_with` entry point (trait defaults and adapter overrides alike),
/// so the two counters partition the precision-aware request stream.
pub(crate) fn note_precision(precision: InferPrecision) {
    if telemetry::enabled() {
        telemetry::counter(
            &format!("pipeline.predict.precision.{}", precision.label()),
            1,
        );
    }
}

/// Starts a per-stage fit timer when telemetry is enabled; pair with
/// [`finish_stage`].
pub(crate) fn start_stage() -> Option<Instant> {
    telemetry::enabled().then(Instant::now)
}

/// Records a `pipeline.fit.{stage}.seconds` observation for a timer opened
/// by [`start_stage`].
pub(crate) fn finish_stage(start: Option<Instant>, stage: &str) {
    if let Some(start) = start {
        telemetry::duration(
            &format!("pipeline.fit.{stage}.seconds"),
            start.elapsed().as_secs_f64(),
        );
    }
}
