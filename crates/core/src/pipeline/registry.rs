//! The method registry: one constructor and one restorer for every
//! [`Method`], so experiments, serving, and persistence dispatch through
//! `Box<dyn DriftMitigator>` instead of per-call-site `match` arms.

use crate::adapter::{
    peek_meta, AdapterConfig, FsAdapter, FsGanAdapter, ReconKind, ARTIFACT_CLASSIFIER,
    ARTIFACT_DANN, ARTIFACT_FADA, ARTIFACT_FMAA, ARTIFACT_FS, ARTIFACT_FSGAN, ARTIFACT_MATCHNET,
    ARTIFACT_PROTONET, ARTIFACT_SCL,
};
use crate::fs::FeatureSeparation;
use crate::method::Method;
use crate::pipeline::{BaselineMitigator, DriftMitigator};
use crate::serve::{FitError, GuardConfig};
use crate::{CoreError, Result};
use fsda_data::Dataset;
use fsda_gan::TrainOutcome;

/// The reconstructor family an FS+reconstruction method trains, or `None`
/// for methods whose pipeline has no reconstructor (FS and the baselines).
fn recon_kind(method: Method) -> Option<ReconKind> {
    match method {
        Method::FsGan => Some(ReconKind::Gan),
        Method::FsNoCond => Some(ReconKind::GanNoCond),
        Method::FsVae => Some(ReconKind::Vae),
        Method::FsVanillaAe => Some(ReconKind::VanillaAe),
        Method::Fs
        | Method::Cmt
        | Method::Icd
        | Method::SrcOnly
        | Method::TarOnly
        | Method::SourceAndTarget
        | Method::FineTune
        | Method::Coral
        | Method::Dann
        | Method::Scl
        | Method::MatchNet
        | Method::ProtoNet
        | Method::Fada
        | Method::Fmaa => None,
    }
}

impl Method {
    /// Builds an unfitted mitigator for this method. The FS family maps to
    /// the adapters (with `config.recon` overridden to match the method);
    /// every baseline maps to a [`BaselineMitigator`] that reuses
    /// `config.classifier` and `config.budget`.
    pub fn build(self, config: &AdapterConfig, seed: u64) -> Box<dyn DriftMitigator> {
        match recon_kind(self) {
            Some(recon) => {
                let config = AdapterConfig {
                    recon,
                    ..config.clone()
                };
                Box::new(FsGanAdapter::new(config, seed))
            }
            None if self == Method::Fs => Box::new(FsAdapter::new(config.clone(), seed)),
            None => Box::new(BaselineMitigator::new(self, config, seed)),
        }
    }
}

/// Fits an FS-family method behind a **precomputed** feature separation —
/// the warm re-fit path used by a drift controller that already
/// re-separated through a [`crate::fs::SeparationCache`] and only wants to
/// pay for the source-side training.
///
/// Returns `Ok(None)` for methods whose pipeline does not factor through a
/// feature separation (the baselines); those must be re-fit through
/// [`DriftMitigator::try_fit`] instead. The FS family gets `config.recon`
/// overridden to match the method, exactly as in [`Method::build`].
///
/// # Errors
///
/// [`FitError::CorruptSource`] when `source` holds a non-finite cell under
/// [`crate::InputPolicy::Reject`], [`FitError::ReconstructionDiverged`]
/// when the watchdog flags the reconstructor, and [`FitError::Core`] for
/// separation/shape/training failures.
pub fn try_fit_with_separation(
    method: Method,
    source: &Dataset,
    separation: FeatureSeparation,
    config: &AdapterConfig,
    seed: u64,
    guard: &GuardConfig,
) -> std::result::Result<Option<Box<dyn DriftMitigator>>, FitError> {
    let repaired = crate::serve::sanitize_fit_features(source.features(), guard.policy)
        .map_err(|(row, col)| FitError::CorruptSource { row, col })?;
    let owned;
    let source = match repaired {
        Some(features) => {
            owned = Dataset::new(features, source.labels().to_vec(), source.num_classes())
                .map_err(|e| FitError::Core(e.into()))?;
            &owned
        }
        None => source,
    };
    match recon_kind(method) {
        Some(recon) => {
            let config = AdapterConfig {
                recon,
                ..config.clone()
            };
            let adapter = FsGanAdapter::fit_with_separation(source, separation, &config, seed)?;
            if let Some(TrainOutcome::Diverged { epoch }) = adapter.train_outcome() {
                return Err(FitError::ReconstructionDiverged { epoch });
            }
            Ok(Some(Box::new(adapter)))
        }
        None if method == Method::Fs => Ok(Some(Box::new(FsAdapter::fit_with_separation(
            source, separation, config, seed,
        )?))),
        None => Ok(None),
    }
}

/// Restores any registered method's artifact as a boxed mitigator,
/// dispatching on the META kind byte (see [`peek_meta`]).
///
/// # Errors
///
/// Structural container failures and unknown artifact kinds surface as
/// [`CoreError::Persist`].
pub fn restore(bytes: &[u8]) -> Result<Box<dyn DriftMitigator>> {
    let (kind, _, _) = peek_meta(bytes)?;
    match kind {
        ARTIFACT_FS => Ok(Box::new(FsAdapter::from_bytes(bytes)?)),
        ARTIFACT_FSGAN => Ok(Box::new(FsGanAdapter::from_bytes(bytes)?)),
        ARTIFACT_CLASSIFIER | ARTIFACT_DANN | ARTIFACT_SCL | ARTIFACT_MATCHNET
        | ARTIFACT_PROTONET | ARTIFACT_FADA | ARTIFACT_FMAA => {
            Ok(Box::new(BaselineMitigator::from_bytes(bytes)?))
        }
        other => Err(CoreError::Persist(format!("unknown artifact kind {other}"))),
    }
}
