//! The method registry: one constructor and one restorer for every
//! [`Method`], so experiments, serving, and persistence dispatch through
//! `Box<dyn DriftMitigator>` instead of per-call-site `match` arms.

use crate::adapter::{
    peek_meta, AdapterConfig, FsAdapter, FsGanAdapter, ReconKind, ARTIFACT_CLASSIFIER,
    ARTIFACT_DANN, ARTIFACT_FS, ARTIFACT_FSGAN, ARTIFACT_MATCHNET, ARTIFACT_PROTONET, ARTIFACT_SCL,
};
use crate::method::Method;
use crate::pipeline::{BaselineMitigator, DriftMitigator};
use crate::{CoreError, Result};

impl Method {
    /// Builds an unfitted mitigator for this method. The FS family maps to
    /// the adapters (with `config.recon` overridden to match the method);
    /// every baseline maps to a [`BaselineMitigator`] that reuses
    /// `config.classifier` and `config.budget`.
    pub fn build(self, config: &AdapterConfig, seed: u64) -> Box<dyn DriftMitigator> {
        match self {
            Method::FsGan | Method::FsNoCond | Method::FsVae | Method::FsVanillaAe => {
                let recon = match self {
                    Method::FsGan => ReconKind::Gan,
                    Method::FsNoCond => ReconKind::GanNoCond,
                    Method::FsVae => ReconKind::Vae,
                    _ => ReconKind::VanillaAe,
                };
                let config = AdapterConfig {
                    recon,
                    ..config.clone()
                };
                Box::new(FsGanAdapter::new(config, seed))
            }
            Method::Fs => Box::new(FsAdapter::new(config.clone(), seed)),
            _ => Box::new(BaselineMitigator::new(self, config, seed)),
        }
    }
}

/// Restores any registered method's artifact as a boxed mitigator,
/// dispatching on the META kind byte (see [`peek_meta`]).
///
/// # Errors
///
/// Structural container failures and unknown artifact kinds surface as
/// [`CoreError::Persist`].
pub fn restore(bytes: &[u8]) -> Result<Box<dyn DriftMitigator>> {
    let (kind, _, _) = peek_meta(bytes)?;
    match kind {
        ARTIFACT_FS => Ok(Box::new(FsAdapter::from_bytes(bytes)?)),
        ARTIFACT_FSGAN => Ok(Box::new(FsGanAdapter::from_bytes(bytes)?)),
        ARTIFACT_CLASSIFIER | ARTIFACT_DANN | ARTIFACT_SCL | ARTIFACT_MATCHNET
        | ARTIFACT_PROTONET => Ok(Box::new(BaselineMitigator::from_bytes(bytes)?)),
        other => Err(CoreError::Persist(format!("unknown artifact kind {other}"))),
    }
}
