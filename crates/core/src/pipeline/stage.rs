//! Per-stage traits over [`Matrix`] batches.
//!
//! A fitted FS+GAN pipeline is three stages glued together:
//!
//! ```text
//! raw batch ──► SeparatorStage ──► (invariant, variant)
//!                    │                   │
//!                    │          ReconstructorStage
//!                    │                   │ variant-hat
//!                    └── reassemble ◄────┘
//!                           │
//!                    ClassifierStage ──► labels
//! ```
//!
//! The traits let each stage be named, swapped, and tested in isolation —
//! e.g. the Table II ablation swaps only the [`ReconstructorStage`]
//! (conditional GAN → VAE → vanilla AE) and the Table I model columns swap
//! only the [`ClassifierStage`]. The adapters' fitted components implement
//! them directly, so a pipeline can be taken apart without copying data.

use crate::fs::FeatureSeparation;
use fsda_linalg::Matrix;
use fsda_models::Classifier;

/// A named processing stage of a fitted pipeline.
pub trait Stage {
    /// Short stage name for logs and health lines.
    fn stage_name(&self) -> &'static str;
}

/// The separation stage: maps a raw batch into normalized invariant /
/// variant blocks and reassembles blocks into full-width batches.
pub trait SeparatorStage: Stage {
    /// Splits a raw batch into `(invariant, variant)` normalized blocks.
    fn split(&self, batch: &Matrix) -> (Matrix, Matrix);

    /// Reassembles invariant and variant blocks into a full-width batch in
    /// the original column order.
    fn reassemble(&self, invariant: &Matrix, variant: &Matrix) -> Matrix;
}

/// The reconstruction stage: generates source-like variant features from
/// invariant features.
pub trait ReconstructorStage: Stage {
    /// Generates a variant block for the given invariant block; `seed`
    /// drives the generator noise.
    fn reconstruct(&self, invariant: &Matrix, seed: u64) -> Matrix;

    /// Row-seeded variant of [`ReconstructorStage::reconstruct`]: row `r`
    /// uses `seeds[r]`, so chunking cannot change the output.
    fn reconstruct_rows(&self, invariant: &Matrix, seeds: &[u64]) -> Matrix;
}

/// The classification stage: maps normalized full-width batches to labels.
pub trait ClassifierStage: Stage {
    /// Hard class predictions.
    fn classify(&self, batch: &Matrix) -> Vec<usize>;

    /// Class-probability estimates, one row per sample.
    fn classify_proba(&self, batch: &Matrix) -> Matrix;
}

impl Stage for FeatureSeparation {
    fn stage_name(&self) -> &'static str {
        "separator"
    }
}

impl SeparatorStage for FeatureSeparation {
    fn split(&self, batch: &Matrix) -> (Matrix, Matrix) {
        self.split_normalized(batch)
    }

    fn reassemble(&self, invariant: &Matrix, variant: &Matrix) -> Matrix {
        FeatureSeparation::reassemble(self, invariant, variant)
    }
}

impl Stage for Box<dyn fsda_gan::Reconstructor> {
    fn stage_name(&self) -> &'static str {
        "reconstructor"
    }
}

impl ReconstructorStage for Box<dyn fsda_gan::Reconstructor> {
    fn reconstruct(&self, invariant: &Matrix, seed: u64) -> Matrix {
        self.as_ref().reconstruct(invariant, seed)
    }

    fn reconstruct_rows(&self, invariant: &Matrix, seeds: &[u64]) -> Matrix {
        self.as_ref().reconstruct_rows(invariant, seeds)
    }
}

impl Stage for Box<dyn Classifier> {
    fn stage_name(&self) -> &'static str {
        "classifier"
    }
}

impl ClassifierStage for Box<dyn Classifier> {
    fn classify(&self, batch: &Matrix) -> Vec<usize> {
        self.predict(batch)
    }

    fn classify_proba(&self, batch: &Matrix) -> Matrix {
        self.predict_proba(batch)
    }
}
