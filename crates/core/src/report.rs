//! Table formatting: renders experiment grids as the paper's tables and
//! prints paper-reported values next to measured ones.

use crate::experiment::GridEntry;
use crate::method::Method;
use fsda_models::ClassifierKind;
use std::fmt::Write as _;

/// Formats a Table-I-style block: rows are methods, columns are
/// `classifier × shots`, cells are `100 × F1`.
pub fn format_table1(title: &str, entries: &[GridEntry], shots: &[usize]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{:<16}", "Method");
    for &k in shots {
        for kind in ClassifierKind::ALL {
            let _ = write!(out, " {:>9}", format!("{}@{}", kind.label(), k));
        }
    }
    let _ = writeln!(out);
    // Preserve method order of first appearance.
    let mut methods: Vec<Method> = Vec::new();
    for e in entries {
        if !methods.contains(&e.method) {
            methods.push(e.method);
        }
    }
    for method in methods {
        let _ = write!(out, "{:<16}", method.label());
        for &k in shots {
            for kind in ClassifierKind::ALL {
                let cell = entries.iter().find(|e| {
                    e.method == method
                        && e.shots == k
                        && (e.classifier == Some(kind)
                            || (e.classifier.is_none() && kind == ClassifierKind::Tnet))
                });
                match cell {
                    Some(e) if e.classifier.is_some() => {
                        let _ = write!(out, " {:>9.1}", e.result.percent());
                    }
                    Some(e) => {
                        // Model-specific methods span the row; print once
                        // under TNet and dashes elsewhere.
                        let _ = write!(out, " {:>9.1}", e.result.percent());
                    }
                    None => {
                        let _ = write!(out, " {:>9}", "-");
                    }
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// A (paper, measured) pair for one cell of a table.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// The value reported in the paper (0–100 F1).
    pub paper: f64,
    /// The value we measured (0–100 F1).
    pub measured: f64,
}

impl Comparison {
    /// Absolute difference.
    pub fn gap(&self) -> f64 {
        (self.paper - self.measured).abs()
    }
}

/// Formats a labelled paper-vs-measured listing.
pub fn format_comparison(title: &str, rows: &[(String, Comparison)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} (paper vs measured, F1 x100) ==");
    let _ = writeln!(
        out,
        "{:<36} {:>8} {:>9} {:>7}",
        "Cell", "paper", "measured", "gap"
    );
    for (label, c) in rows {
        let _ = writeln!(
            out,
            "{:<36} {:>8.1} {:>9.1} {:>7.1}",
            label,
            c.paper,
            c.measured,
            c.gap()
        );
    }
    out
}

/// Renders a compact per-method mean over classifier columns (useful for
/// quick shape checks: who wins, by how much).
pub fn method_means(entries: &[GridEntry], shots: usize) -> Vec<(Method, f64)> {
    let mut methods: Vec<Method> = Vec::new();
    for e in entries {
        if e.shots == shots && !methods.contains(&e.method) {
            methods.push(e.method);
        }
    }
    methods
        .into_iter()
        .map(|m| {
            let cells: Vec<f64> = entries
                .iter()
                .filter(|e| e.method == m && e.shots == shots)
                .map(|e| e.result.percent())
                .collect();
            (m, fsda_linalg::stats::mean(&cells))
        })
        .collect()
}

/// One-line health summary of a fitted mitigator. Intended for experiment
/// logs and serving dashboards, so unstable training or pass-through
/// serving is visible instead of silently folded into the F1 numbers. The
/// FS+GAN adapter reports its reconstructor, training outcome, and
/// degraded-mode flag; other mitigators report method and fit status.
///
/// When the process-wide telemetry recorder aggregates (an installed
/// [`fsda_telemetry::InMemoryRecorder`]), the summary is followed by a
/// `telemetry:` block rendering every counter, gauge, duration histogram,
/// and event count recorded so far — the operational signal the paper's
/// live-loop deployment story calls for. With no recorder (or a streaming
/// sink) the output is the one-line summary, unchanged from 0.5.0.
pub fn format_pipeline_health(mitigator: &dyn crate::pipeline::DriftMitigator) -> String {
    let mut out = mitigator.health();
    let mut snapshot = None;
    fsda_telemetry::with_recorder(|rec| snapshot = rec.snapshot());
    if let Some(snapshot) = snapshot {
        if !snapshot.is_empty() {
            out.push_str("\ntelemetry:\n");
            for line in snapshot.render().lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// Serializes grid entries as CSV (`method,classifier,shots,mean_f1,std_f1`)
/// for external plotting.
pub fn grid_to_csv(entries: &[GridEntry]) -> String {
    let mut out = String::from("method,classifier,shots,mean_f1,std_f1\n");
    for e in entries {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.4}",
            e.method.label().replace(',', ";"),
            e.classifier.map(|c| c.label()).unwrap_or("own"),
            e.shots,
            e.result.mean_f1,
            e.result.std_f1
        );
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::experiment::CellResult;

    fn entry(
        method: Method,
        classifier: Option<ClassifierKind>,
        shots: usize,
        f1: f64,
    ) -> GridEntry {
        GridEntry {
            method,
            classifier,
            shots,
            result: CellResult {
                mean_f1: f1,
                std_f1: 0.0,
                runs: vec![f1],
            },
        }
    }

    #[test]
    fn table_contains_methods_and_values() {
        let entries = vec![
            entry(Method::FsGan, Some(ClassifierKind::Tnet), 5, 0.9),
            entry(Method::SrcOnly, Some(ClassifierKind::Tnet), 5, 0.1),
            entry(Method::Dann, None, 5, 0.6),
        ];
        let s = format_table1("5GC", &entries, &[5]);
        assert!(s.contains("FS+GAN (ours)"));
        assert!(s.contains("90.0"));
        assert!(s.contains("10.0"));
        assert!(s.contains("DANN"));
        assert!(s.contains('-'), "missing cells are dashes");
    }

    #[test]
    fn comparison_formatting() {
        let rows = vec![(
            "FS+GAN TNet k=1".to_string(),
            Comparison {
                paper: 89.7,
                measured: 85.0,
            },
        )];
        let s = format_comparison("Table I", &rows);
        assert!(s.contains("89.7"));
        assert!(s.contains("85.0"));
        assert!(s.contains("4.7"));
    }

    #[test]
    fn grid_csv_has_header_and_rows() {
        let entries = vec![
            entry(Method::FsGan, Some(ClassifierKind::Tnet), 5, 0.91),
            entry(Method::Dann, None, 5, 0.6),
        ];
        let csv = grid_to_csv(&entries);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("method,"));
        assert!(lines[1].contains("TNet"));
        assert!(lines[2].contains("own"));
        assert!(lines[1].contains("0.9100"));
    }

    #[test]
    fn method_means_average_columns() {
        let entries = vec![
            entry(Method::Fs, Some(ClassifierKind::Tnet), 5, 0.8),
            entry(Method::Fs, Some(ClassifierKind::Mlp), 5, 0.6),
        ];
        let means = method_means(&entries, 5);
        assert_eq!(means.len(), 1);
        assert!((means[0].1 - 70.0).abs() < 1e-9);
    }
}
