//! Deterministic retry/backoff schedules.
//!
//! One shared implementation for every path that retries a fallible stage
//! — today the closed-loop drift controller (`fsda_serve::controller`),
//! tomorrow any fit path that wants bounded, jittered retries. The
//! schedule is exponential with a cap and **seeded** jitter: the same
//! [`RetryPolicy`] always produces the same delays, so tests and replay
//! runs stay bit-reproducible while concurrent controllers (different
//! seeds) still decorrelate their retry storms.

use fsda_linalg::SeededRng;
use std::time::Duration;

/// An exponential-backoff policy with deterministic seeded jitter.
///
/// `max_attempts` counts *attempts*, not retries: a policy with
/// `max_attempts = 3` yields two delays (between attempts 1→2 and 2→3).
/// Each delay is `min(cap, base · factor^k)` shrunk by up to
/// `jitter` fraction, where the shrink factor is drawn from the policy's
/// own seeded RNG — never the global clock or thread-local entropy.
///
/// # Example
///
/// ```
/// use fsda_core::retry::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy {
///     max_attempts: 4,
///     base: Duration::from_millis(100),
///     factor: 2.0,
///     cap: Duration::from_millis(350),
///     jitter: 0.0,
///     seed: 7,
/// };
/// let delays: Vec<Duration> = policy.schedule().collect();
/// assert_eq!(delays.len(), 3); // 4 attempts → 3 waits
/// assert_eq!(delays[0], Duration::from_millis(100));
/// assert_eq!(delays[1], Duration::from_millis(200));
/// assert_eq!(delays[2], Duration::from_millis(350)); // capped
/// ```
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts allowed (≥ 1); the schedule yields `max_attempts - 1`
    /// delays.
    pub max_attempts: usize,
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplicative growth per retry (values < 1.0 are clamped to 1.0).
    pub factor: f64,
    /// Upper bound applied before jitter.
    pub cap: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a seeded draw
    /// from `[1 - jitter, 1]`. Shrinking (never growing) keeps every delay
    /// under `cap`.
    pub jitter: f64,
    /// Seed of the jitter stream; same seed ⇒ same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(100),
            factor: 2.0,
            cap: Duration::from_secs(5),
            jitter: 0.2,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A zero-wait policy: `attempts` tries, no delay between them. Used by
    /// tests and by callers whose stages are already deadline-bounded.
    pub fn immediate(attempts: usize) -> Self {
        RetryPolicy {
            max_attempts: attempts.max(1),
            base: Duration::ZERO,
            factor: 1.0,
            cap: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// The delay sequence as an iterator — `max_attempts - 1` items.
    pub fn schedule(&self) -> BackoffSchedule {
        BackoffSchedule {
            remaining: self.max_attempts.saturating_sub(1),
            next: self.base.as_secs_f64(),
            factor: self.factor.max(1.0),
            cap: self.cap.as_secs_f64(),
            jitter: self.jitter.clamp(0.0, 1.0),
            rng: SeededRng::new(self.seed),
        }
    }

    /// The full delay sequence, materialized.
    pub fn delays(&self) -> Vec<Duration> {
        self.schedule().collect()
    }
}

/// Iterator over a [`RetryPolicy`]'s delays (see [`RetryPolicy::schedule`]).
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    remaining: usize,
    next: f64,
    factor: f64,
    cap: f64,
    jitter: f64,
    rng: SeededRng,
}

impl Iterator for BackoffSchedule {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let capped = self.next.min(self.cap);
        // Draw even when jitter is 0 so toggling jitter never re-times the
        // *later* draws of the same seed.
        let shrink = 1.0 - self.jitter * self.rng.uniform();
        self.next *= self.factor;
        Some(Duration::from_secs_f64(capped * shrink))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for BackoffSchedule {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn policy(jitter: f64, seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(50),
            factor: 2.0,
            cap: Duration::from_millis(300),
            jitter,
            seed,
        }
    }

    #[test]
    fn unjittered_schedule_is_exponential_and_capped() {
        let delays = policy(0.0, 0).delays();
        assert_eq!(
            delays,
            vec![
                Duration::from_millis(50),
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(300), // 400 capped to 300
            ]
        );
    }

    #[test]
    fn same_seed_same_schedule() {
        assert_eq!(policy(0.3, 42).delays(), policy(0.3, 42).delays());
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = policy(0.5, 1).delays();
        let b = policy(0.5, 2).delays();
        assert_ne!(a, b, "distinct seeds should produce distinct jitter");
    }

    #[test]
    fn jitter_only_shrinks_and_respects_cap() {
        for seed in 0..20 {
            let unjittered = policy(0.0, seed).delays();
            let jittered = policy(0.4, seed).delays();
            for (j, u) in jittered.iter().zip(&unjittered) {
                assert!(j <= u, "jitter must never extend a delay: {j:?} > {u:?}");
                assert!(*j >= u.mul_f64(0.6 - 1e-9), "shrink bounded by jitter");
                assert!(*j <= Duration::from_millis(300));
            }
        }
    }

    #[test]
    fn attempt_accounting() {
        assert_eq!(policy(0.0, 0).schedule().len(), 4);
        assert_eq!(RetryPolicy::immediate(1).delays(), Vec::<Duration>::new());
        assert_eq!(
            RetryPolicy::immediate(3).delays(),
            vec![Duration::ZERO, Duration::ZERO]
        );
        // Degenerate zero-attempt policy still yields no delays.
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(p.delays().is_empty());
    }

    #[test]
    fn jitter_is_clamped() {
        let mut p = policy(7.5, 3); // silly over-range jitter
        p.cap = Duration::from_secs(1);
        for d in p.delays() {
            assert!(d <= Duration::from_secs(1));
        }
    }
}
