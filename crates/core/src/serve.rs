//! Serving guardrails: input validation policies and typed errors for the
//! fallible serving entry points.
//!
//! Deployed pipelines ingest telemetry that the training code never saw:
//! collectors emit NaN for missed counters, overflow to Inf, or ship rows
//! whose values sit absurdly far outside the source support. The infallible
//! serving methods ([`crate::FsGanAdapter::reconstruct_batch`] and friends)
//! are garbage-in/garbage-out by contract; the `try_*` variants accept a
//! [`GuardConfig`] that either rejects such rows with a localized
//! [`ServeError`] or repairs them in place ([`InputPolicy::ImputeSourceMean`]
//! / [`InputPolicy::Clamp`]) before the batch reaches the generator.
//!
//! All range checks happen in *normalized* space: the source-fitted
//! normalizer maps the source support to `[-1, 1]`, so a normalized
//! magnitude above [`GuardConfig::max_abs_normalized`] means the raw value
//! sits that many half-ranges away from the source distribution — far
//! beyond anything drift produces, and a reliable corruption signal.

use crate::CoreError;
use fsda_data::normalize::Normalizer;
use fsda_linalg::Matrix;

/// What to do with a NaN/Inf or wildly out-of-range input cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputPolicy {
    /// Fail the whole batch with a localized [`ServeError`] (default).
    #[default]
    Reject,
    /// Replace the offending cell with the source-domain column center
    /// (the normalizer's per-column offset, which normalizes to `0.0`).
    ImputeSourceMean,
    /// Clamp the offending cell to the edge of the admissible range
    /// (`offset ± max_abs_normalized × scale` in raw units). NaN carries no
    /// direction to clamp toward and is imputed to the column center.
    Clamp,
}

/// Guardrail configuration for the `try_*` serving entry points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// How to handle corrupt cells.
    pub policy: InputPolicy,
    /// Largest admissible |value| in normalized space. Source data maps to
    /// `[-1, 1]`; drifted-but-genuine telemetry lands within a few units,
    /// so the permissive default of `1e6` only fires on actual corruption.
    pub max_abs_normalized: f64,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            policy: InputPolicy::Reject,
            max_abs_normalized: 1e6,
        }
    }
}

impl GuardConfig {
    /// Builder-style policy override.
    pub fn with_policy(mut self, policy: InputPolicy) -> Self {
        self.policy = policy;
        self
    }
}

/// Errors raised by the fallible serving entry points, localized to the
/// first offending cell.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The batch has the wrong number of feature columns.
    DimensionMismatch {
        /// Feature count the pipeline was fitted with.
        expected: usize,
        /// Feature count of the offending batch.
        got: usize,
    },
    /// A NaN/Inf input cell under [`InputPolicy::Reject`].
    NonFinite {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
    },
    /// An input cell beyond the normalized-range limit under
    /// [`InputPolicy::Reject`].
    OutOfRange {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
        /// The cell's normalized value.
        value: f64,
        /// The configured limit it exceeded.
        limit: f64,
    },
    /// The pipeline itself produced a non-finite value — corrupt weights or
    /// a diverged reconstructor; the artifact should be retrained.
    NonFiniteOutput {
        /// Row of the offending output cell.
        row: usize,
        /// Column of the offending output cell.
        col: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} feature columns, got {got}")
            }
            ServeError::NonFinite { row, col } => {
                write!(f, "non-finite input at row {row}, column {col}")
            }
            ServeError::OutOfRange {
                row,
                col,
                value,
                limit,
            } => write!(
                f,
                "input at row {row}, column {col} normalizes to {value:.3e}, \
                 beyond the limit {limit:.3e}"
            ),
            ServeError::NonFiniteOutput { row, col } => {
                write!(
                    f,
                    "pipeline produced non-finite output at row {row}, column {col}"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ServeError> for CoreError {
    fn from(e: ServeError) -> Self {
        CoreError::InvalidInput(e.to_string())
    }
}

/// Errors raised by the fallible training entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// A non-finite cell in the source training data under
    /// [`InputPolicy::Reject`].
    CorruptSource {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
    },
    /// A non-finite cell in the target shots under [`InputPolicy::Reject`].
    CorruptShots {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
    },
    /// The reconstructor's guarded training diverged even after the
    /// watchdog exhausted its rollbacks; the pipeline is not serviceable.
    ReconstructionDiverged {
        /// Epoch (0-based) at which training gave up.
        epoch: usize,
    },
    /// Any other pipeline failure, unchanged from the infallible path.
    Core(CoreError),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::CorruptSource { row, col } => {
                write!(f, "non-finite source cell at row {row}, column {col}")
            }
            FitError::CorruptShots { row, col } => {
                write!(f, "non-finite target-shot cell at row {row}, column {col}")
            }
            FitError::ReconstructionDiverged { epoch } => {
                write!(f, "reconstructor training diverged at epoch {epoch}")
            }
            FitError::Core(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FitError {}

impl From<CoreError> for FitError {
    fn from(e: CoreError) -> Self {
        FitError::Core(e)
    }
}

impl From<FitError> for CoreError {
    fn from(e: FitError) -> Self {
        match e {
            FitError::Core(inner) => inner,
            other => CoreError::InvalidInput(other.to_string()),
        }
    }
}

/// Validates a serving batch against the source-fitted normalizer and the
/// guard policy. Returns `None` when the batch is already clean (the caller
/// keeps using its own reference — the hot path allocates nothing) or
/// `Some(repaired)` when cells were imputed/clamped.
///
/// # Errors
///
/// [`ServeError::DimensionMismatch`] on a column-count mismatch, and under
/// [`InputPolicy::Reject`] the localized [`ServeError::NonFinite`] /
/// [`ServeError::OutOfRange`] of the first offending cell.
pub(crate) fn sanitize_batch(
    features: &Matrix,
    normalizer: &Normalizer,
    guard: &GuardConfig,
) -> Result<Option<Matrix>, ServeError> {
    if features.cols() != normalizer.num_features() {
        return Err(rejected(ServeError::DimensionMismatch {
            expected: normalizer.num_features(),
            got: features.cols(),
        }));
    }
    let limit = guard.max_abs_normalized;
    let offset = normalizer.offset();
    let scale = normalizer.scale();
    let mut repaired: Option<Matrix> = None;
    // Repair tallies, emitted as aggregates once per batch; the clean path
    // (no corrupt cells) emits nothing.
    let mut imputed = 0u64;
    let mut clamped = 0u64;
    let mut repaired_rows = 0u64;
    let mut last_repaired_row = usize::MAX;
    for r in 0..features.rows() {
        for c in 0..features.cols() {
            let v = features.get(r, c);
            let fixed = if !v.is_finite() {
                match guard.policy {
                    InputPolicy::Reject => {
                        return Err(rejected(ServeError::NonFinite { row: r, col: c }))
                    }
                    InputPolicy::ImputeSourceMean => {
                        imputed += 1;
                        offset[c]
                    }
                    InputPolicy::Clamp => {
                        if v == f64::INFINITY {
                            clamped += 1;
                            offset[c] + limit * scale[c]
                        } else if v == f64::NEG_INFINITY {
                            clamped += 1;
                            offset[c] - limit * scale[c]
                        } else {
                            // NaN carries no direction; imputed, not clamped.
                            imputed += 1;
                            offset[c]
                        }
                    }
                }
            } else {
                let t = (v - offset[c]) / scale[c];
                if t.abs() <= limit {
                    continue;
                }
                match guard.policy {
                    InputPolicy::Reject => {
                        return Err(rejected(ServeError::OutOfRange {
                            row: r,
                            col: c,
                            value: t,
                            limit,
                        }))
                    }
                    InputPolicy::ImputeSourceMean => {
                        imputed += 1;
                        offset[c]
                    }
                    InputPolicy::Clamp => {
                        clamped += 1;
                        offset[c] + t.signum() * limit * scale[c]
                    }
                }
            };
            if r != last_repaired_row {
                last_repaired_row = r;
                repaired_rows += 1;
            }
            repaired
                .get_or_insert_with(|| features.clone())
                .set(r, c, fixed);
        }
    }
    if imputed + clamped > 0 {
        fsda_telemetry::with_recorder(|rec| {
            if imputed > 0 {
                rec.counter("serve.cells_imputed", imputed);
            }
            if clamped > 0 {
                rec.counter("serve.cells_clamped", clamped);
            }
            rec.counter("serve.rows_repaired", repaired_rows);
        });
    }
    Ok(repaired)
}

/// Counts a guarded-serving rejection before the error propagates; keeps
/// every `return Err(...)` site in [`sanitize_batch`] one expression.
pub(crate) fn rejected(e: ServeError) -> ServeError {
    fsda_telemetry::counter("serve.batches_rejected", 1);
    e
}

/// Fit-time variant of [`sanitize_batch`]: no normalizer exists yet, so
/// only non-finite cells are handled. Repair replaces a corrupt cell with
/// the mean of its column's finite entries (`0.0` when the whole column is
/// corrupt). Returns the location of the first corrupt cell under
/// [`InputPolicy::Reject`] as `Err((row, col))`.
pub(crate) fn sanitize_fit_features(
    features: &Matrix,
    policy: InputPolicy,
) -> Result<Option<Matrix>, (usize, usize)> {
    let mut repaired: Option<Matrix> = None;
    let mut col_means: Option<Vec<f64>> = None;
    for r in 0..features.rows() {
        for c in 0..features.cols() {
            if features.get(r, c).is_finite() {
                continue;
            }
            if policy == InputPolicy::Reject {
                return Err((r, c));
            }
            let means = col_means.get_or_insert_with(|| {
                (0..features.cols())
                    .map(|j| {
                        let col = features.col(j);
                        let finite: Vec<f64> =
                            col.iter().copied().filter(|v| v.is_finite()).collect();
                        if finite.is_empty() {
                            0.0
                        } else {
                            finite.iter().sum::<f64>() / finite.len() as f64
                        }
                    })
                    .collect()
            });
            let fill = means[c];
            repaired
                .get_or_insert_with(|| features.clone())
                .set(r, c, fill);
        }
    }
    Ok(repaired)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_data::normalize::NormKind;

    fn norm() -> Normalizer {
        // Two columns, both spanning [0, 10] -> offset 5, scale 5.
        let train = Matrix::from_rows(&[&[0.0, 0.0], &[10.0, 10.0]]);
        Normalizer::fit(&train, NormKind::MinMaxSymmetric)
    }

    #[test]
    fn clean_batch_passes_without_allocation() {
        let batch = Matrix::from_rows(&[&[1.0, 2.0], &[9.0, 4.0]]);
        let out = sanitize_batch(&batch, &norm(), &GuardConfig::default()).unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn dimension_mismatch_is_localized() {
        let batch = Matrix::zeros(2, 3);
        match sanitize_batch(&batch, &norm(), &GuardConfig::default()) {
            Err(ServeError::DimensionMismatch {
                expected: 2,
                got: 3,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reject_reports_first_bad_cell() {
        let batch = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, f64::NAN]]);
        match sanitize_batch(&batch, &norm(), &GuardConfig::default()) {
            Err(ServeError::NonFinite { row: 1, col: 1 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn reject_flags_out_of_range() {
        let guard = GuardConfig {
            max_abs_normalized: 10.0,
            ..GuardConfig::default()
        };
        // 5 + 10*5 = 55 is the raw limit; 100 normalizes to 19.
        let batch = Matrix::from_rows(&[&[100.0, 2.0]]);
        match sanitize_batch(&batch, &norm(), &guard) {
            Err(ServeError::OutOfRange {
                row: 0,
                col: 0,
                value,
                limit,
            }) => {
                assert_eq!(limit, 10.0);
                assert!((value - 19.0).abs() < 1e-12);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn impute_replaces_with_column_center() {
        let guard = GuardConfig::default().with_policy(InputPolicy::ImputeSourceMean);
        let batch = Matrix::from_rows(&[&[f64::NAN, 2.0]]);
        let out = sanitize_batch(&batch, &norm(), &guard).unwrap().unwrap();
        assert_eq!(out.get(0, 0), 5.0);
        assert_eq!(out.get(0, 1), 2.0, "clean cells untouched");
    }

    #[test]
    fn clamp_respects_sign_and_limit() {
        let guard = GuardConfig {
            policy: InputPolicy::Clamp,
            max_abs_normalized: 2.0,
        };
        let batch = Matrix::from_rows(&[&[f64::INFINITY, f64::NEG_INFINITY], &[1e9, f64::NAN]]);
        let out = sanitize_batch(&batch, &norm(), &guard).unwrap().unwrap();
        assert_eq!(out.get(0, 0), 15.0); // 5 + 2*5
        assert_eq!(out.get(0, 1), -5.0); // 5 - 2*5
        assert_eq!(out.get(1, 0), 15.0); // finite but huge: clamped
        assert_eq!(out.get(1, 1), 5.0); // NaN: column center
    }

    #[test]
    fn fit_sanitizer_imputes_finite_column_mean() {
        let m = Matrix::from_rows(&[&[1.0, f64::NAN], &[3.0, 4.0]]);
        assert_eq!(sanitize_fit_features(&m, InputPolicy::Reject), Err((0, 1)));
        let out = sanitize_fit_features(&m, InputPolicy::ImputeSourceMean)
            .unwrap()
            .unwrap();
        assert_eq!(out.get(0, 1), 4.0, "mean of the finite entries");
        let clean = Matrix::from_rows(&[&[1.0], &[2.0]]);
        assert!(sanitize_fit_features(&clean, InputPolicy::Reject)
            .unwrap()
            .is_none());
    }

    #[test]
    fn errors_display_with_locations() {
        assert!(ServeError::NonFinite { row: 3, col: 7 }
            .to_string()
            .contains("row 3"));
        assert!(ServeError::DimensionMismatch {
            expected: 4,
            got: 2
        }
        .to_string()
        .contains('4'));
        assert!(FitError::ReconstructionDiverged { epoch: 5 }
            .to_string()
            .contains('5'));
        let core: CoreError = FitError::CorruptShots { row: 1, col: 2 }.into();
        assert!(matches!(core, CoreError::InvalidInput(_)));
        let core: CoreError = FitError::Core(CoreError::Persist("x".into())).into();
        assert!(matches!(core, CoreError::Persist(_)));
    }
}
