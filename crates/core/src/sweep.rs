//! Registry-driven execution of one drift-scenario cell.
//!
//! The scenario fuzzing harness (`fsda_data::scenario` + the
//! `scenario_sweep` bench runner) needs one well-defined unit of work:
//! *fit one registry method on one generated scenario and score it* —
//! end-to-end macro-F1 on the target test set, plus feature-shift
//! recall/precision against the scenario's recorded ground truth when the
//! method performs feature separation. [`run_scenario_cell`] is that unit;
//! it goes through [`Method::build`] so every current and future registry
//! method is sweepable without per-method code.

use crate::adapter::AdapterConfig;
use crate::method::Method;
use crate::Result;
use fsda_causal::score::{score_target_recovery, RecoveryScore};
use fsda_data::Dataset;
use fsda_models::metrics::macro_f1;

/// What one (scenario, method) cell produced.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The method that ran.
    pub method: Method,
    /// End-to-end macro-F1 on the target test set.
    pub macro_f1: f64,
    /// The variant feature columns the method detected, when it performs
    /// feature separation ([`crate::DriftMitigator::variant_features`]);
    /// `None` for baselines with no causal front-end.
    pub detected_variant: Option<Vec<usize>>,
    /// Feature-shift recovery score against the scenario's ground truth;
    /// `None` exactly when `detected_variant` is.
    pub recovery: Option<RecoveryScore>,
}

/// Fits `method` on one scenario cell and scores it.
///
/// The run is a pure function of its arguments: the mitigator is built
/// with the given `seed` and prediction uses the single-threaded batch
/// path, so a cell can itself be fanned across a thread pool without
/// losing bit-identical results.
///
/// # Errors
///
/// Propagates fit failures ([`crate::CoreError`]) from the underlying
/// method.
pub fn run_scenario_cell(
    method: Method,
    source: &Dataset,
    target_shots: &Dataset,
    target_test: &Dataset,
    ground_truth_variant: &[usize],
    config: &AdapterConfig,
    seed: u64,
) -> Result<CellOutcome> {
    let mut mitigator = method.build(config, seed);
    mitigator.fit(source, target_shots)?;
    let predictions = mitigator.predict_batch(target_test.features(), Some(1));
    let f1 = macro_f1(
        target_test.labels(),
        &predictions,
        target_test.num_classes(),
    );
    let detected = mitigator.variant_features();
    let recovery = detected
        .as_deref()
        .map(|d| score_target_recovery(d, ground_truth_variant));
    Ok(CellOutcome {
        method,
        macro_f1: f1,
        detected_variant: detected,
        recovery,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_data::fewshot::few_shot_subset;
    use fsda_data::scenario::ScenarioSpec;
    use fsda_linalg::SeededRng;
    use fsda_models::ClassifierKind;

    fn quick_config() -> AdapterConfig {
        AdapterConfig::quick().with_classifier(ClassifierKind::RandomForest)
    }

    #[test]
    fn fs_cell_reports_recovery_and_f1() {
        let compiled = ScenarioSpec::default().with_seed(21).compile().unwrap();
        let data = compiled.generate(Some(2)).unwrap();
        let shots = few_shot_subset(
            &data.target_pool,
            compiled.spec().shots,
            &mut SeededRng::new(1),
        )
        .unwrap();
        let out = run_scenario_cell(
            Method::Fs,
            &data.source_train,
            &shots,
            &data.target_test,
            &data.ground_truth_variant,
            &quick_config(),
            7,
        )
        .unwrap();
        let rec = out.recovery.expect("FS separates features");
        assert!(rec.recall > 0.5, "recall {:?}", rec);
        assert!((0.0..=1.0).contains(&out.macro_f1));
        assert!(out.detected_variant.is_some());
    }

    #[test]
    fn baseline_cell_has_no_recovery() {
        let compiled = ScenarioSpec::default().with_seed(22).compile().unwrap();
        let data = compiled.generate(Some(2)).unwrap();
        let shots = few_shot_subset(
            &data.target_pool,
            compiled.spec().shots,
            &mut SeededRng::new(2),
        )
        .unwrap();
        let out = run_scenario_cell(
            Method::SrcOnly,
            &data.source_train,
            &shots,
            &data.target_test,
            &data.ground_truth_variant,
            &quick_config(),
            7,
        )
        .unwrap();
        assert!(out.recovery.is_none());
        assert!(out.detected_variant.is_none());
        assert!((0.0..=1.0).contains(&out.macro_f1));
    }

    #[test]
    fn cell_is_deterministic() {
        let compiled = ScenarioSpec::default().with_seed(23).compile().unwrap();
        let data = compiled.generate(Some(3)).unwrap();
        let shots = few_shot_subset(
            &data.target_pool,
            compiled.spec().shots,
            &mut SeededRng::new(3),
        )
        .unwrap();
        let run = || {
            run_scenario_cell(
                Method::Fs,
                &data.source_train,
                &shots,
                &data.target_test,
                &data.ground_truth_variant,
                &quick_config(),
                11,
            )
            .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.macro_f1.to_bits(), b.macro_f1.to_bits());
        assert_eq!(a.detected_variant, b.detected_variant);
    }
}
