//! Property-based tests for the guarded serving path: whatever batch a
//! caller throws at `try_reconstruct_batch`, the adapter returns a typed
//! error or a finite reconstruction — it never panics.

use std::cell::OnceCell;

use fsda_core::adapter::{AdapterConfig, FsGanAdapter};
use fsda_core::{GuardConfig, InputPolicy, ServeError};
use fsda_data::fewshot::few_shot_subset;
use fsda_data::synth5gc::Synth5gc;
use fsda_linalg::SeededRng;
use proptest::prelude::*;

thread_local! {
    /// One quick-budget adapter shared by every proptest case: fitting is
    /// the expensive part and the properties only exercise serving.
    static ADAPTER: OnceCell<FsGanAdapter> = const { OnceCell::new() };
}

fn with_adapter<T>(f: impl FnOnce(&FsGanAdapter) -> T) -> T {
    ADAPTER.with(|cell| {
        f(cell.get_or_init(|| {
            let bundle = Synth5gc::small().generate(77).expect("synthetic bundle");
            let mut rng = SeededRng::new(77 ^ 0xAB);
            let shots = few_shot_subset(&bundle.target_pool, 10, &mut rng).expect("shots");
            FsGanAdapter::fit(&bundle.source_train, &shots, &AdapterConfig::quick(), 79)
                .expect("clean fit")
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn try_reconstruct_batch_never_panics(
        seed in 0u64..1000,
        rows in 1usize..12,
        width_jitter in 0usize..3,
        policy in 0usize..3,
    ) {
        with_adapter(|adapter| -> Result<(), TestCaseError> {
        let d = adapter.separation().num_features();
        // Sometimes the wrong width, to drive the dimension check.
        let cols = match width_jitter {
            0 => d,
            1 => d.saturating_sub(1).max(1),
            _ => d + 1,
        };
        let mut rng = SeededRng::new(seed);
        let mut batch = rng.normal_matrix(rows, cols, 0.0, 50.0);
        for _ in 0..rng.index(5) {
            let (r, c) = (rng.index(rows), rng.index(cols));
            let v = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e18][rng.index(4)];
            batch.set(r, c, v);
        }
        let guard = GuardConfig::default().with_policy(
            [InputPolicy::Reject, InputPolicy::ImputeSourceMean, InputPolicy::Clamp][policy],
        );
        match adapter.try_reconstruct_batch(&batch, None, &guard) {
            Ok(recon) => {
                prop_assert_eq!(recon.rows(), rows);
                prop_assert!(recon.is_finite());
            }
            Err(ServeError::DimensionMismatch { expected, got }) => {
                prop_assert_eq!(expected, d);
                prop_assert_eq!(got, cols);
                prop_assert!(cols != d);
            }
            Err(ServeError::NonFinite { row, col } | ServeError::OutOfRange { row, col, .. }) => {
                // Cell-level rejections only occur under the reject policy
                // and point at a real cell.
                prop_assert_eq!(policy, 0);
                prop_assert!(row < rows && col < cols);
            }
            Err(ServeError::NonFiniteOutput { .. }) => {}
        }
        // The guarded prediction path inherits the same contract.
        if let Ok(pred) = adapter.try_predict_batch(&batch, None, &guard) {
            prop_assert!(pred.iter().all(|&p| p < adapter.num_classes()));
        }
        Ok(())
        })?;
    }
}
