//! Minimal CSV import/export for [`Dataset`].
//!
//! Real deployments have their metrics in flat files; this module lets a
//! user bring their own source/target data to the pipeline without any
//! external dependency. The format is deliberately simple: a header row
//! with feature names plus a trailing `label` column, numeric cells, comma
//! separated, no quoting (metric names must not contain commas).

use crate::dataset::Dataset;
use crate::{DataError, Result};
use fsda_linalg::Matrix;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes a dataset as CSV: `feature..., label` header, one row per sample.
///
/// Mind that a `&mut` reference implements `Write`, so a `&mut Vec<u8>` or
/// `&mut File` can be passed directly.
///
/// # Errors
///
/// Returns [`DataError::Numeric`] wrapping any I/O failure.
pub fn write_csv<W: Write>(dataset: &Dataset, mut out: W) -> Result<()> {
    let mut io = || -> std::io::Result<()> {
        for name in dataset.feature_names() {
            write!(out, "{name},")?;
        }
        writeln!(out, "label")?;
        for r in 0..dataset.len() {
            for v in dataset.features().row(r) {
                write!(out, "{v},")?;
            }
            writeln!(out, "{}", dataset.labels()[r])?;
        }
        Ok(())
    };
    io().map_err(|e| DataError::Numeric(format!("csv write: {e}")))
}

/// Reads a dataset from CSV produced by [`write_csv`] (or any file with the
/// same shape). `num_classes` of the result is `max(label) + 1`.
///
/// # Errors
///
/// Returns [`DataError::Csv`] — carrying the 1-based line number of the
/// first offending row (0 for file-level problems) — on any malformed
/// input: empty file, header without a trailing `label` column, ragged
/// rows, or non-numeric cells. I/O failures map to [`DataError::Numeric`].
///
/// # Example
///
/// ```
/// use fsda_data::csv::{read_csv, write_csv};
/// use fsda_data::Dataset;
/// use fsda_linalg::Matrix;
///
/// let ds = Dataset::new(Matrix::from_rows(&[&[1.0, 2.0]]), vec![0], 1)?;
/// let mut buf = Vec::new();
/// write_csv(&ds, &mut buf)?;
/// let back = read_csv(buf.as_slice())?;
/// assert_eq!(back.features(), ds.features());
/// # Ok::<(), fsda_data::DataError>(())
/// ```
pub fn read_csv<R: Read>(input: R) -> Result<Dataset> {
    let reader = BufReader::new(input);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| DataError::Csv {
            line: 0,
            message: "empty input".into(),
        })?
        .map_err(|e| DataError::Numeric(format!("csv read: {e}")))?;
    let columns: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if columns.last().map(String::as_str) != Some("label") {
        return Err(DataError::Csv {
            line: 1,
            message: "last header column must be `label`".into(),
        });
    }
    let d = columns.len() - 1;
    let feature_names: Vec<String> = columns[..d].to_vec();
    let mut values: Vec<f64> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| DataError::Numeric(format!("csv read: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != d + 1 {
            return Err(DataError::Csv {
                line: lineno + 2,
                message: format!("{} cells, expected {}", cells.len(), d + 1),
            });
        }
        for (c, cell) in cells[..d].iter().enumerate() {
            values.push(cell.trim().parse::<f64>().map_err(|e| DataError::Csv {
                line: lineno + 2,
                message: format!("column {} is not a number ({e})", c + 1),
            })?);
        }
        labels.push(
            cells[d]
                .trim()
                .parse::<usize>()
                .map_err(|e| DataError::Csv {
                    line: lineno + 2,
                    message: format!("bad label ({e})"),
                })?,
        );
    }
    let n = labels.len();
    let num_classes = labels.iter().copied().max().map_or(1, |m| m + 1);
    Dataset::with_names(
        Matrix::from_vec(n, d, values),
        labels,
        num_classes,
        feature_names,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::with_names(
            Matrix::from_rows(&[&[1.5, -2.0], &[0.25, 3.75]]),
            vec![0, 2],
            3,
            vec!["cpu".into(), "mem".into()],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.features(), ds.features());
        assert_eq!(back.labels(), ds.labels());
        assert_eq!(back.feature_names(), ds.feature_names());
        assert_eq!(back.num_classes(), 3);
    }

    #[test]
    fn header_is_readable() {
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("cpu,mem,label\n"));
    }

    #[test]
    fn rejects_missing_label_column() {
        let input = "a,b\n1,2\n";
        assert!(matches!(
            read_csv(input.as_bytes()),
            Err(DataError::Csv { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_ragged_rows_with_line_number() {
        let input = "a,label\n1,0\n1,2,0\n";
        match read_csv(input.as_bytes()) {
            Err(DataError::Csv { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("3 cells"), "{message}");
            }
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_rows_with_line_number() {
        let input = "a,b,label\n1,2,0\n1,0\n";
        assert!(matches!(
            read_csv(input.as_bytes()),
            Err(DataError::Csv { line: 3, .. })
        ));
    }

    #[test]
    fn rejects_non_numeric_with_line_and_column() {
        let input = "a,b,label\n1,2,0\n1,foo,0\n";
        match read_csv(input.as_bytes()) {
            Err(DataError::Csv { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("column 2"), "{message}");
            }
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_label_with_line_number() {
        let input = "a,label\n1,0\n2,minus\n";
        match read_csv(input.as_bytes()) {
            Err(DataError::Csv { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("label"), "{message}");
            }
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn skips_blank_lines() {
        let input = "a,label\n1,0\n\n2,1\n";
        let ds = read_csv(input.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_classes(), 2);
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(
            read_csv("".as_bytes()),
            Err(DataError::Csv { line: 0, .. })
        ));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = read_csv("a,label\nx,0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
