//! The tabular [`Dataset`] container.

use crate::{DataError, Result};
use fsda_linalg::{Matrix, SeededRng};

/// A labelled tabular dataset: one row per sample, one column per
/// performance metric.
///
/// # Example
///
/// ```
/// use fsda_data::Dataset;
/// use fsda_linalg::Matrix;
///
/// let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let ds = Dataset::new(x, vec![0, 1], 2)?;
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.class_counts(), vec![1, 1]);
/// # Ok::<(), fsda_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
    feature_names: Vec<String>,
}

impl Dataset {
    /// Creates a dataset, validating that rows and labels agree and that
    /// all labels are below `num_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] on a row/label count mismatch
    /// and [`DataError::UnknownClass`] when a label is out of range.
    pub fn new(features: Matrix, labels: Vec<usize>, num_classes: usize) -> Result<Self> {
        if features.rows() != labels.len() {
            return Err(DataError::Inconsistent(format!(
                "{} rows but {} labels",
                features.rows(),
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::UnknownClass(bad));
        }
        let feature_names = (0..features.cols()).map(|i| format!("f{i}")).collect();
        Ok(Dataset {
            features,
            labels,
            num_classes,
            feature_names,
        })
    }

    /// Like [`Dataset::new`] but with explicit feature names.
    ///
    /// # Errors
    ///
    /// As [`Dataset::new`], plus [`DataError::Inconsistent`] when the name
    /// count does not match the column count.
    pub fn with_names(
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
        feature_names: Vec<String>,
    ) -> Result<Self> {
        if feature_names.len() != features.cols() {
            return Err(DataError::Inconsistent(format!(
                "{} feature names for {} columns",
                feature_names.len(),
                features.cols()
            )));
        }
        let mut ds = Self::new(features, labels, num_classes)?;
        ds.feature_names = feature_names;
        Ok(ds)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.rows()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The labels, aligned with feature rows.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature names, aligned with columns.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Per-class sample counts (length `num_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Indices of all samples with the given class.
    pub fn indices_of_class(&self, class: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.labels[i] == class)
            .collect()
    }

    /// Returns a new dataset containing the given rows (order preserved,
    /// duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Returns a new dataset restricted to the given feature columns.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of bounds.
    pub fn select_features(&self, columns: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_cols(columns),
            labels: self.labels.clone(),
            num_classes: self.num_classes,
            feature_names: columns
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
        }
    }

    /// Concatenates two datasets over the same feature space.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] when feature counts or class
    /// counts disagree.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        if self.num_features() != other.num_features() {
            return Err(DataError::Inconsistent(format!(
                "feature mismatch: {} vs {}",
                self.num_features(),
                other.num_features()
            )));
        }
        if self.num_classes != other.num_classes {
            return Err(DataError::Inconsistent(format!(
                "class-count mismatch: {} vs {}",
                self.num_classes, other.num_classes
            )));
        }
        let features = self
            .features
            .vstack(&other.features)
            .map_err(|e| DataError::Inconsistent(e.to_string()))?;
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Ok(Dataset {
            features,
            labels,
            num_classes: self.num_classes,
            feature_names: self.feature_names.clone(),
        })
    }

    /// Randomly shuffles samples in place.
    pub fn shuffle(&mut self, rng: &mut SeededRng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        let shuffled = self.subset(&order);
        *self = shuffled;
    }

    /// One-hot encodes the labels as an `n x num_classes` matrix.
    pub fn one_hot_labels(&self) -> Matrix {
        let mut out = Matrix::zeros(self.len(), self.num_classes);
        for (r, &l) in self.labels.iter().enumerate() {
            out.set(r, l, 1.0);
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[&[0.0, 1.0], &[2.0, 3.0], &[4.0, 5.0], &[6.0, 7.0]]);
        Dataset::new(x, vec![0, 1, 0, 2], 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        let x = Matrix::zeros(2, 2);
        assert!(matches!(
            Dataset::new(x.clone(), vec![0], 2),
            Err(DataError::Inconsistent(_))
        ));
        assert!(matches!(
            Dataset::new(x, vec![0, 5], 2),
            Err(DataError::UnknownClass(5))
        ));
    }

    #[test]
    fn counts_and_indices() {
        let ds = toy();
        assert_eq!(ds.class_counts(), vec![2, 1, 1]);
        assert_eq!(ds.indices_of_class(0), vec![0, 2]);
        assert_eq!(ds.num_features(), 2);
        assert!(!ds.is_empty());
    }

    #[test]
    fn subset_preserves_alignment() {
        let ds = toy();
        let sub = ds.subset(&[3, 0]);
        assert_eq!(sub.labels(), &[2, 0]);
        assert_eq!(sub.features().row(0), &[6.0, 7.0]);
    }

    #[test]
    fn select_features_renames() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        let ds =
            Dataset::with_names(x, vec![0], 1, vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let sel = ds.select_features(&[2, 0]);
        assert_eq!(sel.feature_names(), &["c".to_string(), "a".to_string()]);
        assert_eq!(sel.features().row(0), &[3.0, 1.0]);
    }

    #[test]
    fn concat_checks_compatibility() {
        let ds = toy();
        let combined = ds.concat(&ds).unwrap();
        assert_eq!(combined.len(), 8);
        let other = Dataset::new(Matrix::zeros(1, 3), vec![0], 3).unwrap();
        assert!(combined.concat(&other).is_err());
        let diff_classes = Dataset::new(Matrix::zeros(1, 2), vec![0], 5).unwrap();
        assert!(combined.concat(&diff_classes).is_err());
    }

    #[test]
    fn one_hot_labels_rows() {
        let ds = toy();
        let oh = ds.one_hot_labels();
        assert_eq!(oh.shape(), (4, 3));
        assert_eq!(oh.get(1, 1), 1.0);
        assert_eq!(oh.get(1, 0), 0.0);
        for r in 0..4 {
            let s: f64 = oh.row(r).iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn shuffle_is_label_aligned() {
        let mut ds = toy();
        let before: Vec<(Vec<f64>, usize)> = (0..ds.len())
            .map(|i| (ds.features().row(i).to_vec(), ds.labels()[i]))
            .collect();
        let mut rng = SeededRng::new(5);
        ds.shuffle(&mut rng);
        let mut after: Vec<(Vec<f64>, usize)> = (0..ds.len())
            .map(|i| (ds.features().row(i).to_vec(), ds.labels()[i]))
            .collect();
        // Same multiset of (row, label) pairs.
        let key = |p: &(Vec<f64>, usize)| format!("{:?}", p);
        let mut b: Vec<String> = before.iter().map(key).collect();
        let mut a: Vec<String> = after.drain(..).map(|p| key(&p)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn default_feature_names() {
        let ds = toy();
        assert_eq!(ds.feature_names()[1], "f1");
    }
}
