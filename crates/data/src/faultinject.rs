//! Deterministic fault injection for robustness testing.
//!
//! Real 5G telemetry arrives broken in predictable ways: sensors emit NaN
//! when a counter wraps, exporters serialize `inf` on division by a zero
//! window, collectors reorder columns after schema upgrades, dead counters
//! flatline, and transport hiccups truncate CSV rows mid-line. This module
//! provides *seeded* corruption operators over matrices, datasets, and raw
//! CSV text so the `tests/fault_injection.rs` no-panic suite can replay the
//! exact same corruption on every run.
//!
//! Every operator takes the corruption seed explicitly; the same
//! `(fault, seed)` pair always produces the same corruption, which makes a
//! failing fault-injection case reproducible from its log line alone.

use crate::dataset::Dataset;
use crate::Result;
use fsda_linalg::{Matrix, SeededRng};

/// A corruption operator, parameterized by severity where meaningful.
///
/// `fraction` fields are clamped to `[0, 1]`; a fraction of the matrix
/// cells (or rows, for row-level faults) is corrupted, but always at least
/// one cell/row so a fault is never a silent no-op on tiny inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Replaces a fraction of cells with NaN.
    NanCells {
        /// Fraction of all cells to replace.
        fraction: f64,
    },
    /// Replaces a fraction of cells with ±infinity.
    InfCells {
        /// Fraction of all cells to replace.
        fraction: f64,
    },
    /// Applies a seeded permutation to the feature columns (schema skew:
    /// the collector reordered fields, the consumer did not notice).
    PermuteColumns,
    /// Flatlines a fraction of columns to a constant (dead counters).
    ConstantColumns {
        /// Fraction of columns to flatline.
        fraction: f64,
    },
    /// Multiplies a fraction of cells by a huge factor (unit mix-ups,
    /// counter wraps surfacing as extreme outliers).
    ExtremeOutliers {
        /// Fraction of all cells to blow up.
        fraction: f64,
        /// Multiplier applied to the chosen cells.
        magnitude: f64,
    },
    /// Reassigns a fraction of labels uniformly at random.
    LabelNoise {
        /// Fraction of labels to rewrite.
        fraction: f64,
    },
}

impl Fault {
    /// The canonical severity grid used by the no-panic suite: one instance
    /// of every operator at a severity that is high enough to break naive
    /// code but low enough to leave some clean data.
    pub fn canonical_suite() -> Vec<Fault> {
        vec![
            Fault::NanCells { fraction: 0.05 },
            Fault::InfCells { fraction: 0.05 },
            Fault::PermuteColumns,
            Fault::ConstantColumns { fraction: 0.25 },
            Fault::ExtremeOutliers {
                fraction: 0.02,
                magnitude: 1e9,
            },
            Fault::LabelNoise { fraction: 0.2 },
        ]
    }

    /// A short stable name for log lines and test diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::NanCells { .. } => "nan_cells",
            Fault::InfCells { .. } => "inf_cells",
            Fault::PermuteColumns => "permute_columns",
            Fault::ConstantColumns { .. } => "constant_columns",
            Fault::ExtremeOutliers { .. } => "extreme_outliers",
            Fault::LabelNoise { .. } => "label_noise",
        }
    }

    /// Applies the fault to a feature matrix, returning the corrupted copy.
    /// Label-level faults leave the matrix unchanged.
    pub fn apply_to_matrix(&self, features: &Matrix, seed: u64) -> Matrix {
        let mut out = features.clone();
        let mut rng = SeededRng::new(seed ^ 0xFA17);
        let cells = out.rows() * out.cols();
        if cells == 0 {
            return out;
        }
        match *self {
            Fault::NanCells { fraction } => {
                for k in pick(&mut rng, cells, fraction) {
                    out.as_mut_slice()[k] = f64::NAN;
                }
            }
            Fault::InfCells { fraction } => {
                for k in pick(&mut rng, cells, fraction) {
                    out.as_mut_slice()[k] = if k % 2 == 0 {
                        f64::INFINITY
                    } else {
                        f64::NEG_INFINITY
                    };
                }
            }
            Fault::PermuteColumns => {
                let mut perm: Vec<usize> = (0..out.cols()).collect();
                rng.shuffle(&mut perm);
                out = out.select_cols(&perm);
            }
            Fault::ConstantColumns { fraction } => {
                for c in pick(&mut rng, out.cols(), fraction) {
                    let v = rng.uniform_range(-5.0, 5.0);
                    for r in 0..out.rows() {
                        out.set(r, c, v);
                    }
                }
            }
            Fault::ExtremeOutliers {
                fraction,
                magnitude,
            } => {
                for k in pick(&mut rng, cells, fraction) {
                    let v = out.as_slice()[k];
                    out.as_mut_slice()[k] = if v == 0.0 { magnitude } else { v * magnitude };
                }
            }
            Fault::LabelNoise { .. } => {}
        }
        out
    }

    /// Applies the fault to a whole dataset (features and, for
    /// [`Fault::LabelNoise`], labels).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::DataError`] from dataset reconstruction, which
    /// cannot happen for the shapes these operators preserve.
    pub fn apply(&self, dataset: &Dataset, seed: u64) -> Result<Dataset> {
        let features = self.apply_to_matrix(dataset.features(), seed);
        let mut labels = dataset.labels().to_vec();
        if let Fault::LabelNoise { fraction } = *self {
            let mut rng = SeededRng::new(seed ^ 0x1AB3);
            for i in pick(&mut rng, labels.len(), fraction) {
                labels[i] = rng.index(dataset.num_classes().max(1));
            }
        }
        Dataset::new(features, labels, dataset.num_classes())
    }
}

/// Picks `max(1, fraction * n)` distinct indices out of `0..n` (empty when
/// `n == 0`), deterministically for a given RNG state.
fn pick(rng: &mut SeededRng, n: usize, fraction: f64) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let k = ((fraction.clamp(0.0, 1.0) * n as f64).round() as usize).clamp(1, n);
    rng.sample_indices(n, k)
}

/// Seeded corruptions of raw CSV text, for driving the ingestion layer.
/// Returned strings are intentionally malformed; feed them to
/// [`crate::csv::read_csv`] and assert on the typed error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsvFault {
    /// Drops the last cell of one data row (truncated transport write).
    TruncateRow,
    /// Duplicates a cell in one data row (ragged row).
    RaggedRow,
    /// Replaces one numeric cell with garbage text.
    GarbageCell,
    /// Deletes everything, header included.
    EmptyFile,
    /// Renames the trailing `label` header column.
    HeaderMismatch,
}

impl CsvFault {
    /// All CSV faults, for exhaustive suites.
    pub fn all() -> [CsvFault; 5] {
        [
            CsvFault::TruncateRow,
            CsvFault::RaggedRow,
            CsvFault::GarbageCell,
            CsvFault::EmptyFile,
            CsvFault::HeaderMismatch,
        ]
    }

    /// Applies the corruption to well-formed CSV text. The victim data row
    /// is chosen by the seed; the header is row 0 and never the victim
    /// (except for the faults that target it explicitly).
    pub fn apply(&self, csv: &str, seed: u64) -> String {
        let mut rng = SeededRng::new(seed ^ 0xC57);
        let mut lines: Vec<String> = csv.lines().map(str::to_string).collect();
        if lines.len() < 2 && !matches!(self, CsvFault::EmptyFile) {
            return csv.to_string();
        }
        match self {
            CsvFault::TruncateRow => {
                let victim = 1 + rng.index(lines.len() - 1);
                if let Some(cut) = lines[victim].rfind(',') {
                    lines[victim].truncate(cut);
                }
            }
            CsvFault::RaggedRow => {
                let victim = 1 + rng.index(lines.len() - 1);
                let extra = lines[victim].split(',').next().unwrap_or("0").to_string();
                lines[victim] = format!("{},{extra}", lines[victim]);
            }
            CsvFault::GarbageCell => {
                let victim = 1 + rng.index(lines.len() - 1);
                let mut cells: Vec<&str> = lines[victim].split(',').collect();
                let col = rng.index(cells.len().saturating_sub(1).max(1));
                cells[col] = "§garbage§";
                lines[victim] = cells.join(",");
            }
            CsvFault::EmptyFile => return String::new(),
            CsvFault::HeaderMismatch => {
                lines[0] = lines[0].replace("label", "target");
            }
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut rng = SeededRng::new(1);
        let features = Matrix::from_fn(20, 6, |_, _| rng.normal(0.0, 1.0));
        let labels: Vec<usize> = (0..20).map(|i| i % 3).collect();
        Dataset::new(features, labels, 3).unwrap()
    }

    #[test]
    fn faults_are_deterministic() {
        let ds = toy();
        let bits = |m: &Matrix| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
        for fault in Fault::canonical_suite() {
            let a = fault.apply(&ds, 99).unwrap();
            let b = fault.apply(&ds, 99).unwrap();
            // Bitwise comparison: NaN != NaN under PartialEq.
            assert_eq!(bits(a.features()), bits(b.features()), "{}", fault.name());
            assert_eq!(a.labels(), b.labels(), "{}", fault.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let ds = toy();
        let fault = Fault::NanCells { fraction: 0.1 };
        let a = fault.apply(&ds, 1).unwrap();
        let b = fault.apply(&ds, 2).unwrap();
        assert_ne!(
            a.features()
                .as_slice()
                .iter()
                .map(|v| v.is_nan())
                .collect::<Vec<_>>(),
            b.features()
                .as_slice()
                .iter()
                .map(|v| v.is_nan())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn nan_fault_injects_nans() {
        let ds = toy();
        let out = Fault::NanCells { fraction: 0.1 }.apply(&ds, 7).unwrap();
        let nans = out
            .features()
            .as_slice()
            .iter()
            .filter(|v| v.is_nan())
            .count();
        assert_eq!(nans, 12); // 10% of 120 cells
        assert_eq!(out.labels(), ds.labels());
    }

    #[test]
    fn inf_fault_injects_infs() {
        let ds = toy();
        let out = Fault::InfCells { fraction: 0.05 }.apply(&ds, 7).unwrap();
        assert!(out.features().as_slice().iter().any(|v| v.is_infinite()));
    }

    #[test]
    fn permutation_preserves_multiset() {
        let ds = toy();
        let out = Fault::PermuteColumns.apply(&ds, 3).unwrap();
        let mut a: Vec<u64> = ds
            .features()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let mut b: Vec<u64> = out
            .features()
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_ne!(ds.features(), out.features());
    }

    #[test]
    fn constant_columns_flatline() {
        let ds = toy();
        let out = Fault::ConstantColumns { fraction: 0.5 }
            .apply(&ds, 5)
            .unwrap();
        let flat = (0..out.num_features())
            .filter(|&c| {
                let col = out.features().col(c);
                col.iter().all(|&v| v == col[0])
            })
            .count();
        assert_eq!(flat, 3); // 50% of 6 columns
    }

    #[test]
    fn outliers_blow_up_magnitude() {
        let ds = toy();
        let out = Fault::ExtremeOutliers {
            fraction: 0.02,
            magnitude: 1e9,
        }
        .apply(&ds, 5)
        .unwrap();
        assert!(out.features().max_abs() > 1e6);
        assert!(out.features().is_finite());
    }

    #[test]
    fn label_noise_touches_only_labels() {
        let ds = toy();
        let out = Fault::LabelNoise { fraction: 0.5 }.apply(&ds, 5).unwrap();
        assert_eq!(out.features(), ds.features());
        assert!(out.labels().iter().all(|&l| l < 3));
        assert_ne!(out.labels(), ds.labels());
    }

    #[test]
    fn csv_faults_break_round_trips() {
        use crate::csv::{read_csv, write_csv};
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let clean = String::from_utf8(buf).unwrap();
        for fault in CsvFault::all() {
            let broken = fault.apply(&clean, 11);
            assert!(
                read_csv(broken.as_bytes()).is_err(),
                "{fault:?} should produce unreadable csv"
            );
        }
    }

    #[test]
    fn csv_faults_are_deterministic() {
        let clean = "a,b,label\n1,2,0\n3,4,1\n5,6,0\n";
        for fault in CsvFault::all() {
            assert_eq!(fault.apply(clean, 42), fault.apply(clean, 42), "{fault:?}");
        }
    }
}
