//! Few-shot sampling: drawing `k` target-domain samples per fault type,
//! exactly as the paper's 1/5/10-shot scenarios do.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use fsda_linalg::SeededRng;

/// Draws `k` random sample indices per group from `groups` (one group label
/// per sample). The paper's few-shot unit is the *fault type* (normal
/// counts as one), which for the 5GC dataset coincides with the class label
/// and for 5GIPC is coarser than the binary label.
///
/// # Errors
///
/// Returns [`DataError::NotEnoughSamples`] when some group has fewer than
/// `k` members and [`DataError::Inconsistent`] when `k == 0`.
pub fn few_shot_indices(
    groups: &[usize],
    num_groups: usize,
    k: usize,
    rng: &mut SeededRng,
) -> Result<Vec<usize>> {
    if k == 0 {
        return Err(DataError::Inconsistent("few-shot k must be >= 1".into()));
    }
    let mut by_group: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
    for (i, &g) in groups.iter().enumerate() {
        if g >= num_groups {
            return Err(DataError::Inconsistent(format!(
                "group {g} out of range (num_groups = {num_groups})"
            )));
        }
        by_group[g].push(i);
    }
    let mut selected = Vec::with_capacity(num_groups * k);
    for (g, members) in by_group.iter().enumerate() {
        if members.len() < k {
            return Err(DataError::NotEnoughSamples(format!(
                "group {g} has {} samples, need {k}",
                members.len()
            )));
        }
        let picks = rng.sample_indices(members.len(), k);
        selected.extend(picks.into_iter().map(|p| members[p]));
    }
    selected.sort_unstable();
    Ok(selected)
}

/// Draws a `k`-shot subset of a dataset using its class labels as groups.
///
/// # Errors
///
/// As [`few_shot_indices`].
pub fn few_shot_subset(dataset: &Dataset, k: usize, rng: &mut SeededRng) -> Result<Dataset> {
    let idx = few_shot_indices(dataset.labels(), dataset.num_classes(), k, rng)?;
    Ok(dataset.subset(&idx))
}

/// Stratified train/test split: for each class, a `train_fraction` share
/// goes to the first dataset. Returns `(train, test)`.
///
/// # Errors
///
/// Returns [`DataError::Inconsistent`] when `train_fraction` is outside
/// `(0, 1)`.
pub fn stratified_split(
    dataset: &Dataset,
    train_fraction: f64,
    rng: &mut SeededRng,
) -> Result<(Dataset, Dataset)> {
    if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
        return Err(DataError::Inconsistent(format!(
            "train_fraction must be in (0,1), got {train_fraction}"
        )));
    }
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..dataset.num_classes() {
        let mut members = dataset.indices_of_class(class);
        rng.shuffle(&mut members);
        let cut = ((members.len() as f64) * train_fraction).round() as usize;
        train_idx.extend_from_slice(&members[..cut.min(members.len())]);
        test_idx.extend_from_slice(&members[cut.min(members.len())..]);
    }
    train_idx.sort_unstable();
    test_idx.sort_unstable();
    Ok((dataset.subset(&train_idx), dataset.subset(&test_idx)))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::Matrix;

    fn toy(n_per_class: usize, classes: usize) -> Dataset {
        let n = n_per_class * classes;
        let x = Matrix::from_fn(n, 2, |i, j| (i * 2 + j) as f64);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(x, labels, classes).unwrap()
    }

    #[test]
    fn draws_k_per_group() {
        let ds = toy(20, 4);
        let mut rng = SeededRng::new(1);
        let sub = few_shot_subset(&ds, 3, &mut rng).unwrap();
        assert_eq!(sub.len(), 12);
        assert_eq!(sub.class_counts(), vec![3; 4]);
    }

    #[test]
    fn different_seeds_differ() {
        let ds = toy(50, 2);
        let a = few_shot_indices(ds.labels(), 2, 5, &mut SeededRng::new(1)).unwrap();
        let b = few_shot_indices(ds.labels(), 2, 5, &mut SeededRng::new(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn indices_are_unique() {
        let ds = toy(10, 3);
        let idx = few_shot_indices(ds.labels(), 3, 4, &mut SeededRng::new(3)).unwrap();
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(idx, dedup, "sorted unique indices expected");
    }

    #[test]
    fn rejects_undersized_groups() {
        let ds = toy(2, 2);
        assert!(matches!(
            few_shot_subset(&ds, 3, &mut SeededRng::new(4)),
            Err(DataError::NotEnoughSamples(_))
        ));
    }

    #[test]
    fn rejects_zero_k_and_bad_groups() {
        assert!(few_shot_indices(&[0, 1], 2, 0, &mut SeededRng::new(5)).is_err());
        assert!(few_shot_indices(&[0, 7], 2, 1, &mut SeededRng::new(5)).is_err());
    }

    #[test]
    fn custom_groups_coarser_than_labels() {
        // Binary labels but three few-shot groups (like 5GIPC).
        let x = Matrix::from_fn(30, 1, |i, _| i as f64);
        let labels: Vec<usize> = (0..30).map(|i| usize::from(i >= 10)).collect();
        let groups: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let ds = Dataset::new(x, labels, 2).unwrap();
        let idx = few_shot_indices(&groups, 3, 2, &mut SeededRng::new(6)).unwrap();
        assert_eq!(idx.len(), 6);
        let sub = ds.subset(&idx);
        assert_eq!(sub.len(), 6);
    }

    #[test]
    fn stratified_split_fractions() {
        let ds = toy(20, 3);
        let (train, test) = stratified_split(&ds, 0.75, &mut SeededRng::new(7)).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(train.class_counts(), vec![15; 3]);
        assert_eq!(test.class_counts(), vec![5; 3]);
    }

    #[test]
    fn stratified_split_rejects_bad_fraction() {
        let ds = toy(4, 2);
        assert!(stratified_split(&ds, 0.0, &mut SeededRng::new(8)).is_err());
        assert!(stratified_split(&ds, 1.5, &mut SeededRng::new(8)).is_err());
    }
}
