//! Gaussian mixture model with diagonal covariances, fit by EM.
//!
//! The paper splits the 5GIPC dataset into source/target domains by
//! clustering it with a GMM (2 clusters for the main experiments, 3 for the
//! no-retraining study of Table III); this module reproduces that step.

use crate::{DataError, Result};
use fsda_linalg::{Matrix, SeededRng};

/// A fitted Gaussian mixture model with diagonal covariance matrices.
#[derive(Debug, Clone)]
pub struct Gmm {
    weights: Vec<f64>,
    means: Matrix,
    vars: Matrix,
    log_likelihood: f64,
}

/// Configuration for [`Gmm::fit`].
#[derive(Debug, Clone)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the mean log-likelihood.
    pub tol: f64,
    /// Variance floor for numerical stability.
    pub var_floor: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            k: 2,
            max_iter: 200,
            tol: 1e-6,
            var_floor: 1e-6,
            seed: 0,
        }
    }
}

impl Gmm {
    /// Fits a diagonal-covariance GMM by EM with k-means++-style seeding.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::NotEnoughSamples`] when `data.rows() < k` and
    /// [`DataError::Inconsistent`] when `k == 0`.
    pub fn fit(data: &Matrix, config: &GmmConfig) -> Result<Self> {
        let (n, d) = data.shape();
        if config.k == 0 {
            return Err(DataError::Inconsistent("GMM needs k >= 1".into()));
        }
        if n < config.k {
            return Err(DataError::NotEnoughSamples(format!(
                "{n} samples for {} components",
                config.k
            )));
        }
        let mut rng = SeededRng::new(config.seed);
        let k = config.k;

        // k-means++ style mean initialization into the k x d means matrix;
        // only the first `chosen` rows are meaningful while seeding.
        let mut means = Matrix::zeros(k, d);
        means.row_mut(0).copy_from_slice(data.row(rng.index(n)));
        let mut chosen = 1;
        while chosen < k {
            let mut dists: Vec<f64> = (0..n)
                .map(|r| {
                    (0..chosen)
                        .map(|c| fsda_linalg::matrix::euclidean_distance(data.row(r), means.row(c)))
                        .fold(f64::INFINITY, f64::min)
                        .powi(2)
                })
                .collect();
            let total: f64 = dists.iter().sum();
            if total <= 0.0 {
                // All points identical to chosen means; fall back to random.
                means
                    .row_mut(chosen)
                    .copy_from_slice(data.row(rng.index(n)));
                chosen += 1;
                continue;
            }
            for v in &mut dists {
                *v /= total;
            }
            means
                .row_mut(chosen)
                .copy_from_slice(data.row(rng.categorical(&dists)));
            chosen += 1;
        }

        // Global variance for initialization.
        let stds = data.col_stds();
        let init_var: Vec<f64> = stds.iter().map(|s| (s * s).max(config.var_floor)).collect();
        let mut vars = Matrix::from_fn(k, d, |_, c| init_var[c]);
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = Matrix::zeros(n, k);
        let mut prev_ll = f64::NEG_INFINITY;
        let mut log_likelihood = prev_ll;
        for _ in 0..config.max_iter {
            // E-step: responsibilities via log-sum-exp.
            let mut ll = 0.0;
            for r in 0..n {
                let x = data.row(r);
                let mut logp: Vec<f64> = (0..k)
                    .map(|c| {
                        weights[c].max(1e-300).ln() + diag_log_pdf(x, means.row(c), vars.row(c))
                    })
                    .collect();
                let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for v in &mut logp {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                ll += max + sum.ln();
                for (c, &lp) in logp.iter().enumerate() {
                    resp.set(r, c, lp / sum);
                }
            }
            log_likelihood = ll / n as f64;
            if (log_likelihood - prev_ll).abs() < config.tol {
                break;
            }
            prev_ll = log_likelihood;

            // M-step.
            for (c, w) in weights.iter_mut().enumerate() {
                let nk: f64 = (0..n).map(|r| resp.get(r, c)).sum();
                let nk_safe = nk.max(1e-10);
                *w = nk / n as f64;
                let mean = means.row_mut(c);
                mean.fill(0.0);
                for r in 0..n {
                    let g = resp.get(r, c);
                    for (m, &x) in mean.iter_mut().zip(data.row(r)) {
                        *m += g * x;
                    }
                }
                for m in mean.iter_mut() {
                    *m /= nk_safe;
                }
                let var = vars.row_mut(c);
                var.fill(0.0);
                let mean = means.row(c);
                for r in 0..n {
                    let g = resp.get(r, c);
                    for ((v, &x), &m) in var.iter_mut().zip(data.row(r)).zip(mean) {
                        let diff = x - m;
                        *v += g * diff * diff;
                    }
                }
                for v in var.iter_mut() {
                    *v = (*v / nk_safe).max(config.var_floor);
                }
            }
        }
        Ok(Gmm {
            weights,
            means,
            vars,
            log_likelihood,
        })
    }

    /// Fits `restarts` GMMs with different initializations and keeps the
    /// one with the best final log-likelihood. EM is sensitive to its
    /// starting point; the paper's domain-splitting use case needs the
    /// global structure, so restarts are cheap insurance.
    ///
    /// # Errors
    ///
    /// As [`Gmm::fit`]; additionally rejects `restarts == 0`.
    pub fn fit_best(data: &Matrix, config: &GmmConfig, restarts: usize) -> Result<Self> {
        if restarts == 0 {
            return Err(DataError::Inconsistent(
                "fit_best needs restarts >= 1".into(),
            ));
        }
        let mut best = Gmm::fit(data, config)?;
        for r in 1..restarts {
            let cfg = GmmConfig {
                seed: config.seed.wrapping_add(r as u64 * 7919),
                ..config.clone()
            };
            let fitted = Gmm::fit(data, &cfg)?;
            if fitted.log_likelihood > best.log_likelihood {
                best = fitted;
            }
        }
        Ok(best)
    }

    /// Number of components.
    pub fn k(&self) -> usize {
        self.weights.len()
    }

    /// Mixture weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Component means (`k x d`, one row per component).
    pub fn means(&self) -> &Matrix {
        &self.means
    }

    /// Final mean log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Per-sample posterior responsibilities (`n x k`, rows sum to 1).
    pub fn responsibilities(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let k = self.k();
        let mut out = Matrix::zeros(n, k);
        for r in 0..n {
            let x = data.row(r);
            let mut logp: Vec<f64> = (0..k)
                .map(|c| {
                    self.weights[c].max(1e-300).ln()
                        + diag_log_pdf(x, self.means.row(c), self.vars.row(c))
                })
                .collect();
            let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for v in &mut logp {
                *v = (*v - max).exp();
                sum += *v;
            }
            for (c, &lp) in logp.iter().enumerate() {
                out.set(r, c, lp / sum);
            }
        }
        out
    }

    /// Hard cluster assignment per sample.
    pub fn predict(&self, data: &Matrix) -> Vec<usize> {
        let resp = self.responsibilities(data);
        (0..data.rows())
            .map(|r| {
                let row = resp.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

fn diag_log_pdf(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((&xi, &mi), &vi) in x.iter().zip(mean).zip(var) {
        let d = xi - mi;
        acc += -0.5 * ((2.0 * std::f64::consts::PI * vi).ln() + d * d / vi);
    }
    acc
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn two_blob_data(n_a: usize, n_b: usize, sep: f64, seed: u64) -> Matrix {
        let mut rng = SeededRng::new(seed);
        let mut m = Matrix::zeros(n_a + n_b, 3);
        for r in 0..n_a {
            for c in 0..3 {
                m.set(r, c, rng.normal(0.0, 1.0));
            }
        }
        for r in n_a..(n_a + n_b) {
            for c in 0..3 {
                m.set(r, c, rng.normal(sep, 1.0));
            }
        }
        m
    }

    #[test]
    fn separates_two_blobs() {
        let data = two_blob_data(300, 100, 5.0, 1);
        let gmm = Gmm::fit(&data, &GmmConfig::default()).unwrap();
        let labels = gmm.predict(&data);
        // All of blob A together, all of blob B together.
        let first = labels[0];
        assert!(labels[..300].iter().all(|&l| l == first));
        assert!(labels[300..].iter().all(|&l| l != first));
        // Mixture weights reflect cluster sizes.
        let w_big = gmm.weights()[first];
        assert!((w_big - 0.75).abs() < 0.05, "big-cluster weight {w_big}");
    }

    #[test]
    fn responsibilities_sum_to_one() {
        let data = two_blob_data(50, 50, 3.0, 2);
        let gmm = Gmm::fit(
            &data,
            &GmmConfig {
                k: 3,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        let resp = gmm.responsibilities(&data);
        for r in 0..data.rows() {
            let s: f64 = resp.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn log_likelihood_improves_with_better_k() {
        let data = two_blob_data(200, 200, 6.0, 3);
        let g1 = Gmm::fit(
            &data,
            &GmmConfig {
                k: 1,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        let g2 = Gmm::fit(
            &data,
            &GmmConfig {
                k: 2,
                ..GmmConfig::default()
            },
        )
        .unwrap();
        assert!(g2.log_likelihood() > g1.log_likelihood());
    }

    #[test]
    fn rejects_invalid_configs() {
        let data = Matrix::zeros(3, 2);
        assert!(Gmm::fit(
            &data,
            &GmmConfig {
                k: 0,
                ..GmmConfig::default()
            }
        )
        .is_err());
        assert!(Gmm::fit(
            &data,
            &GmmConfig {
                k: 5,
                ..GmmConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_blob_data(100, 60, 4.0, 4);
        let cfg = GmmConfig {
            seed: 9,
            ..GmmConfig::default()
        };
        let a = Gmm::fit(&data, &cfg).unwrap().predict(&data);
        let b = Gmm::fit(&data, &cfg).unwrap().predict(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_data_does_not_crash() {
        let data = Matrix::filled(20, 2, 3.0);
        let gmm = Gmm::fit(&data, &GmmConfig::default()).unwrap();
        let labels = gmm.predict(&data);
        assert_eq!(labels.len(), 20);
        assert!(gmm.log_likelihood().is_finite());
    }
}
