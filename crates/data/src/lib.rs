//! Datasets for the `fsda` workspace: the tabular [`Dataset`] container,
//! normalization, structural-causal-model (SCM) generators for the two 5G
//! network datasets the paper evaluates on, Gaussian-mixture clustering, and
//! few-shot sampling.
//!
//! # Why generators instead of the original data
//!
//! The paper's datasets (ITU "AI for Good" 5G-core failure data and the
//! IEICE RISING 5G IP-core fault data) sit behind challenge-registration
//! portals. The paper's own premise, however, is that the source→target
//! drift *is a soft intervention on a subset of features*. The [`scm`]
//! module therefore implements an explicit SCM with per-domain soft
//! interventions, and [`synth5gc`] / [`synth5gipc`] instantiate it with the
//! published shapes (442 features / 16 classes / 3,645 source samples;
//! 116 features / binary labels / GMM-split domains). This exercises the
//! identical code path as the real data *and* provides ground-truth
//! intervention targets, which the real datasets cannot.
//!
//! # Example
//!
//! ```
//! use fsda_data::synth5gc::Synth5gc;
//!
//! let bundle = Synth5gc::small().generate(7)?;
//! assert_eq!(bundle.source_train.num_classes(), 16);
//! assert!(!bundle.ground_truth_variant.is_empty());
//! # Ok::<(), fsda_data::DataError>(())
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod csv;
pub mod dataset;
pub mod faultinject;
pub mod fewshot;
pub mod gmm;
pub mod normalize;
pub mod scenario;
pub mod scm;
pub mod synth5gc;
pub mod synth5gipc;

pub use dataset::Dataset;
pub use normalize::Normalizer;

/// Errors raised by dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Rows/labels or shapes disagree.
    Inconsistent(String),
    /// A class was requested that the dataset does not contain.
    UnknownClass(usize),
    /// Not enough samples to satisfy a split/sampling request.
    NotEnoughSamples(String),
    /// An underlying numeric routine failed.
    Numeric(String),
    /// A CSV file was malformed; `line` is the 1-based line number of the
    /// first offending row (0 for file-level problems such as empty input).
    Csv {
        /// 1-based line number of the offending row (0 = whole file).
        line: usize,
        /// What was wrong with it.
        message: String,
    },
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Inconsistent(msg) => write!(f, "inconsistent data: {msg}"),
            DataError::UnknownClass(c) => write!(f, "unknown class {c}"),
            DataError::NotEnoughSamples(msg) => write!(f, "not enough samples: {msg}"),
            DataError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            DataError::Csv { line, message } => {
                if *line == 0 {
                    write!(f, "malformed csv: {message}")
                } else {
                    write!(f, "malformed csv at line {line}: {message}")
                }
            }
        }
    }
}

impl std::error::Error for DataError {}

impl From<fsda_linalg::LinalgError> for DataError {
    fn from(e: fsda_linalg::LinalgError) -> Self {
        DataError::Numeric(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(!DataError::UnknownClass(3).to_string().is_empty());
        assert!(DataError::Inconsistent("x".into())
            .to_string()
            .contains('x'));
    }
}
