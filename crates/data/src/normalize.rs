//! Feature normalization.
//!
//! The paper normalizes feature values to `[-1, 1]` for its own methods
//! (matching the generator's tanh output range) and to z-scores for several
//! baselines; both are provided. A normalizer is always **fit on the source
//! domain** and then applied to target samples — applying it to drifted data
//! can legitimately produce values outside `[-1, 1]`, which is exactly the
//! out-of-support behaviour the paper studies.

use fsda_linalg::Matrix;

/// Normalization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormKind {
    /// Min-max scaling to `[-1, 1]` (the paper's choice for FS/FS+GAN).
    MinMaxSymmetric,
    /// Zero mean, unit variance.
    ZScore,
}

/// Mean and standard deviation over the finite entries of a column; `(0, 0)`
/// when no entry is finite.
fn finite_moments(col: &[f64]) -> (f64, f64) {
    let finite: Vec<f64> = col.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return (0.0, 0.0);
    }
    let m = finite.iter().sum::<f64>() / finite.len() as f64;
    if finite.len() < 2 {
        return (m, 0.0);
    }
    let var = finite.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / (finite.len() - 1) as f64;
    (m, var.sqrt())
}

/// A fitted, invertible per-column normalizer.
///
/// # Example
///
/// ```
/// use fsda_data::normalize::{NormKind, Normalizer};
/// use fsda_linalg::Matrix;
///
/// let train = Matrix::from_rows(&[&[0.0, 10.0], &[4.0, 20.0]]);
/// let norm = Normalizer::fit(&train, NormKind::MinMaxSymmetric);
/// let scaled = norm.transform(&train);
/// assert_eq!(scaled.get(0, 0), -1.0);
/// assert_eq!(scaled.get(1, 0), 1.0);
/// let back = norm.inverse_transform(&scaled);
/// assert!((back.get(1, 1) - 20.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    kind: NormKind,
    /// Per-column offset subtracted before scaling.
    offset: Vec<f64>,
    /// Per-column divisor (never zero).
    scale: Vec<f64>,
}

impl Normalizer {
    /// Fits the normalizer on training data (rows are samples).
    ///
    /// Constant columns get scale 1 so they map to 0 and invert exactly.
    /// NaN/Inf cells are excluded from the fitted statistics — a single
    /// corrupt cell must not poison a whole column — so the resulting
    /// offsets and scales are always finite. Columns with no finite values
    /// at all fall back to offset 0, scale 1 (identity).
    pub fn fit(data: &Matrix, kind: NormKind) -> Self {
        let d = data.cols();
        let mut offset = vec![0.0; d];
        let mut scale = vec![1.0; d];
        match kind {
            NormKind::MinMaxSymmetric => {
                for c in 0..d {
                    let col = data.col(c);
                    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                    for &v in &col {
                        if !v.is_finite() {
                            continue;
                        }
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if !lo.is_finite() || !hi.is_finite() || (hi - lo) < 1e-12 {
                        offset[c] = if lo.is_finite() { lo } else { 0.0 };
                        scale[c] = 1.0;
                    } else {
                        // Map [lo, hi] -> [-1, 1]: x' = (x - mid) / half_range.
                        offset[c] = 0.5 * (lo + hi);
                        scale[c] = 0.5 * (hi - lo);
                    }
                }
            }
            NormKind::ZScore => {
                let means = data.col_means();
                let stds = data.col_stds();
                for c in 0..d {
                    let (m, s) = if means[c].is_finite() && stds[c].is_finite() {
                        (means[c], stds[c])
                    } else {
                        // The whole-column moments were poisoned by NaN/Inf
                        // cells; recompute them over finite values only.
                        finite_moments(&data.col(c))
                    };
                    offset[c] = m;
                    scale[c] = if s < 1e-12 { 1.0 } else { s };
                }
            }
        }
        Normalizer {
            kind,
            offset,
            scale,
        }
    }

    /// Rebuilds a normalizer from previously extracted statistics (e.g.
    /// decoded from a persisted artifact).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DataError::Inconsistent`] when the vectors differ in
    /// length, are empty, or any scale is zero/non-finite — such a
    /// normalizer could never have been produced by [`Normalizer::fit`].
    pub fn from_parts(
        kind: NormKind,
        offset: Vec<f64>,
        scale: Vec<f64>,
    ) -> Result<Self, crate::DataError> {
        if offset.is_empty() || offset.len() != scale.len() {
            return Err(crate::DataError::Inconsistent(format!(
                "normalizer parts mismatch: {} offsets vs {} scales",
                offset.len(),
                scale.len()
            )));
        }
        if offset.iter().any(|v| !v.is_finite())
            || scale.iter().any(|&s| !s.is_finite() || s == 0.0)
        {
            return Err(crate::DataError::Inconsistent(
                "normalizer statistics must be finite with non-zero scales".into(),
            ));
        }
        Ok(Normalizer {
            kind,
            offset,
            scale,
        })
    }

    /// The strategy this normalizer was fit with.
    pub fn kind(&self) -> NormKind {
        self.kind
    }

    /// Per-column offsets subtracted before scaling.
    pub fn offset(&self) -> &[f64] {
        &self.offset
    }

    /// Per-column divisors (never zero).
    pub fn scale(&self) -> &[f64] {
        &self.scale
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.offset.len()
    }

    /// Applies the normalization.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.num_features(),
            "Normalizer: column mismatch"
        );
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.offset[c]) / self.scale[c];
            }
        }
        out
    }

    /// Applies the normalization to a single sample in place.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fitted column count.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(
            row.len(),
            self.num_features(),
            "Normalizer: column mismatch"
        );
        for (c, v) in row.iter_mut().enumerate() {
            *v = (*v - self.offset[c]) / self.scale[c];
        }
    }

    /// Inverts the normalization.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn inverse_transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(
            data.cols(),
            self.num_features(),
            "Normalizer: column mismatch"
        );
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = *v * self.scale[c] + self.offset[c];
            }
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::SeededRng;

    #[test]
    fn minmax_maps_to_unit_interval() {
        let data = Matrix::from_rows(&[&[0.0], &[5.0], &[10.0]]);
        let n = Normalizer::fit(&data, NormKind::MinMaxSymmetric);
        let t = n.transform(&data);
        assert_eq!(t.get(0, 0), -1.0);
        assert_eq!(t.get(1, 0), 0.0);
        assert_eq!(t.get(2, 0), 1.0);
    }

    #[test]
    fn zscore_standardizes() {
        let mut rng = SeededRng::new(1);
        let data = Matrix::from_fn(500, 3, |_, c| rng.normal(c as f64 * 10.0, (c + 1) as f64));
        let n = Normalizer::fit(&data, NormKind::ZScore);
        let t = n.transform(&data);
        let means = t.col_means();
        let stds = t.col_stds();
        for c in 0..3 {
            assert!(means[c].abs() < 1e-10);
            assert!((stds[c] - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn round_trip_both_kinds() {
        let mut rng = SeededRng::new(2);
        let data = Matrix::from_fn(40, 4, |_, _| rng.normal(3.0, 7.0));
        for kind in [NormKind::MinMaxSymmetric, NormKind::ZScore] {
            let n = Normalizer::fit(&data, kind);
            let back = n.inverse_transform(&n.transform(&data));
            assert!(back.try_sub(&data).unwrap().max_abs() < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn constant_columns_are_safe() {
        let data = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]);
        for kind in [NormKind::MinMaxSymmetric, NormKind::ZScore] {
            let n = Normalizer::fit(&data, kind);
            let t = n.transform(&data);
            assert!(t.is_finite(), "{kind:?}");
            assert_eq!(t.get(0, 0), 0.0);
            let back = n.inverse_transform(&t);
            assert_eq!(back.get(0, 0), 5.0);
        }
    }

    #[test]
    fn fit_ignores_non_finite_cells() {
        for kind in [NormKind::MinMaxSymmetric, NormKind::ZScore] {
            let data = Matrix::from_rows(&[
                &[0.0, f64::NAN],
                &[f64::INFINITY, 1.0],
                &[10.0, 3.0],
                &[5.0, f64::NEG_INFINITY],
            ]);
            let n = Normalizer::fit(&data, kind);
            assert!(
                n.offset().iter().all(|v| v.is_finite()),
                "{kind:?}: offsets must be finite"
            );
            assert!(
                n.scale().iter().all(|v| v.is_finite() && *v != 0.0),
                "{kind:?}: scales must be finite and non-zero"
            );
        }
    }

    #[test]
    fn fit_all_non_finite_column_is_identity() {
        let data = Matrix::from_rows(&[&[f64::NAN, 1.0], &[f64::NAN, 2.0]]);
        let n = Normalizer::fit(&data, NormKind::MinMaxSymmetric);
        assert_eq!(n.offset()[0], 0.0);
        assert_eq!(n.scale()[0], 1.0);
    }

    #[test]
    fn drifted_data_can_exceed_range() {
        let train = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let n = Normalizer::fit(&train, NormKind::MinMaxSymmetric);
        let drifted = n.transform(&Matrix::from_rows(&[&[5.0]]));
        assert!(
            drifted.get(0, 0) > 1.0,
            "out-of-support values are preserved"
        );
    }

    #[test]
    fn from_parts_round_trips_fitted_statistics() {
        let mut rng = SeededRng::new(3);
        let data = Matrix::from_fn(30, 5, |_, _| rng.normal(-1.0, 4.0));
        let n = Normalizer::fit(&data, NormKind::ZScore);
        let rebuilt =
            Normalizer::from_parts(n.kind(), n.offset().to_vec(), n.scale().to_vec()).unwrap();
        assert_eq!(rebuilt, n);
        assert_eq!(rebuilt.transform(&data), n.transform(&data));
    }

    #[test]
    fn from_parts_rejects_bad_statistics() {
        assert!(Normalizer::from_parts(NormKind::ZScore, vec![0.0], vec![1.0, 2.0]).is_err());
        assert!(Normalizer::from_parts(NormKind::ZScore, vec![], vec![]).is_err());
        assert!(Normalizer::from_parts(NormKind::ZScore, vec![0.0], vec![0.0]).is_err());
        assert!(
            Normalizer::from_parts(NormKind::MinMaxSymmetric, vec![f64::NAN], vec![1.0]).is_err()
        );
    }

    #[test]
    fn transform_row_matches_matrix() {
        let train = Matrix::from_rows(&[&[0.0, -2.0], &[4.0, 2.0]]);
        let n = Normalizer::fit(&train, NormKind::MinMaxSymmetric);
        let m = n.transform(&train);
        let mut row = [0.0, -2.0];
        n.transform_row(&mut row);
        assert_eq!(row, [m.get(0, 0), m.get(0, 1)]);
    }
}
