//! Declarative drift scenarios: spec types plus a small plain-text DSL
//! that compile into an [`Scm`] + source/target [`DomainSpec`] pair with
//! recorded ground-truth intervention targets.
//!
//! The two fixed generators ([`crate::synth5gc`] / [`crate::synth5gipc`])
//! reproduce the paper's evaluation; this module generalizes them into a
//! *scenario language* so the test-suite and benches can sweep hundreds of
//! drift configurations — topology family, feature count (up to
//! thousands), intervention set size and strength, gradual vs abrupt
//! drift schedules, label shift, recurring/seasonal drift, and
//! adversarially-correlated variant features — each with known
//! ground-truth targets to score FS recall/precision against.
//!
//! A scenario is a flat `key = value` text (the same shape as the serve
//! tenant manifest: `#` comments, blank lines, 1-based line numbers in
//! errors). Every key has a default, so any subset is a valid spec:
//!
//! ```text
//! # a 48-feature layered scenario with gradual drift
//! topology     = layered
//! features     = 48
//! variant      = 8
//! strength     = 2.4
//! schedule     = gradual:6
//! label_shift  = 0.2
//! seed         = 7
//! ```
//!
//! [`ScenarioSpec::parse`] → [`ScenarioSpec::compile`] →
//! [`CompiledScenario::generate`] is the full path from text to data.
//! Generation fans rows over [`fsda_linalg::par::par_map`] with per-row
//! derived seeds, so the produced matrices are **bit-identical at any
//! thread count** — the same determinism contract as the rest of the
//! workspace.

use crate::dataset::Dataset;
use crate::scm::{DomainSpec, Intervention, NodeKind, Scm, ScmNode};
use crate::{DataError, Result};
use fsda_linalg::par::{par_map, resolve_threads};
use fsda_linalg::{Matrix, SeededRng};

/// How observed features attach to the latent drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Every feature is a child of the single root latent.
    Star,
    /// Features form chains (blocks of 8), each block rooted in a latent.
    Chain,
    /// Each feature hangs off one of the latents, round-robin.
    Layered,
    /// Alternating layered and chained features.
    Mixed,
}

impl Topology {
    /// All families, in DSL order.
    pub const ALL: [Topology; 4] = [
        Topology::Star,
        Topology::Chain,
        Topology::Layered,
        Topology::Mixed,
    ];

    /// The DSL keyword for this family.
    pub fn as_str(self) -> &'static str {
        match self {
            Topology::Star => "star",
            Topology::Chain => "chain",
            Topology::Layered => "layered",
            Topology::Mixed => "mixed",
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How the target interventions unfold over the drift window sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// One window at full intervention strength.
    Abrupt,
    /// Strength ramps linearly over `windows` windows, ending at full.
    Gradual {
        /// Number of windows in the ramp (>= 2).
        windows: usize,
    },
    /// Recurring drift: strength rises to full and falls back over one
    /// season of `period` windows (triangle wave).
    Seasonal {
        /// Windows per season (>= 3); full strength at the mid-window.
        period: usize,
    },
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Schedule::Abrupt => f.write_str("abrupt"),
            Schedule::Gradual { windows } => write!(f, "gradual:{windows}"),
            Schedule::Seasonal { period } => write!(f, "seasonal:{period}"),
        }
    }
}

/// Why a scenario spec failed to parse or validate.
#[derive(Debug)]
pub enum ScenarioError {
    /// A line was not a well-formed `key = value` entry, used an unknown
    /// key, repeated a key, or carried an unparsable value.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The spec parsed but its values are inconsistent.
    Invalid(String),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Syntax { line, message } => {
                write!(f, "scenario line {line}: {message}")
            }
            ScenarioError::Invalid(m) => write!(f, "invalid scenario: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ScenarioError> for DataError {
    fn from(e: ScenarioError) -> Self {
        DataError::Inconsistent(e.to_string())
    }
}

/// A declarative drift scenario. All fields have defaults; construct with
/// [`ScenarioSpec::default`] + builder methods or parse the text DSL.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Graph family connecting latents and features.
    pub topology: Topology,
    /// Observed feature count (2 ..= 65536 — "up to thousands").
    pub features: usize,
    /// Number of classes (>= 2).
    pub classes: usize,
    /// Number of latent drivers (>= 1).
    pub latents: usize,
    /// Size of the intervention set (1 ..= features).
    pub variant: usize,
    /// How many of the variant features keep their full latent coupling
    /// (adversarially correlated with the invariant block; <= variant).
    pub adversarial: usize,
    /// Intervention strength multiplier (> 0; ~2.4 strong, ~0.5 weak).
    pub strength: f64,
    /// Drift schedule.
    pub schedule: Schedule,
    /// Target-domain label-shift intensity in [0, 0.9]: class marginals
    /// tilt linearly from `1 - label_shift` to `1 + label_shift`.
    pub label_shift: f64,
    /// Source-domain training rows.
    pub source_samples: usize,
    /// Target-domain test rows (drawn at full drift).
    pub target_samples: usize,
    /// Labeled target pool rows per class (>= shots).
    pub pool_per_class: usize,
    /// Few-shot budget per class drawn from the pool.
    pub shots: usize,
    /// Master seed; everything else derives from it.
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            topology: Topology::Layered,
            features: 32,
            classes: 4,
            latents: 3,
            variant: 6,
            adversarial: 0,
            strength: 2.4,
            schedule: Schedule::Abrupt,
            label_shift: 0.0,
            source_samples: 480,
            target_samples: 240,
            pool_per_class: 16,
            shots: 12,
            seed: 0,
        }
    }
}

/// Canonical key order for [`ScenarioSpec::render`] (also the reference
/// list of accepted DSL keys).
const KEYS: [&str; 14] = [
    "topology",
    "features",
    "classes",
    "latents",
    "variant",
    "adversarial",
    "strength",
    "schedule",
    "label_shift",
    "source_samples",
    "target_samples",
    "pool_per_class",
    "shots",
    "seed",
];

fn syntax(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_usize(line: usize, key: &str, v: &str) -> std::result::Result<usize, ScenarioError> {
    v.parse::<usize>().map_err(|_| {
        syntax(
            line,
            format!("{key}: expected a non-negative integer, got \"{v}\""),
        )
    })
}

fn parse_f64(line: usize, key: &str, v: &str) -> std::result::Result<f64, ScenarioError> {
    let x = v
        .parse::<f64>()
        .map_err(|_| syntax(line, format!("{key}: expected a number, got \"{v}\"")))?;
    if !x.is_finite() {
        return Err(syntax(line, format!("{key}: must be finite, got \"{v}\"")));
    }
    Ok(x)
}

impl ScenarioSpec {
    /// Parses the text DSL. Every key is optional (defaults apply); `#`
    /// comments and blank lines are skipped.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Syntax`] with the 1-based line number for a
    /// malformed line, unknown or duplicate key, or unparsable value.
    pub fn parse(text: &str) -> std::result::Result<ScenarioSpec, ScenarioError> {
        let mut spec = ScenarioSpec::default();
        let mut seen: Vec<&str> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (key, value) = trimmed.split_once('=').ok_or_else(|| {
                syntax(line, format!("expected \"key = value\", got \"{trimmed}\""))
            })?;
            let key = key.trim();
            let value = value.trim();
            let canonical = KEYS
                .iter()
                .find(|&&k| k == key)
                .ok_or_else(|| syntax(line, format!("unknown key \"{key}\"")))?;
            if seen.contains(canonical) {
                return Err(syntax(line, format!("duplicate key \"{key}\"")));
            }
            seen.push(canonical);
            if value.is_empty() {
                return Err(syntax(line, format!("{key}: empty value")));
            }
            match key {
                "topology" => {
                    spec.topology = Topology::ALL
                        .into_iter()
                        .find(|t| t.as_str() == value)
                        .ok_or_else(|| {
                            syntax(
                                line,
                                format!(
                                    "topology: expected star|chain|layered|mixed, got \"{value}\""
                                ),
                            )
                        })?;
                }
                "features" => spec.features = parse_usize(line, key, value)?,
                "classes" => spec.classes = parse_usize(line, key, value)?,
                "latents" => spec.latents = parse_usize(line, key, value)?,
                "variant" => spec.variant = parse_usize(line, key, value)?,
                "adversarial" => spec.adversarial = parse_usize(line, key, value)?,
                "strength" => spec.strength = parse_f64(line, key, value)?,
                "schedule" => {
                    spec.schedule = match value.split_once(':') {
                        None if value == "abrupt" => Schedule::Abrupt,
                        Some(("gradual", n)) => Schedule::Gradual {
                            windows: parse_usize(line, "schedule windows", n)?,
                        },
                        Some(("seasonal", n)) => Schedule::Seasonal {
                            period: parse_usize(line, "schedule period", n)?,
                        },
                        _ => {
                            return Err(syntax(
                                line,
                                format!(
                                    "schedule: expected abrupt|gradual:<windows>|\
                                     seasonal:<period>, got \"{value}\""
                                ),
                            ))
                        }
                    };
                }
                "label_shift" => spec.label_shift = parse_f64(line, key, value)?,
                "source_samples" => spec.source_samples = parse_usize(line, key, value)?,
                "target_samples" => spec.target_samples = parse_usize(line, key, value)?,
                "pool_per_class" => spec.pool_per_class = parse_usize(line, key, value)?,
                "shots" => spec.shots = parse_usize(line, key, value)?,
                "seed" => {
                    spec.seed = value.parse::<u64>().map_err(|_| {
                        syntax(line, format!("seed: expected a u64, got \"{value}\""))
                    })?;
                }
                _ => unreachable!("key already validated against KEYS"),
            }
        }
        Ok(spec)
    }

    /// Renders the spec back to its canonical text form. The output parses
    /// back to an equal spec (`parse(render(s)) == s` for any valid `s`).
    pub fn render(&self) -> String {
        let mut out = String::from("# fsda drift scenario\n");
        for key in KEYS {
            let value = match key {
                "topology" => self.topology.to_string(),
                "features" => self.features.to_string(),
                "classes" => self.classes.to_string(),
                "latents" => self.latents.to_string(),
                "variant" => self.variant.to_string(),
                "adversarial" => self.adversarial.to_string(),
                "strength" => self.strength.to_string(),
                "schedule" => self.schedule.to_string(),
                "label_shift" => self.label_shift.to_string(),
                "source_samples" => self.source_samples.to_string(),
                "target_samples" => self.target_samples.to_string(),
                "pool_per_class" => self.pool_per_class.to_string(),
                "shots" => self.shots.to_string(),
                "seed" => self.seed.to_string(),
                _ => unreachable!("KEYS is exhaustive"),
            };
            out.push_str(&format!("{key} = {value}\n"));
        }
        out
    }

    /// Checks internal consistency of the spec's values.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] describing the first violated constraint.
    pub fn validate(&self) -> std::result::Result<(), ScenarioError> {
        let err = |m: String| Err(ScenarioError::Invalid(m));
        if self.features < 2 || self.features > 65_536 {
            return err(format!(
                "features must be in 2..=65536, got {}",
                self.features
            ));
        }
        if self.classes < 2 {
            return err(format!("classes must be >= 2, got {}", self.classes));
        }
        if self.latents == 0 {
            return err("latents must be >= 1".into());
        }
        if self.variant == 0 || self.variant > self.features {
            return err(format!(
                "variant must be in 1..=features ({}), got {}",
                self.features, self.variant
            ));
        }
        if self.adversarial > self.variant {
            return err(format!(
                "adversarial ({}) cannot exceed variant ({})",
                self.adversarial, self.variant
            ));
        }
        if !self.strength.is_finite() || self.strength <= 0.0 {
            return err(format!(
                "strength must be finite and > 0, got {}",
                self.strength
            ));
        }
        if !(0.0..=0.9).contains(&self.label_shift) {
            return err(format!(
                "label_shift must be in [0, 0.9], got {}",
                self.label_shift
            ));
        }
        match self.schedule {
            Schedule::Gradual { windows } if windows < 2 => {
                return err(format!(
                    "gradual schedule needs >= 2 windows, got {windows}"
                ));
            }
            Schedule::Seasonal { period } if period < 3 => {
                return err(format!("seasonal schedule needs period >= 3, got {period}"));
            }
            _ => {}
        }
        if self.source_samples < self.classes {
            return err(format!(
                "source_samples ({}) must cover every class ({})",
                self.source_samples, self.classes
            ));
        }
        if self.target_samples < self.classes {
            return err(format!(
                "target_samples ({}) must cover every class ({})",
                self.target_samples, self.classes
            ));
        }
        if self.shots == 0 || self.pool_per_class < self.shots {
            return err(format!(
                "need 1 <= shots <= pool_per_class, got shots {} pool {}",
                self.shots, self.pool_per_class
            ));
        }
        Ok(())
    }

    /// Builder-style topology override.
    pub fn with_topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    /// Builder-style feature count.
    pub fn with_features(mut self, n: usize) -> Self {
        self.features = n;
        self
    }

    /// Builder-style intervention-set size.
    pub fn with_variant(mut self, n: usize) -> Self {
        self.variant = n;
        self
    }

    /// Builder-style adversarially-correlated variant count.
    pub fn with_adversarial(mut self, n: usize) -> Self {
        self.adversarial = n;
        self
    }

    /// Builder-style intervention strength.
    pub fn with_strength(mut self, s: f64) -> Self {
        self.strength = s;
        self
    }

    /// Builder-style drift schedule.
    pub fn with_schedule(mut self, s: Schedule) -> Self {
        self.schedule = s;
        self
    }

    /// Builder-style label-shift intensity.
    pub fn with_label_shift(mut self, s: f64) -> Self {
        self.label_shift = s;
        self
    }

    /// Builder-style few-shot count.
    pub fn with_shots(mut self, n: usize) -> Self {
        self.shots = n;
        self
    }

    /// Builder-style master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and compiles the spec into an executable scenario.
    ///
    /// # Errors
    ///
    /// [`DataError::Inconsistent`] when [`ScenarioSpec::validate`] fails
    /// (SCM construction itself cannot fail for a valid spec).
    pub fn compile(&self) -> Result<CompiledScenario> {
        self.validate()?;
        let mut structure_rng = SeededRng::new(mix(self.seed ^ 0xA11C_E5CE_7A51_0000));
        let l = self.latents;
        let mut nodes: Vec<ScmNode> = Vec::with_capacity(l + self.features);
        nodes.push(ScmNode::latent("lat0", 1.0));
        for i in 1..l {
            nodes.push(ScmNode {
                name: format!("lat{i}"),
                kind: NodeKind::Latent,
                parents: vec![0],
                weights: vec![0.6],
                bias: 0.0,
                class_effect: Vec::new(),
                noise_std: 0.8,
            });
        }

        // The intervention set: `variant` feature columns spread by stride
        // so they land in different parts of the topology. The last
        // `adversarial` of them keep their full latent coupling.
        let variant_cols: Vec<usize> = (0..self.variant)
            .map(|k| k * self.features / self.variant)
            .collect();

        for j in 0..self.features {
            let latent_of = |j: usize| j % l;
            let latent_w = structure_rng.uniform_range(0.5, 0.9);
            let (parents, weights) = match self.topology {
                Topology::Star => (vec![0], vec![latent_w]),
                Topology::Layered => (vec![latent_of(j)], vec![latent_w]),
                Topology::Chain => {
                    if j % 8 == 0 {
                        (vec![latent_of(j)], vec![latent_w])
                    } else {
                        (vec![l + j - 1], vec![0.7])
                    }
                }
                Topology::Mixed => {
                    if j % 2 == 0 {
                        (vec![latent_of(j)], vec![latent_w])
                    } else {
                        (vec![l + j - 1, latent_of(j)], vec![0.55, latent_w * 0.5])
                    }
                }
            };
            let rank = variant_cols.iter().position(|&c| c == j);
            let is_variant = rank.is_some();
            // Class signal: variant features carry a stronger fault
            // signature than invariant ones (as in the 5G generators), so
            // discarding them visibly costs accuracy. Signatures are drawn
            // per feature from the structure rng — a *periodic* pattern in
            // `j` would alias with the stride of the variant set and give
            // distinct variant features identical signatures, making their
            // drifts mutually screenable (a faithfulness violation).
            let signal = if is_variant { 1.2 } else { 0.6 };
            let effect: Vec<f64> = (0..self.classes)
                .map(|y| {
                    if y == 0 {
                        0.0
                    } else {
                        signal * structure_rng.uniform_range(-0.8, 0.8)
                    }
                })
                .collect();
            let mut node = ScmNode::observed(format!("f{j:04}"), parents, weights, 0.4)
                .with_class_effect(effect);
            // Decouple non-adversarial variant features from the shared
            // latents: their drift must not leak into invariant columns
            // (faithfulness). Adversarial ones keep full coupling — their
            // shift stays collinear with the invariant block's drivers,
            // the hard case for conditional-invariance testing.
            if let Some(rank) = rank {
                let adversarial = rank >= self.variant - self.adversarial;
                if !adversarial {
                    for w in &mut node.weights {
                        *w *= 0.25;
                    }
                }
            }
            nodes.push(node);
        }
        let scm = Scm::new(nodes, self.classes)?;

        // Full-strength target interventions, tiered by rank like the
        // paper generators: strong shifts inflate noise too, and signs
        // alternate so drift is not a uniform translation.
        let mut target = DomainSpec::observational();
        for (rank, &col) in variant_cols.iter().enumerate() {
            let node = l + col;
            let (mag, noise_factor) = match rank % 3 {
                0 => (1.0, 2.0),
                1 => (0.75, 1.6),
                _ => (0.55, 1.3),
            };
            let shift = self.strength * mag * if rank % 2 == 0 { 1.0 } else { -1.0 };
            if noise_factor > 1.0 {
                target.intervene(
                    node,
                    Intervention::ShiftAndScale {
                        shift,
                        noise_factor,
                    },
                );
            } else {
                target.intervene(node, Intervention::MeanShift(shift));
            }
        }
        let ground_truth = scm.ground_truth_variant(&target);
        Ok(CompiledScenario {
            spec: self.clone(),
            scm,
            target,
            ground_truth,
        })
    }
}

/// A compiled scenario: the SCM, the full-strength target spec, and the
/// recorded ground-truth variant feature columns.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    spec: ScenarioSpec,
    scm: Scm,
    target: DomainSpec,
    ground_truth: Vec<usize>,
}

/// The datasets one scenario cell needs to run a mitigation method.
#[derive(Debug, Clone)]
pub struct ScenarioData {
    /// Source-domain training set (observational).
    pub source_train: Dataset,
    /// Labeled target pool at full drift (`pool_per_class` rows/class);
    /// draw the few-shot subset from here.
    pub target_pool: Dataset,
    /// Target-domain test set at full drift, label shift applied.
    pub target_test: Dataset,
    /// Ground-truth variant feature columns (sorted).
    pub ground_truth_variant: Vec<usize>,
}

/// Splitmix64-style finalizer used for all derived seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-row seed: a pure function of (master seed, stream, class, index),
/// so sampling is independent of thread count and row scheduling.
fn row_seed(seed: u64, stream: u64, y: u64, i: u64) -> u64 {
    mix(seed ^ mix(stream ^ mix(y ^ mix(i))))
}

const STREAM_SOURCE: u64 = 1;
const STREAM_POOL: u64 = 2;
const STREAM_TEST: u64 = 3;
const STREAM_WINDOW_BASE: u64 = 16;

impl CompiledScenario {
    /// The spec this scenario was compiled from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The compiled SCM.
    pub fn scm(&self) -> &Scm {
        &self.scm
    }

    /// The full-strength target-domain spec.
    pub fn target_spec(&self) -> &DomainSpec {
        &self.target
    }

    /// Ground-truth variant feature columns (sorted), valid for any
    /// window with strictly positive drift fraction.
    pub fn ground_truth_variant(&self) -> &[usize] {
        &self.ground_truth
    }

    /// Per-window drift fractions for the spec's schedule: `[1.0]` for
    /// abrupt, a linear ramp ending at 1.0 for gradual, and a triangle
    /// (0 → 1 → 0, peak at the mid window) for seasonal.
    pub fn window_fractions(&self) -> Vec<f64> {
        match self.spec.schedule {
            Schedule::Abrupt => vec![1.0],
            Schedule::Gradual { windows } => {
                (1..=windows).map(|i| i as f64 / windows as f64).collect()
            }
            Schedule::Seasonal { period } => {
                let mid = (period - 1) / 2;
                (0..period)
                    .map(|i| {
                        if i <= mid {
                            i as f64 / mid as f64
                        } else {
                            (period - 1 - i) as f64 / (period - 1 - mid) as f64
                        }
                    })
                    .collect()
            }
        }
    }

    /// The window [`DomainSpec`] sequence ([`DomainSpec::scaled`] applied
    /// to [`CompiledScenario::window_fractions`]).
    pub fn windows(&self) -> Vec<DomainSpec> {
        self.window_fractions()
            .into_iter()
            .map(|f| self.target.scaled(f))
            .collect()
    }

    /// Target-domain class counts for `total` rows: marginals tilt
    /// linearly across classes by `shift`, apportioned by largest
    /// remainder with every class kept non-empty. Deterministic.
    fn class_counts(&self, total: usize, shift: f64) -> Vec<usize> {
        let c = self.spec.classes;
        let weights: Vec<f64> = (0..c)
            .map(|y| 1.0 + shift * (2.0 * y as f64 / (c as f64 - 1.0) - 1.0))
            .collect();
        let sum: f64 = weights.iter().sum();
        let quota: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
        let mut counts: Vec<usize> = quota.iter().map(|q| q.floor() as usize).collect();
        let mut order: Vec<usize> = (0..c).collect();
        order.sort_by(|&a, &b| {
            (quota[b] - quota[b].floor())
                .total_cmp(&(quota[a] - quota[a].floor()))
                .then(a.cmp(&b))
        });
        let assigned: usize = counts.iter().sum();
        for &y in order.iter().cycle().take(total.saturating_sub(assigned)) {
            counts[y] += 1;
        }
        // Keep every class represented (validate() guarantees total >= c).
        for y in 0..c {
            if counts[y] == 0 {
                let max = (0..c).max_by(|&a, &b| counts[a].cmp(&counts[b]).then(b.cmp(&a)));
                if let Some(m) = max {
                    counts[m] -= 1;
                }
                counts[y] = 1;
            }
        }
        counts
    }

    /// Samples one dataset: rows fan over the thread pool with per-row
    /// derived seeds, then a spec-derived shuffle — bit-identical at any
    /// thread count.
    fn sample_dataset(
        &self,
        counts: &[usize],
        spec: &DomainSpec,
        stream: u64,
        threads: usize,
    ) -> Result<Dataset> {
        let rows: Vec<(usize, u64)> = counts
            .iter()
            .enumerate()
            .flat_map(|(y, &n)| {
                (0..n).map(move |i| (y, row_seed(self.spec.seed, stream, y as u64, i as u64)))
            })
            .collect();
        let sampled: Vec<Vec<f64>> = par_map(threads, &rows, |_, &(y, s)| {
            let mut rng = SeededRng::new(s);
            self.scm.sample_observed(y, spec, &mut rng)
        });
        let mut features = Matrix::zeros(rows.len(), self.scm.num_features());
        let mut labels = Vec::with_capacity(rows.len());
        for (r, ((y, _), vals)) in rows.iter().zip(&sampled).enumerate() {
            features.row_mut(r).copy_from_slice(vals);
            labels.push(*y);
        }
        let mut ds = Dataset::with_names(
            features,
            labels,
            self.spec.classes,
            self.scm.feature_names(),
        )?;
        ds.shuffle(&mut SeededRng::new(row_seed(
            self.spec.seed,
            stream,
            u64::MAX,
            0,
        )));
        Ok(ds)
    }

    /// Generates the scenario's source/pool/test datasets. `threads = None`
    /// uses all available cores; the output is bit-identical for every
    /// thread count.
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`] from dataset assembly (cannot normally
    /// fail for a validated spec).
    pub fn generate(&self, threads: Option<usize>) -> Result<ScenarioData> {
        let threads = resolve_threads(threads);
        let src = self.class_counts(self.spec.source_samples, 0.0);
        let source_train =
            self.sample_dataset(&src, &DomainSpec::observational(), STREAM_SOURCE, threads)?;
        let pool_counts = vec![self.spec.pool_per_class; self.spec.classes];
        let target_pool = self.sample_dataset(&pool_counts, &self.target, STREAM_POOL, threads)?;
        let tgt = self.class_counts(self.spec.target_samples, self.spec.label_shift);
        let target_test = self.sample_dataset(&tgt, &self.target, STREAM_TEST, threads)?;
        Ok(ScenarioData {
            source_train,
            target_pool,
            target_test,
            ground_truth_variant: self.ground_truth.clone(),
        })
    }

    /// Generates `rows` rows of the drift stream at window `window` (see
    /// [`CompiledScenario::window_fractions`]): interventions and label
    /// shift both scale with the window's drift fraction.
    ///
    /// # Errors
    ///
    /// [`DataError::Inconsistent`] when `window` is out of range or
    /// `rows` cannot cover every class.
    pub fn generate_window(
        &self,
        window: usize,
        rows: usize,
        threads: Option<usize>,
    ) -> Result<Dataset> {
        let fractions = self.window_fractions();
        let frac = *fractions.get(window).ok_or_else(|| {
            DataError::Inconsistent(format!(
                "window {window} out of range (schedule has {})",
                fractions.len()
            ))
        })?;
        if rows < self.spec.classes {
            return Err(DataError::Inconsistent(format!(
                "window rows ({rows}) must cover every class ({})",
                self.spec.classes
            )));
        }
        let spec = self.target.scaled(frac);
        let counts = self.class_counts(rows, self.spec.label_shift * frac);
        self.sample_dataset(
            &counts,
            &spec,
            STREAM_WINDOW_BASE + window as u64,
            resolve_threads(threads),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_empty_text_gives_defaults() {
        let spec = ScenarioSpec::parse("# only a comment\n\n").unwrap();
        assert_eq!(spec, ScenarioSpec::default());
    }

    #[test]
    fn parse_reads_every_key() {
        let text = "topology = chain\nfeatures = 100\nclasses = 3\nlatents = 2\n\
                    variant = 9\nadversarial = 2\nstrength = 1.25\nschedule = seasonal:5\n\
                    label_shift = 0.3\nsource_samples = 300\ntarget_samples = 150\n\
                    pool_per_class = 20\nshots = 5\nseed = 99\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.topology, Topology::Chain);
        assert_eq!(spec.features, 100);
        assert_eq!(spec.classes, 3);
        assert_eq!(spec.latents, 2);
        assert_eq!(spec.variant, 9);
        assert_eq!(spec.adversarial, 2);
        assert_eq!(spec.strength, 1.25);
        assert_eq!(spec.schedule, Schedule::Seasonal { period: 5 });
        assert_eq!(spec.label_shift, 0.3);
        assert_eq!(spec.seed, 99);
        spec.validate().unwrap();
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = ScenarioSpec::parse("features = 8\nnot a line\n").unwrap_err();
        assert!(matches!(e, ScenarioError::Syntax { line: 2, .. }), "{e}");

        let e = ScenarioSpec::parse("bogus = 1\n").unwrap_err();
        assert!(matches!(e, ScenarioError::Syntax { line: 1, .. }), "{e}");

        let e = ScenarioSpec::parse("seed = 1\n\nseed = 2\n").unwrap_err();
        assert!(matches!(e, ScenarioError::Syntax { line: 3, .. }), "{e}");

        let e = ScenarioSpec::parse("strength = fast\n").unwrap_err();
        assert!(matches!(e, ScenarioError::Syntax { line: 1, .. }), "{e}");

        let e = ScenarioSpec::parse("schedule = gradual\n").unwrap_err();
        assert!(matches!(e, ScenarioError::Syntax { line: 1, .. }), "{e}");

        let e = ScenarioSpec::parse("features =\n").unwrap_err();
        assert!(matches!(e, ScenarioError::Syntax { line: 1, .. }), "{e}");
    }

    #[test]
    fn render_round_trips() {
        let spec = ScenarioSpec::default()
            .with_topology(Topology::Mixed)
            .with_strength(0.775)
            .with_schedule(Schedule::Gradual { windows: 7 })
            .with_label_shift(0.15)
            .with_seed(1234567);
        let again = ScenarioSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn validate_rejects_inconsistencies() {
        for bad in [
            ScenarioSpec::default().with_features(1),
            ScenarioSpec::default().with_variant(0),
            ScenarioSpec::default().with_variant(64),
            ScenarioSpec::default().with_variant(4).with_adversarial(5),
            ScenarioSpec::default().with_strength(0.0),
            ScenarioSpec::default().with_label_shift(0.95),
            ScenarioSpec::default().with_schedule(Schedule::Gradual { windows: 1 }),
            ScenarioSpec::default().with_schedule(Schedule::Seasonal { period: 2 }),
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn compile_records_ground_truth_for_every_topology() {
        for t in Topology::ALL {
            let spec = ScenarioSpec::default().with_topology(t).with_seed(3);
            let compiled = spec.compile().unwrap();
            let truth = compiled.ground_truth_variant();
            assert_eq!(truth.len(), spec.variant, "{t}: {truth:?}");
            assert!(truth.windows(2).all(|w| w[0] < w[1]), "sorted: {truth:?}");
            assert!(truth.iter().all(|&c| c < spec.features));
            assert_eq!(compiled.scm().num_features(), spec.features);
        }
    }

    #[test]
    fn schedules_shape_window_fractions() {
        let abrupt = ScenarioSpec::default().compile().unwrap();
        assert_eq!(abrupt.window_fractions(), vec![1.0]);

        let gradual = ScenarioSpec::default()
            .with_schedule(Schedule::Gradual { windows: 4 })
            .compile()
            .unwrap();
        assert_eq!(gradual.window_fractions(), vec![0.25, 0.5, 0.75, 1.0]);
        assert_eq!(gradual.windows().len(), 4);
        assert!(gradual.windows()[3].targets().len() == gradual.ground_truth_variant().len());

        let seasonal = ScenarioSpec::default()
            .with_schedule(Schedule::Seasonal { period: 5 })
            .compile()
            .unwrap();
        let fr = seasonal.window_fractions();
        assert_eq!(fr, vec![0.0, 0.5, 1.0, 0.5, 0.0]);
        assert!(seasonal.windows()[0].is_observational());
        // Even periods still reach full strength at the mid window.
        let seasonal = ScenarioSpec::default()
            .with_schedule(Schedule::Seasonal { period: 4 })
            .compile()
            .unwrap();
        assert!(seasonal.window_fractions().contains(&1.0));
    }

    #[test]
    fn label_shift_tilts_class_counts() {
        let c = ScenarioSpec::default()
            .with_label_shift(0.5)
            .compile()
            .unwrap();
        let counts = c.class_counts(240, 0.5);
        assert_eq!(counts.iter().sum::<usize>(), 240);
        assert!(counts[0] < counts[3], "{counts:?}");
        let even = c.class_counts(240, 0.0);
        assert_eq!(even, vec![60; 4]);
        // Extreme totals keep every class non-empty.
        let tiny = c.class_counts(4, 0.9);
        assert_eq!(tiny.iter().sum::<usize>(), 4);
        assert!(tiny.iter().all(|&n| n >= 1), "{tiny:?}");
    }

    #[test]
    fn generate_shapes_and_determinism() {
        let spec = ScenarioSpec::default().with_seed(11);
        let c = spec.compile().unwrap();
        let data = c.generate(Some(2)).unwrap();
        assert_eq!(data.source_train.len(), spec.source_samples);
        assert_eq!(data.target_test.len(), spec.target_samples);
        assert_eq!(
            data.target_pool.class_counts(),
            vec![spec.pool_per_class; spec.classes]
        );
        assert!(data.source_train.features().is_finite());
        assert_eq!(data.ground_truth_variant, c.ground_truth_variant());
        // Same spec, same seed -> identical bytes (thread sweep lives in
        // crates/data/tests/scenario_determinism.rs).
        let again = spec.compile().unwrap().generate(Some(2)).unwrap();
        assert_eq!(
            data.source_train.features().as_slice(),
            again.source_train.features().as_slice()
        );
        // Different seed -> different data.
        let other = spec
            .clone()
            .with_seed(12)
            .compile()
            .unwrap()
            .generate(Some(2))
            .unwrap();
        assert_ne!(
            data.source_train.features().as_slice(),
            other.source_train.features().as_slice()
        );
    }

    #[test]
    fn generate_window_scales_drift() {
        let c = ScenarioSpec::default()
            .with_schedule(Schedule::Gradual { windows: 4 })
            .with_strength(3.0)
            .compile()
            .unwrap();
        let early = c.generate_window(0, 120, Some(2)).unwrap();
        let late = c.generate_window(3, 120, Some(2)).unwrap();
        let col = c.ground_truth_variant()[0];
        let m = |ds: &Dataset| {
            let v: Vec<f64> = (0..ds.len()).map(|r| ds.features().get(r, col)).collect();
            fsda_linalg::stats::mean(&v)
        };
        // The first variant feature takes a positive shift that grows with
        // the window fraction.
        assert!(
            m(&late) > m(&early),
            "late {} vs early {}",
            m(&late),
            m(&early)
        );
        assert!(c.generate_window(4, 120, Some(1)).is_err());
        assert!(c.generate_window(0, 2, Some(1)).is_err());
    }

    #[test]
    fn intervention_shifts_show_up_in_variant_columns() {
        let spec = ScenarioSpec::default().with_strength(3.0).with_seed(5);
        let c = spec.compile().unwrap();
        let data = c.generate(Some(1)).unwrap();
        let col = c.ground_truth_variant()[0];
        let src: Vec<f64> = (0..data.source_train.len())
            .map(|r| data.source_train.features().get(r, col))
            .collect();
        let tgt: Vec<f64> = (0..data.target_test.len())
            .map(|r| data.target_test.features().get(r, col))
            .collect();
        let gap = fsda_linalg::stats::mean(&tgt) - fsda_linalg::stats::mean(&src);
        assert!(gap.abs() > 1.0, "expected a visible shift, got {gap}");
    }
}
