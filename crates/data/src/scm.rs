//! Structural causal models with per-domain soft interventions.
//!
//! The paper models domain shift as *soft interventions* on an unknown
//! feature subset: the target domain is the source domain after some
//! mechanisms `P(X | Pa(X))` changed. This module makes that model
//! executable: an [`Scm`] is a topologically-ordered list of nodes (latent
//! or observed) with linear-Gaussian mechanisms plus per-class additive
//! effects, and a [`DomainSpec`] lists the soft interventions that define a
//! domain. Sampling the same SCM under two specs yields a source/target
//! pair whose **ground-truth intervention targets are known**, which lets
//! the test-suite and benches score the FS method's precision/recall — the
//! real datasets could never provide that.

use crate::dataset::Dataset;
use crate::{DataError, Result};
use fsda_linalg::SeededRng;
use std::collections::BTreeMap;

/// Whether a node is emitted as a dataset feature or stays hidden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Hidden driver (e.g. overall traffic intensity); never emitted.
    Latent,
    /// Emitted as a feature column.
    Observed,
}

/// One node of the SCM with a linear-Gaussian mechanism:
/// `x = bias + Σ w_p · parent_p + class_effect[y] + ε`, `ε ~ N(0, noise_std²)`.
#[derive(Debug, Clone)]
pub struct ScmNode {
    /// Human-readable name (becomes the feature name for observed nodes).
    pub name: String,
    /// Latent or observed.
    pub kind: NodeKind,
    /// Indices of parent nodes; must all be smaller than this node's index.
    pub parents: Vec<usize>,
    /// Linear weights, aligned with `parents`.
    pub weights: Vec<f64>,
    /// Constant offset.
    pub bias: f64,
    /// Additive per-class effect; empty means no class dependence.
    pub class_effect: Vec<f64>,
    /// Standard deviation of the exogenous noise.
    pub noise_std: f64,
}

impl ScmNode {
    /// A latent root node `N(0, noise_std²)`.
    pub fn latent(name: impl Into<String>, noise_std: f64) -> Self {
        ScmNode {
            name: name.into(),
            kind: NodeKind::Latent,
            parents: Vec::new(),
            weights: Vec::new(),
            bias: 0.0,
            class_effect: Vec::new(),
            noise_std,
        }
    }

    /// An observed node with the given mechanism.
    pub fn observed(
        name: impl Into<String>,
        parents: Vec<usize>,
        weights: Vec<f64>,
        noise_std: f64,
    ) -> Self {
        ScmNode {
            name: name.into(),
            kind: NodeKind::Observed,
            parents,
            weights,
            bias: 0.0,
            class_effect: Vec::new(),
            noise_std,
        }
    }

    /// Builder-style per-class additive effect.
    pub fn with_class_effect(mut self, effect: Vec<f64>) -> Self {
        self.class_effect = effect;
        self
    }

    /// Builder-style bias.
    pub fn with_bias(mut self, bias: f64) -> Self {
        self.bias = bias;
        self
    }
}

/// A soft intervention on one node: the mechanism keeps its parents but its
/// distribution changes.
#[derive(Debug, Clone, PartialEq)]
pub enum Intervention {
    /// Adds a constant to the node value (traffic-trend change).
    MeanShift(f64),
    /// Multiplies the exogenous noise standard deviation.
    ScaleNoise(f64),
    /// Multiplies all parent weights (mechanism change).
    ScaleWeights(f64),
    /// Mean shift and noise scaling combined.
    ShiftAndScale {
        /// Additive mean shift.
        shift: f64,
        /// Multiplicative noise-std factor.
        noise_factor: f64,
    },
    /// Remaps the per-class effect: class `y` uses `class_effect[map[y]]`.
    /// Models drifts where a metric's fault signature changes pattern —
    /// the conditional `P(X | Pa, Y)` changes while the class-marginal can
    /// stay identical. A model trained on source data is actively misled
    /// by such features; reconstruction from invariant features is not.
    RemapClassEffect(Vec<usize>),
}

/// The set of soft interventions that defines one domain. A node may carry
/// several interventions (e.g. a mean shift *and* a signature remap).
///
/// An empty spec is the observational (source) domain.
#[derive(Debug, Clone, Default)]
pub struct DomainSpec {
    interventions: BTreeMap<usize, Vec<Intervention>>,
}

impl DomainSpec {
    /// The observational domain (no interventions).
    pub fn observational() -> Self {
        Self::default()
    }

    /// Adds an intervention on `node` (appending to any already present).
    pub fn intervene(&mut self, node: usize, intervention: Intervention) -> &mut Self {
        self.interventions
            .entry(node)
            .or_default()
            .push(intervention);
        self
    }

    /// The interventions applied to `node` (empty slice when untouched).
    pub fn interventions_on(&self, node: usize) -> &[Intervention] {
        self.interventions
            .get(&node)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Back-compat convenience: the first intervention on `node`, if any.
    pub fn intervention_on(&self, node: usize) -> Option<&Intervention> {
        self.interventions_on(node).first()
    }

    /// True when `node` is an intervention target.
    pub fn is_target(&self, node: usize) -> bool {
        !self.interventions_on(node).is_empty()
    }

    /// Indices of all intervened nodes.
    pub fn targets(&self) -> Vec<usize> {
        self.interventions.keys().copied().collect()
    }

    /// True when no interventions are present.
    pub fn is_observational(&self) -> bool {
        self.interventions.is_empty()
    }

    /// A copy of this spec with every intervention scaled to `factor` of
    /// its full strength — the building block for gradual and seasonal
    /// drift schedules (`fsda_data::scenario`).
    ///
    /// Additive shifts scale linearly; multiplicative factors interpolate
    /// from the identity (`1 + (f - 1) * factor`), so `factor = 0` is the
    /// unchanged mechanism and `factor = 1` the full intervention. The
    /// discrete [`Intervention::RemapClassEffect`] has no half-way point
    /// and is kept only at full strength (`factor >= 1`). A non-positive
    /// `factor` yields the observational spec.
    pub fn scaled(&self, factor: f64) -> DomainSpec {
        if factor <= 0.0 {
            return DomainSpec::observational();
        }
        let mut out = DomainSpec::observational();
        for (&node, ivs) in &self.interventions {
            for iv in ivs {
                let scaled = match iv {
                    Intervention::MeanShift(s) => Some(Intervention::MeanShift(s * factor)),
                    Intervention::ScaleNoise(f) => {
                        Some(Intervention::ScaleNoise(1.0 + (f - 1.0) * factor))
                    }
                    Intervention::ScaleWeights(f) => {
                        Some(Intervention::ScaleWeights(1.0 + (f - 1.0) * factor))
                    }
                    Intervention::ShiftAndScale {
                        shift,
                        noise_factor,
                    } => Some(Intervention::ShiftAndScale {
                        shift: shift * factor,
                        noise_factor: 1.0 + (noise_factor - 1.0) * factor,
                    }),
                    Intervention::RemapClassEffect(map) => {
                        (factor >= 1.0).then(|| Intervention::RemapClassEffect(map.clone()))
                    }
                };
                if let Some(iv) = scaled {
                    out.intervene(node, iv);
                }
            }
        }
        out
    }
}

/// A structural causal model over latent and observed nodes.
#[derive(Debug, Clone)]
pub struct Scm {
    nodes: Vec<ScmNode>,
    num_classes: usize,
}

impl Scm {
    /// Creates an SCM, validating topological order and mechanism shapes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] when a node references a parent
    /// at or after its own index, when weights/parents lengths differ, or
    /// when a class effect has the wrong length.
    pub fn new(nodes: Vec<ScmNode>, num_classes: usize) -> Result<Self> {
        for (i, node) in nodes.iter().enumerate() {
            if node.parents.len() != node.weights.len() {
                return Err(DataError::Inconsistent(format!(
                    "node {i} ({}): {} parents but {} weights",
                    node.name,
                    node.parents.len(),
                    node.weights.len()
                )));
            }
            if node.parents.iter().any(|&p| p >= i) {
                return Err(DataError::Inconsistent(format!(
                    "node {i} ({}) references a non-earlier parent",
                    node.name
                )));
            }
            if !node.class_effect.is_empty() && node.class_effect.len() != num_classes {
                return Err(DataError::Inconsistent(format!(
                    "node {i} ({}): class effect of length {} for {num_classes} classes",
                    node.name,
                    node.class_effect.len()
                )));
            }
        }
        Ok(Scm { nodes, num_classes })
    }

    /// Total node count (latent + observed).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The nodes, in topological order.
    pub fn nodes(&self) -> &[ScmNode] {
        &self.nodes
    }

    /// Indices of observed nodes, in order (defines feature-column order).
    pub fn observed_indices(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].kind == NodeKind::Observed)
            .collect()
    }

    /// Number of observed features.
    pub fn num_features(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Observed)
            .count()
    }

    /// Feature names (observed nodes, in column order).
    pub fn feature_names(&self) -> Vec<String> {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Observed)
            .map(|n| n.name.clone())
            .collect()
    }

    /// Samples all node values for one unit of class `y` under `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `y >= num_classes`.
    pub fn sample_all(&self, y: usize, spec: &DomainSpec, rng: &mut SeededRng) -> Vec<f64> {
        assert!(y < self.num_classes, "class {y} out of range");
        let mut values = vec![0.0; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut weight_factor = 1.0;
            let mut noise_factor = 1.0;
            let mut shift = 0.0;
            let mut effect_class = y;
            for iv in spec.interventions_on(i) {
                match iv {
                    Intervention::MeanShift(s) => shift += s,
                    Intervention::ScaleNoise(f) => noise_factor *= f,
                    Intervention::ScaleWeights(f) => weight_factor *= f,
                    Intervention::ShiftAndScale {
                        shift: s,
                        noise_factor: f,
                    } => {
                        shift += s;
                        noise_factor *= f;
                    }
                    Intervention::RemapClassEffect(map) => {
                        assert_eq!(
                            map.len(),
                            self.num_classes,
                            "RemapClassEffect: map length must equal num_classes"
                        );
                        effect_class = map[effect_class];
                    }
                }
            }
            let mut v = node.bias + shift;
            for (&p, &w) in node.parents.iter().zip(&node.weights) {
                v += weight_factor * w * values[p];
            }
            if !node.class_effect.is_empty() {
                v += node.class_effect[effect_class];
            }
            v += rng.normal(0.0, node.noise_std * noise_factor);
            values[i] = v;
        }
        values
    }

    /// Samples the observed feature vector for one unit.
    ///
    /// # Panics
    ///
    /// Panics if `y >= num_classes`.
    pub fn sample_observed(&self, y: usize, spec: &DomainSpec, rng: &mut SeededRng) -> Vec<f64> {
        let all = self.sample_all(y, spec, rng);
        self.observed_indices().iter().map(|&i| all[i]).collect()
    }

    /// Generates a dataset with `class_counts[y]` samples of each class.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Inconsistent`] when `class_counts.len() !=
    /// num_classes`.
    pub fn generate(
        &self,
        class_counts: &[usize],
        spec: &DomainSpec,
        rng: &mut SeededRng,
    ) -> Result<Dataset> {
        if class_counts.len() != self.num_classes {
            return Err(DataError::Inconsistent(format!(
                "{} class counts for {} classes",
                class_counts.len(),
                self.num_classes
            )));
        }
        let total: usize = class_counts.iter().sum();
        let d = self.num_features();
        let mut features = fsda_linalg::Matrix::zeros(total, d);
        let mut labels = Vec::with_capacity(total);
        let mut r = 0;
        for (y, &count) in class_counts.iter().enumerate() {
            for _ in 0..count {
                let row = self.sample_observed(y, spec, rng);
                features.row_mut(r).copy_from_slice(&row);
                labels.push(y);
                r += 1;
            }
        }
        let mut ds = Dataset::with_names(features, labels, self.num_classes, self.feature_names())?;
        ds.shuffle(rng);
        Ok(ds)
    }

    /// Ground-truth domain-variant **feature columns** for a target domain
    /// defined by `spec` (relative to the observational source).
    ///
    /// A feature is variant exactly when its mechanism given *observed*
    /// parents changed: it is directly intervened, or it has an intervened
    /// ancestor reachable through latent-only paths (a latent driver cannot
    /// be conditioned on, so its children's observable mechanisms change).
    /// Shifts that propagate through an *observed* intermediate node do not
    /// make a feature variant — conditioning on the intermediate restores
    /// invariance, which is precisely what the FS method's conditional tests
    /// exploit.
    pub fn ground_truth_variant(&self, spec: &DomainSpec) -> Vec<usize> {
        let n = self.nodes.len();
        // Latent nodes whose distribution changed (directly or via latent chain).
        let mut affected_latent = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.kind != NodeKind::Latent {
                continue;
            }
            let direct = spec.is_target(i);
            let via_parent = node
                .parents
                .iter()
                .any(|&p| self.nodes[p].kind == NodeKind::Latent && affected_latent[p]);
            affected_latent[i] = direct || via_parent;
        }
        let mut variant = Vec::new();
        for (col, &i) in self.observed_indices().iter().enumerate() {
            let node = &self.nodes[i];
            let direct = spec.is_target(i);
            let via_latent = node
                .parents
                .iter()
                .any(|&p| self.nodes[p].kind == NodeKind::Latent && affected_latent[p]);
            if direct || via_latent {
                variant.push(col);
            }
        }
        variant
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::stats::{mean, std_dev};

    /// latent T -> x0, x0 -> x1, x2 independent.
    fn toy_scm() -> Scm {
        let nodes = vec![
            ScmNode::latent("T", 1.0),
            ScmNode::observed("x0", vec![0], vec![1.0], 0.3).with_class_effect(vec![0.0, 1.0]),
            ScmNode::observed("x1", vec![1], vec![0.8], 0.3),
            ScmNode::observed("x2", vec![], vec![], 1.0).with_bias(5.0),
        ];
        Scm::new(nodes, 2).unwrap()
    }

    #[test]
    fn validation_rejects_bad_structures() {
        // Forward reference.
        let bad = vec![
            ScmNode::observed("a", vec![1], vec![1.0], 1.0),
            ScmNode::latent("b", 1.0),
        ];
        assert!(Scm::new(bad, 1).is_err());
        // Mismatched weights.
        let bad = vec![ScmNode::observed("a", vec![], vec![1.0], 1.0)];
        assert!(Scm::new(bad, 1).is_err());
        // Wrong class-effect length.
        let bad = vec![
            ScmNode::observed("a", vec![], vec![], 1.0).with_class_effect(vec![0.0, 1.0, 2.0])
        ];
        assert!(Scm::new(bad, 2).is_err());
    }

    #[test]
    fn observed_indices_and_names() {
        let scm = toy_scm();
        assert_eq!(scm.observed_indices(), vec![1, 2, 3]);
        assert_eq!(scm.num_features(), 3);
        assert_eq!(scm.feature_names(), vec!["x0", "x1", "x2"]);
    }

    #[test]
    fn class_effect_shifts_mean() {
        let scm = toy_scm();
        let spec = DomainSpec::observational();
        let mut rng = SeededRng::new(1);
        let xs0: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(0, &spec, &mut rng)[0])
            .collect();
        let xs1: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(1, &spec, &mut rng)[0])
            .collect();
        assert!((mean(&xs1) - mean(&xs0) - 1.0).abs() < 0.1);
    }

    #[test]
    fn mean_shift_intervention_moves_node() {
        let scm = toy_scm();
        let mut spec = DomainSpec::observational();
        spec.intervene(1, Intervention::MeanShift(4.0));
        let mut rng = SeededRng::new(2);
        let obs: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(0, &DomainSpec::observational(), &mut rng)[0])
            .collect();
        let shifted: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(0, &spec, &mut rng)[0])
            .collect();
        assert!((mean(&shifted) - mean(&obs) - 4.0).abs() < 0.15);
    }

    #[test]
    fn scale_noise_intervention_widens_node() {
        let scm = toy_scm();
        let mut spec = DomainSpec::observational();
        spec.intervene(3, Intervention::ScaleNoise(3.0));
        let mut rng = SeededRng::new(3);
        let obs: Vec<f64> = (0..4000)
            .map(|_| scm.sample_observed(0, &DomainSpec::observational(), &mut rng)[2])
            .collect();
        let wide: Vec<f64> = (0..4000)
            .map(|_| scm.sample_observed(0, &spec, &mut rng)[2])
            .collect();
        assert!(std_dev(&wide) > 2.0 * std_dev(&obs));
    }

    #[test]
    fn scale_weights_changes_mechanism() {
        let scm = toy_scm();
        let mut spec = DomainSpec::observational();
        spec.intervene(2, Intervention::ScaleWeights(0.0)); // cut x0 -> x1
        let mut rng = SeededRng::new(4);
        let n = 4000;
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for _ in 0..n {
            let s = scm.sample_observed(0, &DomainSpec::observational(), &mut rng);
            xs.push(s[0]);
            ys.push(s[1]);
        }
        let cov_obs = fsda_linalg::stats::covariance(&xs, &ys);
        xs.clear();
        ys.clear();
        for _ in 0..n {
            let s = scm.sample_observed(0, &spec, &mut rng);
            xs.push(s[0]);
            ys.push(s[1]);
        }
        let cov_int = fsda_linalg::stats::covariance(&xs, &ys);
        assert!(
            cov_obs > 0.5,
            "observational covariance should be strong: {cov_obs}"
        );
        assert!(
            cov_int.abs() < 0.1,
            "intervened covariance should vanish: {cov_int}"
        );
    }

    #[test]
    fn ground_truth_direct_intervention() {
        let scm = toy_scm();
        let mut spec = DomainSpec::observational();
        spec.intervene(1, Intervention::MeanShift(1.0)); // node 1 = feature col 0
        assert_eq!(scm.ground_truth_variant(&spec), vec![0]);
    }

    #[test]
    fn ground_truth_latent_intervention_marks_children() {
        let scm = toy_scm();
        let mut spec = DomainSpec::observational();
        spec.intervene(0, Intervention::MeanShift(2.0)); // latent T
                                                         // x0 (col 0) is a child of T -> variant. x1 (col 1) is downstream of
                                                         // x0 (observed) -> conditionally invariant. x2 (col 2) untouched.
        assert_eq!(scm.ground_truth_variant(&spec), vec![0]);
    }

    #[test]
    fn ground_truth_latent_chain_propagates() {
        // T1 (latent) -> T2 (latent) -> x.
        let nodes = vec![
            ScmNode::latent("T1", 1.0),
            ScmNode {
                name: "T2".into(),
                kind: NodeKind::Latent,
                parents: vec![0],
                weights: vec![1.0],
                bias: 0.0,
                class_effect: vec![],
                noise_std: 0.5,
            },
            ScmNode::observed("x", vec![1], vec![1.0], 0.5),
        ];
        let scm = Scm::new(nodes, 1).unwrap();
        let mut spec = DomainSpec::observational();
        spec.intervene(0, Intervention::MeanShift(2.0));
        assert_eq!(scm.ground_truth_variant(&spec), vec![0]);
    }

    #[test]
    fn generate_respects_class_counts() {
        let scm = toy_scm();
        let mut rng = SeededRng::new(5);
        let ds = scm
            .generate(&[30, 20], &DomainSpec::observational(), &mut rng)
            .unwrap();
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.class_counts(), vec![30, 20]);
        assert_eq!(ds.num_features(), 3);
        assert!(ds.features().is_finite());
    }

    #[test]
    fn generate_rejects_wrong_count_length() {
        let scm = toy_scm();
        let mut rng = SeededRng::new(6);
        assert!(scm
            .generate(&[5], &DomainSpec::observational(), &mut rng)
            .is_err());
    }

    #[test]
    fn domain_spec_accessors() {
        let mut spec = DomainSpec::observational();
        assert!(spec.is_observational());
        spec.intervene(3, Intervention::MeanShift(1.0));
        spec.intervene(1, Intervention::ScaleNoise(2.0));
        assert!(!spec.is_observational());
        assert_eq!(spec.targets(), vec![1, 3]);
        assert!(matches!(
            spec.intervention_on(3),
            Some(&Intervention::MeanShift(_))
        ));
        assert!(spec.intervention_on(0).is_none());
        assert!(spec.is_target(1));
        assert!(!spec.is_target(0));
    }

    #[test]
    fn scaled_interpolates_interventions() {
        let mut spec = DomainSpec::observational();
        spec.intervene(
            1,
            Intervention::ShiftAndScale {
                shift: 2.0,
                noise_factor: 3.0,
            },
        );
        spec.intervene(2, Intervention::ScaleWeights(0.2));
        spec.intervene(3, Intervention::RemapClassEffect(vec![1, 0]));
        let half = spec.scaled(0.5);
        assert_eq!(
            half.interventions_on(1),
            &[Intervention::ShiftAndScale {
                shift: 1.0,
                noise_factor: 2.0,
            }]
        );
        assert_eq!(half.interventions_on(2), &[Intervention::ScaleWeights(0.6)]);
        assert!(!half.is_target(3), "remap only applies at full strength");
        assert!(spec.scaled(0.0).is_observational());
        assert!(spec.scaled(-1.0).is_observational());
        assert_eq!(spec.scaled(1.0).interventions_on(3).len(), 1);
    }

    #[test]
    fn multiple_interventions_compose() {
        // MeanShift(2) + MeanShift(3) on the same node add up.
        let scm = toy_scm();
        let mut spec = DomainSpec::observational();
        spec.intervene(1, Intervention::MeanShift(2.0));
        spec.intervene(1, Intervention::MeanShift(3.0));
        let mut rng = SeededRng::new(10);
        let obs: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(0, &DomainSpec::observational(), &mut rng)[0])
            .collect();
        let shifted: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(0, &spec, &mut rng)[0])
            .collect();
        assert!((mean(&shifted) - mean(&obs) - 5.0).abs() < 0.2);
    }

    #[test]
    fn remap_class_effect_swaps_signatures() {
        let scm = toy_scm(); // x0 has class effects [0.0, 1.0]
        let mut spec = DomainSpec::observational();
        spec.intervene(1, Intervention::RemapClassEffect(vec![1, 0]));
        let mut rng = SeededRng::new(11);
        // Under the remap, class 0 samples get class 1's effect (+1.0).
        let remapped: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(0, &spec, &mut rng)[0])
            .collect();
        let original: Vec<f64> = (0..3000)
            .map(|_| scm.sample_observed(0, &DomainSpec::observational(), &mut rng)[0])
            .collect();
        assert!((mean(&remapped) - mean(&original) - 1.0).abs() < 0.1);
        // And it is a ground-truth intervention target.
        assert_eq!(scm.ground_truth_variant(&spec), vec![0]);
    }

    #[test]
    #[should_panic(expected = "map length")]
    fn remap_with_wrong_length_panics() {
        let scm = toy_scm();
        let mut spec = DomainSpec::observational();
        spec.intervene(1, Intervention::RemapClassEffect(vec![0]));
        let mut rng = SeededRng::new(12);
        let _ = scm.sample_observed(0, &spec, &mut rng);
    }
}
