//! Synthetic 5G-core (5GC) failure-classification dataset.
//!
//! Mirrors the ITU "AI for Good" network-fault-management dataset the paper
//! uses: a cloud-native 5G mobile core on OpenStack, with a **digital twin**
//! source domain and a **real network** target domain that differ in traffic
//! trends. The published shape is reproduced: 442 performance metrics,
//! 16 classes (normal + 5 fault types × 3 VNFs: AMF, AUSF, UDM), 3,645
//! source training samples, 873 target test samples, and a target training
//! pool from which 1/5/10-shot subsets are drawn.
//!
//! The generator builds an explicit [`Scm`]: a latent global traffic
//! intensity drives per-VNF load latents, which drive traffic/memory/CPU/
//! load metrics; faults add class-dependent effects to the metric groups
//! they physically touch (memory stress → memory metrics, interface down →
//! interface status and traffic, ...). The target domain applies **soft
//! interventions** (mean shifts and noise scaling, i.e. changed traffic
//! trends) directly to a ground-truth set of variant features with three
//! magnitude tiers — strong / medium / weak — so that, exactly as the paper
//! observes in §VI-C, more target samples let FS detect more of them.
//! Class-discriminative signal is deliberately concentrated on the variant
//! features (they are the most informative metrics in-domain), which is
//! what makes a source-only model collapse under drift.

use crate::dataset::Dataset;
use crate::scm::{DomainSpec, Intervention, Scm, ScmNode};
use crate::Result;
use fsda_linalg::SeededRng;

/// The five fault types of the 5GC dataset.
pub const FAULT_TYPES: [&str; 5] = [
    "bridge_del",
    "if_down",
    "pkt_loss",
    "mem_stress",
    "vcpu_over",
];

/// The three VNFs faults are injected into.
pub const FAULTY_VNFS: [&str; 3] = ["amf", "ausf", "udm"];

/// All VNFs contributing metrics (faults are only injected into the first
/// three, matching the dataset description).
pub const ALL_VNFS: [&str; 5] = ["amf", "ausf", "udm", "smf", "upf"];

/// Configuration of the synthetic 5GC generator.
#[derive(Debug, Clone)]
pub struct Synth5gc {
    /// Interfaces per VNF (each contributes 3 traffic metrics + 1 status).
    pub ifaces_per_vnf: usize,
    /// Memory metrics per VNF.
    pub mem_per_vnf: usize,
    /// CPU metrics per VNF.
    pub cpu_per_vnf: usize,
    /// System-load metrics per VNF.
    pub load_per_vnf: usize,
    /// 5G-core registration metrics per VNF.
    pub core_per_vnf: usize,
    /// Infrastructure (host-level) distractor metrics.
    pub infra: usize,
    /// Ground-truth variant features with a strong shift (detectable at 1 shot).
    pub strong_variant: usize,
    /// Variant features with a medium shift (detectable at ~5 shots).
    pub medium_variant: usize,
    /// Variant features with a weak shift (detectable at ~10 shots).
    pub weak_variant: usize,
    /// Total source-domain training samples (spread over 16 classes).
    pub source_total: usize,
    /// Total target-domain test samples.
    pub target_test_total: usize,
    /// Target-domain training-pool samples per class (few-shot subsets are
    /// drawn from this pool; the original dataset ships 700 ≈ 44 × 16).
    pub target_pool_per_class: usize,
    /// Strong-shift magnitude (absolute units; feature scale is ~1).
    pub shift_strong: f64,
    /// Medium-shift magnitude.
    pub shift_medium: f64,
    /// Weak-shift magnitude.
    pub shift_weak: f64,
    /// Class-effect magnitude on variant features.
    pub signal_variant: f64,
    /// Class-effect magnitude on invariant features (weaker: the variant
    /// metrics are the most informative ones in-domain).
    pub signal_invariant: f64,
    /// Magnitude of the diffuse cross-VNF class signal on invariant
    /// metrics (uniform in `[-signal_diffuse, signal_diffuse]` per
    /// feature-class pair).
    pub signal_diffuse: f64,
}

impl Synth5gc {
    /// Paper-scale preset: 442 features, 3,645 source / 873 target-test
    /// samples, 75 ground-truth variant features (35 strong / 33 medium /
    /// 7 weak, matching the detection counts reported in §VI-C).
    pub fn full() -> Self {
        Synth5gc {
            ifaces_per_vnf: 6,
            mem_per_vnf: 10,
            cpu_per_vnf: 10,
            load_per_vnf: 4,
            core_per_vnf: 8,
            infra: 157,
            strong_variant: 35,
            medium_variant: 33,
            weak_variant: 7,
            source_total: 3645,
            target_test_total: 873,
            target_pool_per_class: 44,
            shift_strong: 2.6,
            shift_medium: 0.45,
            shift_weak: 0.24,
            signal_variant: 2.0,
            signal_invariant: 0.6,
            signal_diffuse: 0.1,
        }
    }

    /// Small preset for unit/integration tests: 70 features, 16 classes,
    /// a few hundred samples. Shift tiers are proportionally larger than
    /// the full preset because the CI tests see far fewer samples.
    pub fn small() -> Self {
        Synth5gc {
            ifaces_per_vnf: 2,
            mem_per_vnf: 3,
            cpu_per_vnf: 3,
            load_per_vnf: 2,
            core_per_vnf: 3,
            infra: 10,
            strong_variant: 8,
            medium_variant: 6,
            weak_variant: 2,
            source_total: 640,
            target_test_total: 320,
            target_pool_per_class: 12,
            shift_strong: 2.4,
            shift_medium: 0.9,
            shift_weak: 0.45,
            signal_variant: 2.2,
            signal_invariant: 0.75,
            signal_diffuse: 0.25,
        }
    }

    /// Number of classes: normal + 5 fault types × 3 VNFs.
    pub fn num_classes(&self) -> usize {
        1 + FAULT_TYPES.len() * FAULTY_VNFS.len()
    }

    /// Total observed features this configuration produces.
    pub fn num_features(&self) -> usize {
        let per_vnf = self.ifaces_per_vnf * 3 // traffic metrics
            + self.ifaces_per_vnf            // status
            + self.mem_per_vnf
            + self.cpu_per_vnf
            + self.load_per_vnf
            + self.core_per_vnf;
        per_vnf * ALL_VNFS.len() + ALL_VNFS.len() /* traffic aggregates */ + self.infra
    }

    /// Builds the SCM, the target-domain intervention spec, and the
    /// generated train/test splits.
    ///
    /// # Errors
    ///
    /// Propagates dataset-construction failures (which indicate a
    /// configuration bug).
    pub fn generate(&self, seed: u64) -> Result<Synth5gcBundle> {
        let mut rng = SeededRng::new(seed);
        let (scm, target_spec) = self.build_scm(&mut rng)?;
        let num_classes = self.num_classes();

        let source_counts = spread_total(self.source_total, num_classes);
        let test_counts = spread_total(self.target_test_total, num_classes);
        let pool_counts = vec![self.target_pool_per_class; num_classes];

        let observational = DomainSpec::observational();
        let source_train = scm.generate(&source_counts, &observational, &mut rng)?;
        let target_pool = scm.generate(&pool_counts, &target_spec, &mut rng)?;
        let target_test = scm.generate(&test_counts, &target_spec, &mut rng)?;
        let ground_truth_variant = scm.ground_truth_variant(&target_spec);

        Ok(Synth5gcBundle {
            source_train,
            target_pool,
            target_test,
            ground_truth_variant,
            scm,
            target_spec,
        })
    }

    /// Constructs the SCM nodes and the target-domain soft interventions.
    fn build_scm(&self, rng: &mut SeededRng) -> Result<(Scm, DomainSpec)> {
        let num_classes = self.num_classes();
        let mut nodes: Vec<ScmNode> = Vec::new();

        // Latents: global traffic intensity + per-VNF load.
        let t_global = nodes.len();
        nodes.push(ScmNode::latent("latent_traffic", 1.0));
        let mut vnf_load = Vec::new();
        for vnf in ALL_VNFS {
            let idx = nodes.len();
            let mut n = ScmNode::latent(format!("latent_load_{vnf}"), 0.5);
            n.parents = vec![t_global];
            n.weights = vec![0.8];
            vnf_load.push(idx);
            nodes.push(n);
        }

        // Class helper: class index for fault f on VNF v (v < 3).
        let class_of = |v: usize, f: usize| 1 + v * FAULT_TYPES.len() + f;

        // Metric groups. Each builder returns (node index, group tag).
        #[derive(Clone, Copy, PartialEq)]
        enum Group {
            Traffic { metric: usize },
            Status,
            Memory,
            Cpu,
            Load,
            Core,
        }
        // Feature bookkeeping: (node_idx, vnf_idx, group).
        let mut features: Vec<(usize, usize, Group)> = Vec::new();
        let mut traffic_cols_per_vnf: Vec<Vec<usize>> = vec![Vec::new(); ALL_VNFS.len()];

        for (v, vnf) in ALL_VNFS.iter().enumerate() {
            // Traffic metrics: in_bytes, out_bytes, unicast_pkts per iface.
            for iface in 0..self.ifaces_per_vnf {
                for (m, metric) in ["in_bytes", "out_bytes", "unicast_pkts"].iter().enumerate() {
                    let mut effect = vec![0.0; num_classes];
                    if v < FAULTY_VNFS.len() {
                        // bridge_del / if_down: traffic drops; pkt_loss hits
                        // unicast packet counters hardest.
                        effect[class_of(v, 0)] = -1.2;
                        effect[class_of(v, 1)] = -0.7;
                        effect[class_of(v, 2)] = if m == 2 { -1.0 } else { -0.1 };
                    }
                    let idx = nodes.len();
                    let w = rng.uniform_range(0.55, 0.9);
                    nodes.push(
                        ScmNode::observed(
                            format!("{vnf}_if{iface}_{metric}"),
                            vec![vnf_load[v]],
                            vec![w],
                            0.4,
                        )
                        .with_class_effect(effect),
                    );
                    traffic_cols_per_vnf[v].push(idx);
                    features.push((idx, v, Group::Traffic { metric: m }));
                }
            }
            // Interface status.
            for iface in 0..self.ifaces_per_vnf {
                let mut effect = vec![0.0; num_classes];
                if v < FAULTY_VNFS.len() {
                    effect[class_of(v, 0)] = -1.5;
                    effect[class_of(v, 1)] = -0.6;
                }
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_if{iface}_status"), vec![], vec![], 0.3)
                        .with_bias(1.0)
                        .with_class_effect(effect),
                );
                features.push((idx, v, Group::Status));
            }
            // Memory metrics.
            for j in 0..self.mem_per_vnf {
                let mut effect = vec![0.0; num_classes];
                if v < FAULTY_VNFS.len() {
                    effect[class_of(v, 3)] = 1.4; // mem_stress
                    effect[class_of(v, 4)] = 0.25; // vCPU overload side effect
                }
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_mem_{j}"), vec![vnf_load[v]], vec![0.3], 0.4)
                        .with_class_effect(effect),
                );
                features.push((idx, v, Group::Memory));
            }
            // CPU metrics.
            for j in 0..self.cpu_per_vnf {
                let mut effect = vec![0.0; num_classes];
                if v < FAULTY_VNFS.len() {
                    effect[class_of(v, 4)] = 1.4; // vcpu_over
                    effect[class_of(v, 3)] = 0.3; // swapping under mem stress
                }
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_cpu_{j}"), vec![vnf_load[v]], vec![0.4], 0.4)
                        .with_class_effect(effect),
                );
                features.push((idx, v, Group::Cpu));
            }
            // System load.
            for j in 0..self.load_per_vnf {
                let mut effect = vec![0.0; num_classes];
                if v < FAULTY_VNFS.len() {
                    effect[class_of(v, 3)] = 0.9;
                    effect[class_of(v, 4)] = 0.9;
                }
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(
                        format!("{vnf}_load_{j}"),
                        vec![vnf_load[v]],
                        vec![0.5],
                        0.35,
                    )
                    .with_class_effect(effect),
                );
                features.push((idx, v, Group::Load));
            }
            // 5G-core registration metrics: fault-type-specific pattern so
            // fault types stay distinguishable even within one VNF.
            for j in 0..self.core_per_vnf {
                let mut effect = vec![0.0; num_classes];
                if v < FAULTY_VNFS.len() {
                    for f in 0..FAULT_TYPES.len() {
                        // Distinct per-(fault, metric) signature.
                        let s = ((f * 7 + j * 3) % 5) as f64 * 0.35 - 0.7;
                        effect[class_of(v, f)] = s;
                    }
                }
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_core5g_{j}"), vec![t_global], vec![0.3], 0.4)
                        .with_class_effect(effect),
                );
                features.push((idx, v, Group::Core));
            }
        }

        // Per-VNF traffic aggregates: children of observed traffic metrics.
        // These shift *marginally* under drift but are conditionally
        // invariant — the canonical case FS must not flag.
        for (v, vnf) in ALL_VNFS.iter().enumerate() {
            let parents: Vec<usize> = traffic_cols_per_vnf[v].iter().copied().take(3).collect();
            let weights = vec![0.33; parents.len()];
            let idx = nodes.len();
            nodes.push(ScmNode::observed(
                format!("{vnf}_traffic_total"),
                parents,
                weights,
                0.25,
            ));
            features.push((idx, v, Group::Load)); // grouped with load for bookkeeping
        }

        // Infrastructure distractors: host metrics, weak common driver.
        for j in 0..self.infra {
            let idx = nodes.len();
            let (parents, weights) = if j % 3 == 0 {
                (vec![t_global], vec![0.2])
            } else {
                (Vec::new(), Vec::new())
            };
            nodes.push(ScmNode::observed(
                format!("infra_h{}_m{}", j / 27, j % 27),
                parents,
                weights,
                0.5,
            ));
            features.push((idx, ALL_VNFS.len() - 1, Group::Core)); // bookkeeping only
        }

        // ---- Choose the ground-truth variant features -------------------
        // Mostly traffic metrics (the paper's motivating drift is changed
        // traffic trends), with a share of memory and CPU metrics — §V-B
        // lists traffic counters, memory usage, and CPU utilization among
        // the identified domain-variant features.
        let needed = self.strong_variant + self.medium_variant + self.weak_variant;
        let traffic: Vec<usize> = features
            .iter()
            .filter(|&&(_, _, g)| matches!(g, Group::Traffic { .. }))
            .map(|&(idx, _, _)| idx)
            .collect();
        let memory: Vec<usize> = features
            .iter()
            .filter(|&&(_, _, g)| matches!(g, Group::Memory))
            .map(|&(idx, _, _)| idx)
            .collect();
        let cpu: Vec<usize> = features
            .iter()
            .filter(|&&(_, _, g)| matches!(g, Group::Cpu))
            .map(|&(idx, _, _)| idx)
            .collect();
        let mem_share = (needed * 3 / 20).min(memory.len());
        let cpu_share = (needed * 3 / 20).min(cpu.len());
        let traffic_share = needed - mem_share - cpu_share;
        let mut variant_candidates: Vec<usize> = Vec::new();
        variant_candidates.extend(traffic.iter().take(traffic_share));
        variant_candidates.extend(memory.iter().take(mem_share));
        variant_candidates.extend(cpu.iter().take(cpu_share));
        variant_candidates.extend(traffic.iter().skip(traffic_share));
        assert!(
            variant_candidates.len() >= needed,
            "not enough traffic/memory/cpu features ({}) for {needed} variant features",
            variant_candidates.len()
        );

        // Under the target regime the fault signatures on intervened
        // metrics change pattern: class (v, f) exhibits the signature of
        // (v, f+1). This is the mechanism change that makes training on
        // source-dominated data actively misleading — a handful of target
        // shots cannot re-learn the new mapping, while FS+GAN simply
        // regenerates source-consistent values. Normal stays normal.
        let remap: Vec<usize> = (0..num_classes)
            .map(|y| {
                if y == 0 {
                    0
                } else {
                    let v = (y - 1) / FAULT_TYPES.len();
                    let f = (y - 1) % FAULT_TYPES.len();
                    1 + v * FAULT_TYPES.len() + (f + 1) % FAULT_TYPES.len()
                }
            })
            .collect();

        let mut spec = DomainSpec::observational();
        let mut variant_nodes = Vec::with_capacity(needed);
        for (rank, &node_idx) in variant_candidates.iter().take(needed).enumerate() {
            // Decouple intervened features from their shared latent driver:
            // an intervened mechanism is dominated by its own shift, not the
            // common load. Without this, a constant shift collinear with
            // the latent correlation structure creates partial-correlation
            // cancellations (a faithfulness violation) that no
            // constraint-based method could be expected to survive.
            for w in &mut nodes[node_idx].weights {
                *w *= 0.25;
            }
            // Tiered shifts; the new regime is also *noisier* on the
            // intervened metrics (real drifted traffic is bursty), which is
            // what makes a handful of target shots so unreliable for the
            // baselines that train on them — while FS simply excludes these
            // features and FS+GAN regenerates clean source-like values.
            let (magnitude, noise_factor) = if rank < self.strong_variant {
                (self.shift_strong, 2.5)
            } else if rank < self.strong_variant + self.medium_variant {
                (self.shift_medium, 1.5)
            } else {
                (self.shift_weak, 1.0)
            };
            // Alternate shift sign so the drift is not a single direction.
            let signed = if rank % 2 == 0 { magnitude } else { -magnitude };
            let jitter = 1.0 + 0.15 * (rng.uniform() - 0.5);
            let iv = if noise_factor > 1.0 {
                Intervention::ShiftAndScale {
                    shift: signed * jitter,
                    noise_factor,
                }
            } else {
                Intervention::MeanShift(signed * jitter)
            };
            spec.intervene(node_idx, iv);
            if rank < self.strong_variant {
                spec.intervene(node_idx, Intervention::RemapClassEffect(remap.clone()));
            }
            variant_nodes.push(node_idx);
        }

        // Class-signal allocation: variant features are the most
        // informative in-domain; invariant ones carry weaker (scaled) signal.
        let variant_set: std::collections::BTreeSet<usize> =
            variant_nodes.iter().copied().collect();
        for (idx, node) in nodes.iter_mut().enumerate() {
            if node.class_effect.is_empty() {
                continue;
            }
            let scale = if variant_set.contains(&idx) {
                self.signal_variant
            } else {
                self.signal_invariant
            };
            for e in &mut node.class_effect {
                *e *= scale;
            }
        }
        // Diffuse cross-VNF class signal on invariant metrics: a fault
        // anywhere slightly perturbs load, CPU, and core counters across
        // the deployment. Individually these effects are weak; in aggregate
        // they carry most of the recoverable class information — which is
        // exactly why reconstructing the (sharp) variant signatures from
        // them via the GAN beats classifying on them directly.
        for (idx, node) in nodes.iter_mut().enumerate() {
            if node.kind != crate::scm::NodeKind::Observed
                || variant_set.contains(&idx)
                || node.name.contains("traffic_total")
            {
                continue;
            }
            if node.class_effect.is_empty() {
                node.class_effect = vec![0.0; num_classes];
            }
            for (y, e) in node.class_effect.iter_mut().enumerate() {
                if y == 0 {
                    continue; // normal keeps its baseline
                }
                *e += rng.uniform_range(-self.signal_diffuse, self.signal_diffuse);
            }
        }

        let scm = Scm::new(nodes, num_classes)?;
        Ok((scm, spec))
    }
}

impl Default for Synth5gc {
    fn default() -> Self {
        Self::full()
    }
}

/// Generated 5GC data: splits, SCM, and ground truth.
#[derive(Debug, Clone)]
pub struct Synth5gcBundle {
    /// Source-domain (digital twin) training data.
    pub source_train: Dataset,
    /// Target-domain training pool; few-shot subsets are drawn from here.
    pub target_pool: Dataset,
    /// Target-domain test data.
    pub target_test: Dataset,
    /// Ground-truth variant feature columns (intervention targets).
    pub ground_truth_variant: Vec<usize>,
    /// The underlying SCM (for diagnostics and further sampling).
    pub scm: Scm,
    /// The target-domain intervention spec.
    pub target_spec: DomainSpec,
}

/// Distributes `total` samples over `classes` as evenly as possible.
fn spread_total(total: usize, classes: usize) -> Vec<usize> {
    let base = total / classes;
    let extra = total % classes;
    (0..classes)
        .map(|c| base + usize::from(c < extra))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::stats::mean;

    #[test]
    fn full_preset_matches_paper_shape() {
        let cfg = Synth5gc::full();
        assert_eq!(cfg.num_classes(), 16);
        assert_eq!(cfg.num_features(), 442);
        assert_eq!(
            cfg.strong_variant + cfg.medium_variant + cfg.weak_variant,
            75
        );
    }

    #[test]
    fn small_bundle_shapes() {
        let bundle = Synth5gc::small().generate(1).unwrap();
        assert_eq!(bundle.source_train.num_classes(), 16);
        assert_eq!(bundle.source_train.len(), 640);
        assert_eq!(bundle.target_test.len(), 320);
        assert_eq!(bundle.target_pool.class_counts(), vec![12; 16]);
        assert_eq!(
            bundle.source_train.num_features(),
            Synth5gc::small().num_features()
        );
        assert_eq!(bundle.ground_truth_variant.len(), 16);
    }

    #[test]
    fn ground_truth_excludes_aggregates() {
        let bundle = Synth5gc::small().generate(2).unwrap();
        let names = bundle.source_train.feature_names();
        for &col in &bundle.ground_truth_variant {
            assert!(
                !names[col].contains("traffic_total"),
                "aggregate features are conditionally invariant"
            );
            assert!(
                !names[col].contains("infra"),
                "infra features are invariant"
            );
        }
    }

    #[test]
    fn variant_features_shift_between_domains() {
        let bundle = Synth5gc::small().generate(3).unwrap();
        let col = bundle.ground_truth_variant[0]; // strong-shift feature
        let src = bundle.source_train.features().col(col);
        let tgt = bundle.target_test.features().col(col);
        assert!(
            (mean(&src) - mean(&tgt)).abs() > 1.0,
            "strong variant feature should shift: src {} tgt {}",
            mean(&src),
            mean(&tgt)
        );
    }

    #[test]
    fn invariant_features_stay_put() {
        let bundle = Synth5gc::small().generate(4).unwrap();
        let variant: std::collections::BTreeSet<usize> =
            bundle.ground_truth_variant.iter().copied().collect();
        let names = bundle.source_train.feature_names();
        // A pure-infra feature should not shift.
        let col = names.iter().position(|n| n.starts_with("infra")).unwrap();
        assert!(!variant.contains(&col));
        let src = bundle.source_train.features().col(col);
        let tgt = bundle.target_test.features().col(col);
        assert!(
            (mean(&src) - mean(&tgt)).abs() < 0.25,
            "infra feature should not drift: {} vs {}",
            mean(&src),
            mean(&tgt)
        );
    }

    #[test]
    fn classes_are_distinguishable_in_source() {
        // The class effect moves the right metric group: memory stress on
        // AMF raises amf_mem_* relative to normal.
        let bundle = Synth5gc::small().generate(5).unwrap();
        let ds = &bundle.source_train;
        let names = ds.feature_names();
        let mem_col = names.iter().position(|n| n.starts_with("amf_mem")).unwrap();
        // Class id = 1 + nf_index * |FAULT_TYPES| + fault_index; AMF is
        // nf_index 0 and memory stress is fault_index 3.
        let (nf_index, fault_index) = (0, 3);
        let class_mem_stress = 1 + nf_index * FAULT_TYPES.len() + fault_index;
        let normal_rows = ds.indices_of_class(0);
        let stress_rows = ds.indices_of_class(class_mem_stress);
        let col = ds.features().col(mem_col);
        let m_norm = mean(&normal_rows.iter().map(|&i| col[i]).collect::<Vec<_>>());
        let m_stress = mean(&stress_rows.iter().map(|&i| col[i]).collect::<Vec<_>>());
        assert!(
            m_stress - m_norm > 0.5,
            "memory stress must raise AMF memory metrics: {m_norm} vs {m_stress}"
        );
    }

    #[test]
    fn deterministic_across_seeds() {
        let a = Synth5gc::small().generate(7).unwrap();
        let b = Synth5gc::small().generate(7).unwrap();
        assert_eq!(a.source_train.features(), b.source_train.features());
        assert_eq!(a.ground_truth_variant, b.ground_truth_variant);
        let c = Synth5gc::small().generate(8).unwrap();
        assert_ne!(a.source_train.features(), c.source_train.features());
    }

    #[test]
    fn spread_total_is_even() {
        assert_eq!(spread_total(10, 3), vec![4, 3, 3]);
        assert_eq!(spread_total(9, 3), vec![3, 3, 3]);
        assert_eq!(spread_total(3645, 16).iter().sum::<usize>(), 3645);
    }
}
