//! Synthetic 5G IP-core (5GIPC) fault-detection dataset.
//!
//! Mirrors the IEICE "RISING" NFV-testbed dataset: five VNFs — two IP core
//! nodes (TR-01, TR-02), two internet gateways (IntGW-01, IntGW-02) and a
//! route reflector (RR-01) — each reporting resource-utilization and packet
//! -rate metrics at one-minute intervals (116 metrics total). Four fault
//! types are injected (node failure, interface failure, packet loss, packet
//! delay) and the task is **binary fault detection**.
//!
//! The paper obtains its domains by fitting a GMM to the whole dataset and
//! taking the larger cluster as the source; this module supports both that
//! exact pipeline ([`Synth5gipc::generate_clustered`]) and a direct
//! domain-labelled generation ([`Synth5gipc::generate`]) that also returns
//! ground-truth intervention targets. A three-domain variant
//! ([`Synth5gipc::generate_three_domain`]) backs the no-retraining study of
//! Table III.

use crate::dataset::Dataset;
use crate::gmm::{Gmm, GmmConfig};
use crate::scm::{DomainSpec, Intervention, Scm, ScmNode};
use crate::Result;
use fsda_linalg::SeededRng;

/// The five VNFs of the IP-core topology.
pub const VNFS: [&str; 5] = ["tr01", "tr02", "intgw01", "intgw02", "rr01"];

/// The four injected fault types (index 0 is reserved for "normal").
pub const FAULT_TYPES: [&str; 4] = [
    "node_failure",
    "interface_failure",
    "packet_loss",
    "packet_delay",
];

/// Number of few-shot groups: normal + the four fault types.
pub const NUM_GROUPS: usize = 5;

/// Configuration of the synthetic 5GIPC generator.
#[derive(Debug, Clone)]
pub struct Synth5gipc {
    /// Interfaces per VNF (each contributes in/out packet-rate metrics).
    pub ifaces_per_vnf: usize,
    /// CPU metrics per VNF.
    pub cpu_per_vnf: usize,
    /// Memory metrics per VNF.
    pub mem_per_vnf: usize,
    /// Latency metrics per VNF.
    pub latency_per_vnf: usize,
    /// Routing-table metrics per VNF.
    pub routing_per_vnf: usize,
    /// Source-domain normal samples.
    pub source_normal: usize,
    /// Source-domain fault samples per fault type.
    pub source_faults: [usize; 4],
    /// Target-domain test normal samples.
    pub target_normal: usize,
    /// Target-domain test fault samples per fault type.
    pub target_faults: [usize; 4],
    /// Target training-pool samples per group (normal + each fault type).
    pub target_pool_per_group: usize,
    /// Variant features with strong / medium / weak shifts.
    pub strong_variant: usize,
    /// Medium-shift count.
    pub medium_variant: usize,
    /// Weak-shift count.
    pub weak_variant: usize,
    /// Shift magnitudes.
    pub shift_strong: f64,
    /// Medium-shift magnitude.
    pub shift_medium: f64,
    /// Weak-shift magnitude.
    pub shift_weak: f64,
    /// Class-effect scale on variant features.
    pub signal_variant: f64,
    /// Class-effect scale on invariant features.
    pub signal_invariant: f64,
    /// Magnitude of the diffuse cross-VNF fault signal on invariant
    /// metrics.
    pub signal_diffuse: f64,
}

impl Synth5gipc {
    /// Paper-scale preset: 116 features; 5,315 + (100, 226, 874, 619)
    /// source samples; 2,060 + (95, 124, 311, 546) target test samples;
    /// 37 ground-truth variant features (23 strong / 8 medium / 6 weak,
    /// matching §VI-C's detection counts 23/31/37).
    pub fn full() -> Self {
        Synth5gipc {
            ifaces_per_vnf: 3,
            cpu_per_vnf: 5,
            mem_per_vnf: 5,
            latency_per_vnf: 4,
            routing_per_vnf: 3,
            source_normal: 5315,
            source_faults: [100, 226, 874, 619],
            target_normal: 2060,
            target_faults: [95, 124, 311, 546],
            target_pool_per_group: 30,
            strong_variant: 23,
            medium_variant: 8,
            weak_variant: 6,
            shift_strong: 2.2,
            shift_medium: 0.5,
            shift_weak: 0.22,
            signal_variant: 1.8,
            signal_invariant: 0.7,
            signal_diffuse: 0.1,
        }
    }

    /// Small preset for tests.
    pub fn small() -> Self {
        Synth5gipc {
            ifaces_per_vnf: 1,
            cpu_per_vnf: 2,
            mem_per_vnf: 2,
            latency_per_vnf: 2,
            routing_per_vnf: 1,
            source_normal: 400,
            source_faults: [20, 40, 80, 60],
            target_normal: 200,
            target_faults: [10, 15, 30, 45],
            target_pool_per_group: 12,
            strong_variant: 8,
            medium_variant: 3,
            weak_variant: 2,
            shift_strong: 2.2,
            shift_medium: 0.9,
            shift_weak: 0.45,
            signal_variant: 1.8,
            signal_invariant: 0.9,
            signal_diffuse: 0.2,
        }
    }

    /// Metrics per VNF.
    fn per_vnf(&self) -> usize {
        self.ifaces_per_vnf * 2
            + self.cpu_per_vnf
            + self.mem_per_vnf
            + self.latency_per_vnf
            + self.routing_per_vnf
    }

    /// Total observed features (per-VNF metrics plus one global timestamp
    /// drift metric).
    pub fn num_features(&self) -> usize {
        self.per_vnf() * VNFS.len() + 1
    }

    /// Internal SCM class count: normal + fault type × VNF.
    fn internal_classes(&self) -> usize {
        1 + FAULT_TYPES.len() * VNFS.len()
    }

    /// Generates a domain-labelled bundle (primary path for Table I).
    ///
    /// # Errors
    ///
    /// Propagates dataset-construction failures.
    pub fn generate(&self, seed: u64) -> Result<Synth5gipcBundle> {
        let mut rng = SeededRng::new(seed);
        let (scm, specs) = self.build_scm(&mut rng, 2)?;
        let target_spec = specs[1].clone();
        let src = self.sample_domain(&scm, &DomainSpec::observational(), true, &mut rng)?;
        let pool = self.sample_pool(&scm, &target_spec, &mut rng)?;
        let test = self.sample_domain(&scm, &target_spec, false, &mut rng)?;
        let ground_truth_variant = scm.ground_truth_variant(&target_spec);
        Ok(Synth5gipcBundle {
            source_train: src.0,
            source_groups: src.1,
            target_pool: pool.0,
            target_pool_groups: pool.1,
            target_test: test.0,
            target_test_groups: test.1,
            ground_truth_variant,
            scm,
            target_spec,
        })
    }

    /// Reproduces the paper's exact domain-construction pipeline: generate
    /// the full mixed dataset, fit a 2-component GMM, and take the larger
    /// cluster as the source domain. Returns the bundle plus the fraction
    /// of samples whose cluster matches their true generation domain.
    ///
    /// # Errors
    ///
    /// Propagates generation and GMM-fitting failures.
    pub fn generate_clustered(&self, seed: u64) -> Result<(Synth5gipcBundle, f64)> {
        let bundle = self.generate(seed)?;
        // Pool all samples, remember true domains.
        let all = bundle
            .source_train
            .concat(&bundle.target_test)
            .map_err(|e| crate::DataError::Inconsistent(e.to_string()))?;
        let true_domain: Vec<usize> = std::iter::repeat_n(0, bundle.source_train.len())
            .chain(std::iter::repeat_n(1, bundle.target_test.len()))
            .collect();
        let gmm = Gmm::fit_best(
            all.features(),
            &GmmConfig {
                k: 2,
                seed,
                ..GmmConfig::default()
            },
            8,
        )?;
        let assignment = gmm.predict(all.features());
        // Larger cluster = source.
        let count1 = assignment.iter().filter(|&&a| a == 1).count();
        let source_cluster = usize::from(count1 * 2 > assignment.len());
        let agreement = assignment
            .iter()
            .zip(&true_domain)
            .filter(|&(&a, &d)| (a == source_cluster) == (d == 0))
            .count() as f64
            / assignment.len() as f64;
        Ok((bundle, agreement))
    }

    /// Generates the three-domain setting of Table III: one source and two
    /// distinct target domains whose variant-feature sets largely overlap
    /// (as the paper observed).
    ///
    /// # Errors
    ///
    /// Propagates dataset-construction failures.
    pub fn generate_three_domain(&self, seed: u64) -> Result<ThreeDomainBundle> {
        let mut rng = SeededRng::new(seed);
        let (scm, specs) = self.build_scm(&mut rng, 3)?;
        let spec_t1 = specs[1].clone();
        let spec_t2 = specs[2].clone();
        let src = self.sample_domain(&scm, &DomainSpec::observational(), true, &mut rng)?;
        let pool1 = self.sample_pool(&scm, &spec_t1, &mut rng)?;
        let test1 = self.sample_domain(&scm, &spec_t1, false, &mut rng)?;
        let pool2 = self.sample_pool(&scm, &spec_t2, &mut rng)?;
        let test2 = self.sample_domain(&scm, &spec_t2, false, &mut rng)?;
        Ok(ThreeDomainBundle {
            source_train: src.0,
            source_groups: src.1,
            target1_pool: pool1.0,
            target1_pool_groups: pool1.1,
            target1_test: test1.0,
            target1_test_groups: test1.1,
            target2_pool: pool2.0,
            target2_pool_groups: pool2.1,
            target2_test: test2.0,
            target2_test_groups: test2.1,
            variant_target1: scm.ground_truth_variant(&spec_t1),
            variant_target2: scm.ground_truth_variant(&spec_t2),
            scm,
        })
    }

    /// Samples one domain with the configured counts; `source` selects the
    /// source or target-test totals. Returns the binary-labelled dataset and
    /// the per-sample few-shot group (0 = normal, 1..=4 = fault type).
    fn sample_domain(
        &self,
        scm: &Scm,
        spec: &DomainSpec,
        source: bool,
        rng: &mut SeededRng,
    ) -> Result<(Dataset, Vec<usize>)> {
        let (normal, faults) = if source {
            (self.source_normal, self.source_faults)
        } else {
            (self.target_normal, self.target_faults)
        };
        let mut counts = vec![0usize; self.internal_classes()];
        counts[0] = normal;
        for (f, &total) in faults.iter().enumerate() {
            // Spread each fault type across the five VNFs.
            let per = total / VNFS.len();
            let extra = total % VNFS.len();
            for v in 0..VNFS.len() {
                counts[1 + f * VNFS.len() + v] = per + usize::from(v < extra);
            }
        }
        self.sample_with_counts(scm, spec, &counts, rng)
    }

    /// Samples the target training pool: `target_pool_per_group` samples of
    /// the normal class and of each fault type.
    fn sample_pool(
        &self,
        scm: &Scm,
        spec: &DomainSpec,
        rng: &mut SeededRng,
    ) -> Result<(Dataset, Vec<usize>)> {
        let mut counts = vec![0usize; self.internal_classes()];
        counts[0] = self.target_pool_per_group;
        for f in 0..FAULT_TYPES.len() {
            let per = self.target_pool_per_group / VNFS.len();
            let extra = self.target_pool_per_group % VNFS.len();
            for v in 0..VNFS.len() {
                counts[1 + f * VNFS.len() + v] = per + usize::from(v < extra);
            }
        }
        self.sample_with_counts(scm, spec, &counts, rng)
    }

    fn sample_with_counts(
        &self,
        scm: &Scm,
        spec: &DomainSpec,
        counts: &[usize],
        rng: &mut SeededRng,
    ) -> Result<(Dataset, Vec<usize>)> {
        let internal = scm.generate(counts, spec, rng)?;
        // Collapse internal classes to binary labels; keep fault-type groups.
        let groups: Vec<usize> = internal
            .labels()
            .iter()
            .map(|&c| if c == 0 { 0 } else { 1 + (c - 1) / VNFS.len() })
            .collect();
        let binary: Vec<usize> = internal
            .labels()
            .iter()
            .map(|&c| usize::from(c > 0))
            .collect();
        let ds = Dataset::with_names(
            internal.features().clone(),
            binary,
            2,
            internal.feature_names().to_vec(),
        )?;
        Ok((ds, groups))
    }

    /// Builds the SCM plus `num_domains` domain specs (index 0 is always
    /// observational).
    fn build_scm(&self, rng: &mut SeededRng, num_domains: usize) -> Result<(Scm, Vec<DomainSpec>)> {
        let classes = self.internal_classes();
        let mut nodes: Vec<ScmNode> = Vec::new();
        let t_global = nodes.len();
        nodes.push(ScmNode::latent("latent_traffic", 1.0));

        let class_of = |f: usize, v: usize| 1 + f * VNFS.len() + v;

        #[derive(Clone, Copy, PartialEq)]
        enum Group {
            Packets,
            Cpu,
            Mem,
            Latency,
            Routing,
        }
        let mut features: Vec<(usize, Group)> = Vec::new();

        for (v, vnf) in VNFS.iter().enumerate() {
            // Per-VNF load latent.
            let load = nodes.len();
            let mut ln = ScmNode::latent(format!("latent_load_{vnf}"), 0.5);
            ln.parents = vec![t_global];
            ln.weights = vec![0.7];
            nodes.push(ln);

            // Packet-rate metrics (in/out per interface).
            for iface in 0..self.ifaces_per_vnf {
                for dir in ["in_pkts", "out_pkts"] {
                    let mut effect = vec![0.0; classes];
                    // node failure: everything drops; iface failure & pkt
                    // loss hit packet counters.
                    effect[class_of(0, v)] = -1.4;
                    effect[class_of(1, v)] = -1.2;
                    effect[class_of(2, v)] = -0.9;
                    let idx = nodes.len();
                    nodes.push(
                        ScmNode::observed(
                            format!("{vnf}_if{iface}_{dir}"),
                            vec![load],
                            vec![rng.uniform_range(0.5, 0.85)],
                            0.4,
                        )
                        .with_class_effect(effect),
                    );
                    features.push((idx, Group::Packets));
                }
            }
            // CPU metrics.
            for j in 0..self.cpu_per_vnf {
                let mut effect = vec![0.0; classes];
                effect[class_of(0, v)] = -1.2; // node down: CPU idles
                effect[class_of(3, v)] = 0.5; // delay: queues build up
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_cpu_{j}"), vec![load], vec![0.45], 0.4)
                        .with_class_effect(effect),
                );
                features.push((idx, Group::Cpu));
            }
            // Memory metrics.
            for j in 0..self.mem_per_vnf {
                let mut effect = vec![0.0; classes];
                effect[class_of(0, v)] = -1.0;
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_mem_{j}"), vec![load], vec![0.3], 0.4)
                        .with_class_effect(effect),
                );
                features.push((idx, Group::Mem));
            }
            // Latency metrics.
            for j in 0..self.latency_per_vnf {
                let mut effect = vec![0.0; classes];
                effect[class_of(1, v)] = 0.7; // interface failure: rerouting
                effect[class_of(2, v)] = 1.0; // loss: retransmissions
                effect[class_of(3, v)] = 1.4; // delay
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_lat_{j}"), vec![load], vec![0.35], 0.4)
                        .with_class_effect(effect),
                );
                features.push((idx, Group::Latency));
            }
            // Routing-table metrics.
            for j in 0..self.routing_per_vnf {
                let mut effect = vec![0.0; classes];
                effect[class_of(0, v)] = -1.1; // routes withdrawn
                effect[class_of(1, v)] = -0.8;
                let idx = nodes.len();
                nodes.push(
                    ScmNode::observed(format!("{vnf}_routes_{j}"), vec![], vec![], 0.35)
                        .with_bias(1.0)
                        .with_class_effect(effect),
                );
                features.push((idx, Group::Routing));
            }
        }
        // One global wall-clock drift metric (invariant distractor).
        let idx = nodes.len();
        nodes.push(ScmNode::observed("global_clock_skew", vec![], vec![], 0.5));
        features.push((idx, Group::Routing));

        // Variant selection: packet metrics first (traffic trends change
        // across the GMM-split regimes), then CPU, then memory.
        let mut candidates: Vec<usize> = features
            .iter()
            .filter(|&&(_, g)| g == Group::Packets)
            .map(|&(i, _)| i)
            .collect();
        candidates.extend(
            features
                .iter()
                .filter(|&&(_, g)| g == Group::Cpu)
                .map(|&(i, _)| i),
        );
        candidates.extend(
            features
                .iter()
                .filter(|&&(_, g)| g == Group::Mem)
                .map(|&(i, _)| i),
        );
        let needed = self.strong_variant + self.medium_variant + self.weak_variant;
        assert!(
            candidates.len() >= needed,
            "not enough packet/cpu/mem features ({}) for {needed} variant features",
            candidates.len()
        );

        // Decouple intervened features from the shared latent (see the
        // 5GC generator for why this is required for identifiability).
        for &node_idx in candidates.iter().take(needed) {
            for w in &mut nodes[node_idx].weights {
                *w *= 0.25;
            }
        }

        // Fault signatures on intervened metrics change pattern across
        // regimes: fault type f exhibits the signature of f+1 on the same
        // VNF (normal stays normal) — see the 5GC generator for rationale.
        let remap: Vec<usize> = (0..classes)
            .map(|y| {
                if y == 0 {
                    0
                } else {
                    let f = (y - 1) / VNFS.len();
                    let v = (y - 1) % VNFS.len();
                    1 + ((f + 1) % FAULT_TYPES.len()) * VNFS.len() + v
                }
            })
            .collect();

        let mut specs = vec![DomainSpec::observational()];
        for domain in 1..num_domains {
            let mut spec = DomainSpec::observational();
            for (rank, &node_idx) in candidates.iter().take(needed).enumerate() {
                let magnitude = if rank < self.strong_variant {
                    self.shift_strong
                } else if rank < self.strong_variant + self.medium_variant {
                    self.shift_medium
                } else {
                    self.shift_weak
                };
                // Domains shift the same features (mostly) with different
                // signs/magnitudes — Table III found the variant sets of
                // the two targets largely overlap.
                let dir = if (rank + domain) % 2 == 0 { 1.0 } else { -1.0 };
                let scale = 1.0 + 0.3 * (domain as f64 - 1.0);
                // The drifted regime is noisier on the intervened metrics
                // (bursty traffic), making the few shots unreliable for the
                // baselines that train on them.
                if rank < self.strong_variant {
                    spec.intervene(
                        node_idx,
                        Intervention::ShiftAndScale {
                            shift: dir * magnitude * scale,
                            noise_factor: 2.5,
                        },
                    );
                    spec.intervene(node_idx, Intervention::RemapClassEffect(remap.clone()));
                } else {
                    spec.intervene(node_idx, Intervention::MeanShift(dir * magnitude * scale));
                }
            }
            // Each extra domain perturbs a couple of additional features so
            // the sets are not identical.
            if domain >= 2 {
                for &node_idx in candidates.iter().skip(needed).take(2) {
                    spec.intervene(node_idx, Intervention::MeanShift(self.shift_strong));
                }
            }
            specs.push(spec);
        }

        // Class-signal allocation (variant features most informative).
        let variant_set: std::collections::BTreeSet<usize> =
            candidates.iter().take(needed).copied().collect();
        for (idx, node) in nodes.iter_mut().enumerate() {
            if node.class_effect.is_empty() {
                continue;
            }
            let scale = if variant_set.contains(&idx) {
                self.signal_variant
            } else {
                self.signal_invariant
            };
            for e in &mut node.class_effect {
                *e *= scale;
            }
        }
        // Diffuse fault signal on invariant metrics (see the 5GC generator
        // for rationale): any fault slightly perturbs utilization metrics
        // across the topology.
        for (idx, node) in nodes.iter_mut().enumerate() {
            if node.kind != crate::scm::NodeKind::Observed || variant_set.contains(&idx) {
                continue;
            }
            if node.class_effect.is_empty() {
                node.class_effect = vec![0.0; classes];
            }
            for (y, e) in node.class_effect.iter_mut().enumerate() {
                if y == 0 {
                    continue;
                }
                *e += rng.uniform_range(-self.signal_diffuse, self.signal_diffuse);
            }
        }

        let scm = Scm::new(nodes, classes)?;
        Ok((scm, specs))
    }
}

impl Default for Synth5gipc {
    fn default() -> Self {
        Self::full()
    }
}

/// Generated 5GIPC data (two domains).
#[derive(Debug, Clone)]
pub struct Synth5gipcBundle {
    /// Source-domain training data (binary labels).
    pub source_train: Dataset,
    /// Few-shot groups of the source samples (0 = normal, 1..=4 = fault type).
    pub source_groups: Vec<usize>,
    /// Target-domain training pool.
    pub target_pool: Dataset,
    /// Few-shot groups of the pool samples.
    pub target_pool_groups: Vec<usize>,
    /// Target-domain test data.
    pub target_test: Dataset,
    /// Few-shot groups of the test samples.
    pub target_test_groups: Vec<usize>,
    /// Ground-truth variant feature columns.
    pub ground_truth_variant: Vec<usize>,
    /// The underlying SCM.
    pub scm: Scm,
    /// The target-domain intervention spec.
    pub target_spec: DomainSpec,
}

/// Generated 5GIPC data with one source and two target domains (Table III).
#[derive(Debug, Clone)]
pub struct ThreeDomainBundle {
    /// Source-domain training data.
    pub source_train: Dataset,
    /// Few-shot groups of the source samples.
    pub source_groups: Vec<usize>,
    /// Target-1 pool / groups / test.
    pub target1_pool: Dataset,
    /// Groups for the target-1 pool.
    pub target1_pool_groups: Vec<usize>,
    /// Target-1 test set.
    pub target1_test: Dataset,
    /// Groups for the target-1 test set.
    pub target1_test_groups: Vec<usize>,
    /// Target-2 pool.
    pub target2_pool: Dataset,
    /// Groups for the target-2 pool.
    pub target2_pool_groups: Vec<usize>,
    /// Target-2 test set.
    pub target2_test: Dataset,
    /// Groups for the target-2 test set.
    pub target2_test_groups: Vec<usize>,
    /// Ground-truth variant features of target 1.
    pub variant_target1: Vec<usize>,
    /// Ground-truth variant features of target 2.
    pub variant_target2: Vec<usize>,
    /// The underlying SCM.
    pub scm: Scm,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use fsda_linalg::stats::mean;

    #[test]
    fn full_preset_matches_paper_shape() {
        let cfg = Synth5gipc::full();
        assert_eq!(cfg.num_features(), 116);
        assert_eq!(
            cfg.strong_variant + cfg.medium_variant + cfg.weak_variant,
            37
        );
        assert_eq!(cfg.source_normal, 5315);
        assert_eq!(cfg.target_faults, [95, 124, 311, 546]);
    }

    #[test]
    fn small_bundle_shapes_and_labels() {
        let b = Synth5gipc::small().generate(1).unwrap();
        assert_eq!(b.source_train.num_classes(), 2);
        assert_eq!(b.source_train.len(), 400 + 20 + 40 + 80 + 60);
        assert_eq!(b.target_test.len(), 200 + 10 + 15 + 30 + 45);
        // Groups align with binary labels.
        for (i, &g) in b.target_test_groups.iter().enumerate() {
            let y = b.target_test.labels()[i];
            assert_eq!(y == 0, g == 0, "group {g} vs label {y}");
            assert!(g < NUM_GROUPS);
        }
    }

    #[test]
    fn variant_features_shift() {
        let b = Synth5gipc::small().generate(2).unwrap();
        let col = b.ground_truth_variant[0];
        let s = mean(&b.source_train.features().col(col));
        let t = mean(&b.target_test.features().col(col));
        assert!((s - t).abs() > 1.0, "strong shift expected: {s} vs {t}");
    }

    #[test]
    fn clustered_pipeline_recovers_domains() {
        let (_, agreement) = Synth5gipc::small().generate_clustered(3).unwrap();
        assert!(
            agreement > 0.9,
            "GMM should recover the generation domains, agreement {agreement}"
        );
    }

    #[test]
    fn three_domain_variant_sets_overlap() {
        let b = Synth5gipc::small().generate_three_domain(4).unwrap();
        let s1: std::collections::BTreeSet<usize> = b.variant_target1.iter().copied().collect();
        let s2: std::collections::BTreeSet<usize> = b.variant_target2.iter().copied().collect();
        let inter = s1.intersection(&s2).count();
        assert!(inter > 0);
        // Paper: "the majority of domain-variant features ... were common".
        assert!(inter * 2 > s1.len(), "majority of variant features shared");
        assert!(s2.len() >= s1.len(), "target 2 perturbs extra features");
    }

    #[test]
    fn pool_contains_all_groups() {
        let b = Synth5gipc::small().generate(5).unwrap();
        let mut group_counts = [0usize; NUM_GROUPS];
        for &g in &b.target_pool_groups {
            group_counts[g] += 1;
        }
        for (g, &c) in group_counts.iter().enumerate() {
            assert!(c >= 10, "group {g} underpopulated in pool: {c}");
        }
    }

    #[test]
    fn deterministic() {
        let a = Synth5gipc::small().generate(9).unwrap();
        let b = Synth5gipc::small().generate(9).unwrap();
        assert_eq!(a.source_train.features(), b.source_train.features());
        assert_eq!(a.ground_truth_variant, b.ground_truth_variant);
    }
}
