//! Property-based tests for the dataset layer: normalization round-trips,
//! dataset-operation invariants, SCM ground-truth consistency, GMM
//! responsibilities, and few-shot sampling.

use fsda_data::dataset::Dataset;
use fsda_data::fewshot::{few_shot_indices, stratified_split};
use fsda_data::gmm::{Gmm, GmmConfig};
use fsda_data::normalize::{NormKind, Normalizer};
use fsda_data::scm::{DomainSpec, Intervention, Scm, ScmNode};
use fsda_linalg::SeededRng;
use proptest::prelude::*;

fn random_dataset(seed: u64, n_per_class: usize, classes: usize, d: usize) -> Dataset {
    let mut rng = SeededRng::new(seed);
    let n = n_per_class * classes;
    let x = rng.normal_matrix(n, d, 0.0, 2.0);
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    Dataset::new(x, labels, classes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn normalizer_round_trips(seed in 0u64..1000, n in 2usize..30, d in 1usize..8, kind in 0usize..2) {
        let mut rng = SeededRng::new(seed);
        let x = rng.normal_matrix(n, d, 3.0, 5.0);
        let k = [NormKind::MinMaxSymmetric, NormKind::ZScore][kind];
        let norm = Normalizer::fit(&x, k);
        let back = norm.inverse_transform(&norm.transform(&x));
        prop_assert!(back.try_sub(&x).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn minmax_training_data_in_unit_range(seed in 0u64..1000, n in 2usize..30, d in 1usize..8) {
        let mut rng = SeededRng::new(seed);
        let x = rng.normal_matrix(n, d, -4.0, 10.0);
        let norm = Normalizer::fit(&x, NormKind::MinMaxSymmetric);
        let t = norm.transform(&x);
        prop_assert!(t.max_abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn subset_preserves_label_alignment(seed in 0u64..1000) {
        let ds = random_dataset(seed, 5, 3, 4);
        let mut rng = SeededRng::new(seed ^ 1);
        let k = 1 + rng.index(ds.len());
        let idx = rng.sample_indices(ds.len(), k);
        let sub = ds.subset(&idx);
        for (pos, &orig) in idx.iter().enumerate() {
            prop_assert_eq!(sub.labels()[pos], ds.labels()[orig]);
            prop_assert_eq!(sub.features().row(pos), ds.features().row(orig));
        }
    }

    #[test]
    fn one_hot_rows_sum_to_one(seed in 0u64..1000, classes in 2usize..6) {
        let ds = random_dataset(seed, 4, classes, 3);
        let oh = ds.one_hot_labels();
        for r in 0..ds.len() {
            let s: f64 = oh.row(r).iter().sum();
            prop_assert_eq!(s, 1.0);
            prop_assert_eq!(oh.get(r, ds.labels()[r]), 1.0);
        }
    }

    #[test]
    fn few_shot_counts_exact(seed in 0u64..1000, classes in 2usize..5, k in 1usize..4) {
        let ds = random_dataset(seed, 8, classes, 3);
        let mut rng = SeededRng::new(seed ^ 2);
        let idx = few_shot_indices(ds.labels(), classes, k, &mut rng).unwrap();
        prop_assert_eq!(idx.len(), classes * k);
        let sub = ds.subset(&idx);
        prop_assert_eq!(sub.class_counts(), vec![k; classes]);
    }

    #[test]
    fn stratified_split_partitions(seed in 0u64..1000, frac in 0.2f64..0.8) {
        let ds = random_dataset(seed, 10, 3, 2);
        let mut rng = SeededRng::new(seed ^ 3);
        let (train, test) = stratified_split(&ds, frac, &mut rng).unwrap();
        prop_assert_eq!(train.len() + test.len(), ds.len());
        // Per-class counts partition too.
        let tc = train.class_counts();
        let sc = test.class_counts();
        for ((a, b), c) in tc.iter().zip(&sc).zip(ds.class_counts()) {
            prop_assert_eq!(a + b, c);
        }
    }

    #[test]
    fn scm_ground_truth_only_lists_targets_or_latent_children(seed in 0u64..200, shift in 0.5f64..5.0) {
        // Build: latent T -> x0; x0 -> x1; x2 independent.
        let nodes = vec![
            ScmNode::latent("t", 1.0),
            ScmNode::observed("x0", vec![0], vec![1.0], 0.5),
            ScmNode::observed("x1", vec![1], vec![0.7], 0.5),
            ScmNode::observed("x2", vec![], vec![], 1.0),
        ];
        let scm = Scm::new(nodes, 1).unwrap();
        let mut spec = DomainSpec::observational();
        // Intervene on x1 (observed, col 1) and latent T.
        spec.intervene(2, Intervention::MeanShift(shift));
        spec.intervene(0, Intervention::MeanShift(shift));
        let variant = scm.ground_truth_variant(&spec);
        // x0 (child of intervened latent) and x1 (direct target).
        prop_assert_eq!(variant, vec![0, 1]);
        let _ = seed;
    }

    #[test]
    fn gmm_responsibilities_are_distributions(seed in 0u64..200, k in 1usize..4) {
        let mut rng = SeededRng::new(seed);
        let x = rng.normal_matrix(30, 3, 0.0, 1.0);
        let gmm = Gmm::fit(&x, &GmmConfig { k, seed, ..GmmConfig::default() }).unwrap();
        let resp = gmm.responsibilities(&x);
        for r in 0..x.rows() {
            let s: f64 = resp.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8);
        }
        // Weights are a distribution too.
        let ws: f64 = gmm.weights().iter().sum();
        prop_assert!((ws - 1.0).abs() < 1e-8);
        // Predictions in range.
        prop_assert!(gmm.predict(&x).iter().all(|&c| c < k));
    }

    #[test]
    fn normalizer_never_panics_on_corrupt_input(seed in 0u64..1000, n in 1usize..20, d in 1usize..6, kind in 0usize..2) {
        let mut rng = SeededRng::new(seed);
        let mut x = rng.normal_matrix(n, d, 0.0, 100.0);
        // Sprinkle the telemetry pathologies: NaN, ±inf, dead columns.
        for _ in 0..(1 + rng.index(4)) {
            let (r, c) = (rng.index(n), rng.index(d));
            let v = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0][rng.index(4)];
            x.set(r, c, v);
        }
        if rng.index(2) == 0 {
            let c = rng.index(d);
            for r in 0..n {
                x.set(r, c, 7.5);
            }
        }
        let k = [NormKind::MinMaxSymmetric, NormKind::ZScore][kind];
        // The contract under corruption is "no panic": fit, transform in
        // both directions, and the row-wise path must all return (possibly
        // non-finite) values instead of crashing.
        let norm = Normalizer::fit(&x, k);
        let t = norm.transform(&x);
        let _ = norm.inverse_transform(&t);
        let mut row0 = x.row(0).to_vec();
        norm.transform_row(&mut row0);
        prop_assert_eq!(t.shape(), x.shape());
        // Scales stay usable: never zero or negative, so downstream
        // divisions cannot blow up into panics.
        prop_assert!(norm.scale().iter().all(|&s| s > 0.0 || s.is_nan()));
    }

    #[test]
    fn dataset_concat_lengths(seed in 0u64..1000) {
        let a = random_dataset(seed, 3, 2, 4);
        let b = random_dataset(seed ^ 9, 5, 2, 4);
        let c = a.concat(&b).unwrap();
        prop_assert_eq!(c.len(), a.len() + b.len());
        prop_assert_eq!(c.labels()[a.len()], b.labels()[0]);
    }
}
