//! Thread-count invariance for the scenario generators.
//!
//! The scenario compiler's contract (see `docs/SCENARIOS.md`) is the same
//! as the rest of the workspace: `threads` is a pure performance knob.
//! Every row of every generated split draws from its own counter-derived
//! seed, so the produced matrices must be **bit-identical** at 1 thread,
//! 2 threads, and whatever the host offers.

use fsda_data::scenario::{ScenarioSpec, Schedule, Topology};
use fsda_data::Dataset;

fn assert_datasets_identical(a: &Dataset, b: &Dataset, what: &str) {
    assert_eq!(a.labels(), b.labels(), "{what}: labels diverged");
    let (xa, xb) = (a.features().as_slice(), b.features().as_slice());
    assert_eq!(xa.len(), xb.len(), "{what}: shape diverged");
    for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "{what}: value {i} differs: {va} vs {vb}"
        );
    }
}

#[test]
fn generate_is_bit_identical_across_thread_counts() {
    let max = std::thread::available_parallelism().map_or(4, |n| n.get().max(2));
    for spec in [
        ScenarioSpec::default().with_seed(5),
        ScenarioSpec::default()
            .with_topology(Topology::Chain)
            .with_features(48)
            .with_variant(8)
            .with_label_shift(0.3)
            .with_seed(6),
    ] {
        let base = spec.compile().unwrap().generate(Some(1)).unwrap();
        for threads in [2usize, max] {
            let other = spec.compile().unwrap().generate(Some(threads)).unwrap();
            let tag = format!("{}@{threads}", spec.topology);
            assert_datasets_identical(&base.source_train, &other.source_train, &tag);
            assert_datasets_identical(&base.target_pool, &other.target_pool, &tag);
            assert_datasets_identical(&base.target_test, &other.target_test, &tag);
            assert_eq!(base.ground_truth_variant, other.ground_truth_variant);
        }
    }
}

#[test]
fn windows_are_bit_identical_across_thread_counts() {
    let spec = ScenarioSpec::default()
        .with_schedule(Schedule::Gradual { windows: 3 })
        .with_seed(7);
    let compiled = spec.compile().unwrap();
    for w in 0..3 {
        let base = compiled.generate_window(w, 120, Some(1)).unwrap();
        for threads in [2usize, 5] {
            let other = compiled.generate_window(w, 120, Some(threads)).unwrap();
            assert_datasets_identical(&base, &other, &format!("window {w}@{threads}"));
        }
    }
}

#[test]
fn windows_are_disjoint_streams() {
    // Different windows of the same scenario must not replay the same
    // rows: each window draws from its own seed stream, scaled by its own
    // drift fraction.
    let spec = ScenarioSpec::default()
        .with_schedule(Schedule::Gradual { windows: 3 })
        .with_seed(8);
    let compiled = spec.compile().unwrap();
    let w0 = compiled.generate_window(0, 64, None).unwrap();
    let w1 = compiled.generate_window(1, 64, None).unwrap();
    assert_ne!(
        w0.features().as_slice(),
        w1.features().as_slice(),
        "windows must be distinct draws"
    );
}
