//! Property-based tests for the drift-scenario DSL: the rendered form of
//! any valid spec parses back to the identical spec, malformed input
//! always fails with the 1-based line number of the offending line (the
//! same contract the serve manifest parser keeps), and the compiled
//! ground truth stays inside the spec's variant budget.

use fsda_data::scenario::{ScenarioError, ScenarioSpec, Schedule, Topology};
use proptest::prelude::*;

/// Builds an arbitrary *valid* spec from independently drawn knobs. The
/// ranges stay modest so `compile()` in the ground-truth property is
/// cheap, but every DSL key is exercised.
#[allow(clippy::too_many_arguments)]
fn spec_from(
    topology: usize,
    features: usize,
    classes: usize,
    latents: usize,
    variant: usize,
    adversarial: usize,
    strength: f64,
    schedule: usize,
    windows: usize,
    label_shift: f64,
    seed: u64,
) -> ScenarioSpec {
    let variant = variant.min(features);
    let mut spec = ScenarioSpec::default()
        .with_topology(Topology::ALL[topology % 4])
        .with_features(features)
        .with_variant(variant.max(1))
        .with_adversarial(adversarial.min(variant.max(1)))
        .with_strength(strength)
        .with_schedule(match schedule % 3 {
            0 => Schedule::Abrupt,
            1 => Schedule::Gradual { windows },
            _ => Schedule::Seasonal {
                period: windows.max(3),
            },
        })
        .with_label_shift(label_shift)
        .with_seed(seed);
    spec.classes = classes;
    spec.latents = latents;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn render_parse_round_trips(
        topology in 0usize..4,
        features in 2usize..96,
        classes in 2usize..6,
        latents in 1usize..5,
        variant in 1usize..16,
        adversarial in 0usize..4,
        strength in 0.1f64..8.0,
        schedule in 0usize..3,
        windows in 2usize..9,
        label_shift in 0.0f64..0.9,
        seed in 0u64..1_000_000,
    ) {
        let spec = spec_from(
            topology, features, classes, latents, variant, adversarial,
            strength, schedule, windows, label_shift, seed,
        );
        let text = spec.render();
        let back = ScenarioSpec::parse(&text).unwrap();
        prop_assert_eq!(&back, &spec);
        // Rendering is a fixed point: render(parse(render(s))) == render(s).
        prop_assert_eq!(back.render(), text);
    }

    #[test]
    fn corrupted_line_is_reported_by_number(
        seed in 0u64..1000,
        junk in 0usize..3,
    ) {
        let spec = ScenarioSpec::default().with_seed(seed);
        let mut lines: Vec<String> = spec.render().lines().map(str::to_string).collect();
        // Corrupt one key line (line 1 is the header comment). The three
        // corruption modes cover unknown key, missing '=', and bad value.
        let target = 1 + (seed as usize % (lines.len() - 1));
        lines[target] = match junk {
            0 => "no_such_key = 1".to_string(),
            1 => "features 32".to_string(),
            _ => "features = many".to_string(),
        };
        let text = lines.join("\n");
        match ScenarioSpec::parse(&text) {
            Err(ScenarioError::Syntax { line, .. }) => {
                prop_assert_eq!(line, target + 1, "error must name the corrupted line");
            }
            other => prop_assert!(false, "expected Syntax error, got {:?}", other),
        }
    }

    #[test]
    fn duplicate_key_is_reported_at_its_line(seed in 0u64..1000) {
        let mut text = ScenarioSpec::default().with_seed(seed).render();
        let dup_line = text.lines().count() + 1;
        text.push_str("seed = 7\n");
        match ScenarioSpec::parse(&text) {
            Err(ScenarioError::Syntax { line, .. }) => prop_assert_eq!(line, dup_line),
            other => prop_assert!(false, "expected Syntax error, got {:?}", other),
        }
    }

    #[test]
    fn ground_truth_stays_inside_variant_budget(
        topology in 0usize..4,
        features in 8usize..48,
        variant in 1usize..8,
        seed in 0u64..1000,
    ) {
        let spec = ScenarioSpec::default()
            .with_topology(Topology::ALL[topology % 4])
            .with_features(features)
            .with_variant(variant.min(features))
            .with_seed(seed);
        let compiled = spec.compile().unwrap();
        let truth = compiled.ground_truth_variant();
        prop_assert_eq!(truth.len(), spec.variant, "one ground-truth column per intervention");
        prop_assert!(truth.iter().all(|&c| c < spec.features));
        prop_assert!(truth.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
    }
}
