//! Vanilla autoencoder reconstructor (the FS+VanillaAE ablation of
//! Table II): a deterministic bottleneck regressor from invariant to
//! variant features, trained with plain MSE.

use crate::{validate_fit, GanError, ReconSnapshot, Reconstructor, Result};
use fsda_linalg::{Matrix, SeededRng};
use fsda_nn::layer::{Activation, Dense, MixedActivation, OutputSpec};
use fsda_nn::loss::mse;
use fsda_nn::optim::{clip_grad_norm, Adam, Optimizer};
use fsda_nn::state::{export_state, load_state, StateDict};
use fsda_nn::train::BatchIter;
use fsda_nn::watchdog::{DivergenceWatchdog, WatchdogVerdict};
use fsda_nn::{InferPlan, InferPrecision, Sequential, TrainOutcome, WatchdogConfig};

/// Hyper-parameters of [`VanillaAe`].
#[derive(Debug, Clone, PartialEq)]
pub struct AeConfig {
    /// Bottleneck width.
    pub bottleneck: usize,
    /// Hidden width (matches the GAN generator).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Divergence-watchdog policy for the fit loop. Training behaviour —
    /// *not* part of the persisted artifact: restored models carry the
    /// default.
    pub watchdog: WatchdogConfig,
}

impl Default for AeConfig {
    fn default() -> Self {
        AeConfig {
            bottleneck: 16,
            hidden: 256,
            epochs: 200,
            batch_size: 64,
            learning_rate: 1e-3,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// The vanilla-autoencoder reconstructor.
///
/// Unlike the GAN/VAE it is fully deterministic: the `seed` passed to
/// [`Reconstructor::reconstruct`] is ignored, which is precisely why it
/// cannot model the *distribution* `P(X_var | X_inv)` — only its mean —
/// and (per Table II) trails the GAN.
pub struct VanillaAe {
    config: AeConfig,
    seed: u64,
    net: Option<Sequential>,
    /// Compiled inference plan (rebuilt at fit and restore; not persisted).
    plan: Option<InferPlan>,
    dims: Option<(usize, usize)>,
    outcome: Option<TrainOutcome>,
}

impl std::fmt::Debug for VanillaAe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VanillaAe")
            .field("config", &self.config)
            .field("fitted", &self.net.is_some())
            .finish()
    }
}

impl VanillaAe {
    /// Creates an untrained autoencoder.
    pub fn new(config: AeConfig, seed: u64) -> Self {
        VanillaAe {
            config,
            seed,
            net: None,
            plan: None,
            dims: None,
            outcome: None,
        }
    }

    /// Runs the network: through the compiled plan when one exists
    /// (bit-identical at `F64Exact`), else layer by layer.
    fn run_net(&self, net: &Sequential, x: &Matrix, precision: InferPrecision) -> Matrix {
        match &self.plan {
            Some(plan) => plan.infer(x, precision),
            None => net.infer(x),
        }
    }

    fn build_net(&self, d_inv: usize, d_var: usize, rng: &mut SeededRng) -> Sequential {
        let h = self.config.hidden;
        let mut net = Sequential::new();
        net.push(Dense::new(d_inv, h, rng));
        net.push(Activation::relu());
        net.push(Dense::new(h, self.config.bottleneck, rng));
        net.push(Activation::relu());
        net.push(Dense::new(self.config.bottleneck, h, rng));
        net.push(Activation::relu());
        net.push(Dense::new_xavier(h, d_var, rng));
        net.push(MixedActivation::new(
            OutputSpec::continuous(d_var),
            1.0,
            rng.fork(0xAE),
        ));
        net
    }

    /// Rebuilds a fitted autoencoder from a snapshot's config, dims, and
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns [`GanError::InvalidInput`] when the state does not match
    /// the architecture the config describes.
    pub fn from_snapshot(
        config: AeConfig,
        seed: u64,
        dims: (usize, usize),
        state: &StateDict,
    ) -> Result<Self> {
        let mut ae = VanillaAe::new(config, seed);
        let mut rng = SeededRng::new(seed);
        let mut net = ae.build_net(dims.0, dims.1, &mut rng);
        load_state(&mut net, state).map_err(GanError::InvalidInput)?;
        ae.plan = InferPlan::compile(&net).ok();
        ae.net = Some(net);
        ae.dims = Some(dims);
        Ok(ae)
    }
}

impl Reconstructor for VanillaAe {
    fn fit(&mut self, x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix) -> Result<()> {
        validate_fit(x_inv, x_var, y_onehot)?;
        let _span = fsda_telemetry::SpanTimer::new("gan.vanilla_ae.fit.seconds");
        let (d_inv, d_var) = (x_inv.cols(), x_var.cols());
        let mut rng = SeededRng::new(self.seed);
        let mut net = self.build_net(d_inv, d_var, &mut rng);

        let mut opt = Adam::new(self.config.learning_rate);
        let mut watchdog = DivergenceWatchdog::new(self.config.watchdog);
        let n = x_inv.rows();
        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0;
            for batch in BatchIter::new(n, self.config.batch_size.min(n), &mut rng) {
                let b_inv = x_inv.select_rows(&batch);
                let b_var = x_var.select_rows(&batch);
                let recon = net.forward(&b_inv, true);
                let (loss, grad) = mse(&recon, &b_var);
                net.zero_grad();
                net.backward(&grad);
                let mut params = net.params_mut();
                if let Some(max_norm) = self.config.watchdog.grad_clip {
                    clip_grad_norm(&mut params, max_norm);
                }
                opt.step(&mut params);
                epoch_loss += loss;
            }
            match watchdog.observe(epoch, epoch_loss, &mut [&mut net]) {
                WatchdogVerdict::Proceed | WatchdogVerdict::RolledBack => {}
                WatchdogVerdict::Abort => break,
            }
        }
        self.outcome = Some(watchdog.outcome());
        self.plan = InferPlan::compile(&net).ok();
        self.net = Some(net);
        self.dims = Some((d_inv, d_var));
        Ok(())
    }

    fn reconstruct(&self, x_inv: &Matrix, _seed: u64) -> Matrix {
        let net = self
            .net
            .as_ref()
            .expect("VanillaAe: reconstruct before fit");
        let (d_inv, _) = self.dims.expect("dims recorded at fit");
        assert_eq!(
            x_inv.cols(),
            d_inv,
            "VanillaAe: invariant-block width mismatch"
        );
        self.run_net(net, x_inv, InferPrecision::F64Exact)
    }

    fn name(&self) -> &'static str {
        "ae"
    }

    fn train_outcome(&self) -> Option<TrainOutcome> {
        self.outcome
    }

    fn reconstruct_rows(&self, x_inv: &Matrix, row_seeds: &[u64]) -> Matrix {
        // Deterministic model: seeds are irrelevant, a single amortized
        // inference pass over the whole batch is exact.
        self.reconstruct_rows_with(x_inv, row_seeds, InferPrecision::F64Exact)
    }

    fn reconstruct_rows_with(
        &self,
        x_inv: &Matrix,
        row_seeds: &[u64],
        precision: InferPrecision,
    ) -> Matrix {
        assert_eq!(
            x_inv.rows(),
            row_seeds.len(),
            "reconstruct_rows: one seed per row"
        );
        let net = self
            .net
            .as_ref()
            .expect("VanillaAe: reconstruct before fit");
        let (d_inv, _) = self.dims.expect("dims recorded at fit");
        assert_eq!(
            x_inv.cols(),
            d_inv,
            "VanillaAe: invariant-block width mismatch"
        );
        self.run_net(net, x_inv, precision)
    }

    fn snapshot(&self) -> Result<ReconSnapshot> {
        let net = self.net.as_ref().ok_or(GanError::NotFitted)?;
        Ok(ReconSnapshot::Ae {
            config: self.config.clone(),
            seed: self.seed,
            dims: self.dims.expect("dims recorded at fit"),
            state: export_state(net),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsda_linalg::stats::pearson;

    fn toy(n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let mut x_inv = Matrix::zeros(n, 3);
        let mut x_var = Matrix::zeros(n, 2);
        for r in 0..n {
            let a = rng.normal(0.0, 0.7);
            let b = rng.normal(0.0, 0.7);
            let c = rng.normal(0.0, 0.7);
            x_inv.set(r, 0, a);
            x_inv.set(r, 1, b);
            x_inv.set(r, 2, c);
            x_var.set(
                r,
                0,
                (0.6 * a - 0.2 * c).tanh() * 0.8 + rng.normal(0.0, 0.03),
            );
            x_var.set(r, 1, (0.5 * b).tanh() * 0.8 + rng.normal(0.0, 0.03));
        }
        let y = Matrix::zeros(n, 1);
        (x_inv, x_var, y)
    }

    #[test]
    fn learns_conditional_mean() {
        let (x_inv, x_var, y) = toy(256, 1);
        let mut ae = VanillaAe::new(
            AeConfig {
                hidden: 32,
                bottleneck: 8,
                epochs: 150,
                ..AeConfig::default()
            },
            2,
        );
        ae.fit(&x_inv, &x_var, &y).unwrap();
        let recon = ae.reconstruct(&x_inv, 0);
        for c in 0..2 {
            let r = pearson(&recon.col(c), &x_var.col(c));
            assert!(r > 0.8, "AE should fit the regression, col {c} r = {r}");
        }
    }

    #[test]
    fn seed_is_ignored_deterministic() {
        let (x_inv, x_var, y) = toy(64, 3);
        let mut ae = VanillaAe::new(
            AeConfig {
                hidden: 16,
                epochs: 10,
                ..AeConfig::default()
            },
            4,
        );
        ae.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(ae.reconstruct(&x_inv, 1), ae.reconstruct(&x_inv, 999));
    }

    #[test]
    fn name_is_ae() {
        assert_eq!(VanillaAe::new(AeConfig::default(), 1).name(), "ae");
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (x_inv, x_var, y) = toy(64, 5);
        let mut ae = VanillaAe::new(
            AeConfig {
                hidden: 16,
                epochs: 10,
                ..AeConfig::default()
            },
            6,
        );
        ae.fit(&x_inv, &x_var, &y).unwrap();
        let snap = ae.snapshot().unwrap();
        let restored = crate::restore_reconstructor(&snap).unwrap();
        assert_eq!(restored.reconstruct(&x_inv, 0), ae.reconstruct(&x_inv, 0));
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn reconstruct_rows_matches_full_pass() {
        let (x_inv, x_var, y) = toy(32, 7);
        let mut ae = VanillaAe::new(
            AeConfig {
                hidden: 16,
                epochs: 10,
                ..AeConfig::default()
            },
            8,
        );
        ae.fit(&x_inv, &x_var, &y).unwrap();
        let seeds = vec![0u64; 32];
        assert_eq!(
            ae.reconstruct_rows(&x_inv, &seeds),
            ae.reconstruct(&x_inv, 0)
        );
    }

    #[test]
    fn healthy_fit_reports_converged() {
        let (x_inv, x_var, y) = toy(64, 9);
        let mut ae = VanillaAe::new(
            AeConfig {
                hidden: 16,
                epochs: 5,
                ..AeConfig::default()
            },
            10,
        );
        assert!(ae.train_outcome().is_none());
        ae.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(ae.train_outcome(), Some(TrainOutcome::Converged));
    }

    #[test]
    fn nan_training_data_reports_diverged() {
        let (x_inv, _, y) = toy(64, 11);
        let x_var = Matrix::from_fn(64, 2, |_, _| f64::NAN);
        let mut ae = VanillaAe::new(
            AeConfig {
                hidden: 16,
                epochs: 5,
                ..AeConfig::default()
            },
            12,
        );
        ae.fit(&x_inv, &x_var, &y).unwrap();
        match ae.train_outcome() {
            Some(TrainOutcome::Diverged { .. }) => {}
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_defaults_do_not_change_training() {
        let (x_inv, x_var, y) = toy(64, 13);
        let cfg = AeConfig {
            hidden: 16,
            epochs: 10,
            ..AeConfig::default()
        };
        let mut guarded = VanillaAe::new(cfg.clone(), 14);
        guarded.fit(&x_inv, &x_var, &y).unwrap();
        let mut unguarded = VanillaAe::new(
            AeConfig {
                watchdog: WatchdogConfig {
                    enabled: false,
                    ..WatchdogConfig::default()
                },
                ..cfg
            },
            14,
        );
        unguarded.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(
            guarded.reconstruct(&x_inv, 0),
            unguarded.reconstruct(&x_inv, 0)
        );
    }

    #[test]
    fn rejects_empty_blocks() {
        let mut ae = VanillaAe::new(AeConfig::default(), 1);
        let x = Matrix::zeros(4, 2);
        assert!(ae.fit(&x, &Matrix::zeros(4, 0), &x).is_err());
    }
}
