//! The conditional GAN of Section V-C, with CTGAN-style architecture.
//!
//! Generator: `[X_inv, Z] → two Dense-BatchNorm-ReLU blocks → tanh → X̂_var`.
//! Discriminator: `[X_inv, X_var, one-hot Y] → two Dense-LeakyReLU-Dropout
//! blocks → real/fake logit`. Both trained with Adam at `2e-4` and weight
//! decay `1e-6` (the paper's settings); the discriminator's label
//! conditioning can be disabled to obtain the `FS+NoCond` ablation of
//! Table II.

use crate::{validate_fit, GanError, ReconSnapshot, Reconstructor, Result};
use fsda_linalg::{Matrix, SeededRng};
use fsda_nn::layer::{Activation, Dense, MixedActivation, OutputSpec};
use fsda_nn::loss::bce_with_logits;
use fsda_nn::norm::{BatchNorm1d, Dropout};
use fsda_nn::optim::{clip_grad_norm, Adam, Optimizer};
use fsda_nn::state::{export_state, load_state, StateDict};
use fsda_nn::train::BatchIter;
use fsda_nn::watchdog::{DivergenceWatchdog, WatchdogVerdict};
use fsda_nn::{InferPlan, InferPrecision, Sequential, TrainOutcome, WatchdogConfig};

/// Hyper-parameters of [`CondGan`].
#[derive(Debug, Clone, PartialEq)]
pub struct CondGanConfig {
    /// Noise-vector dimension (paper: 30 for 5GC, 15 for 5GIPC — small
    /// relative to the data so that M = 1 inference is near-deterministic).
    pub noise_dim: usize,
    /// Hidden width of generator and discriminator (paper: 256 / 128).
    pub hidden: usize,
    /// Training epochs (paper: 500).
    pub epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Learning rate for both networks (paper: 2e-4).
    pub learning_rate: f64,
    /// Weight decay (paper: 1e-6).
    pub weight_decay: f64,
    /// Discriminator dropout.
    pub dropout: f64,
    /// Condition the discriminator on the one-hot label (`false` gives the
    /// FS+NoCond ablation).
    pub condition_on_label: bool,
    /// Weight of an auxiliary reconstruction (MSE) term in the generator
    /// loss, pix2pix-style. The paper trains 500 epochs on a GPU; at this
    /// crate's smaller default budget the auxiliary term keeps generator
    /// training stable without changing what is learned (the adversarial
    /// term still shapes the conditional distribution). Set to 0.0 for the
    /// paper's pure adversarial objective.
    pub recon_weight: f64,
    /// Divergence-watchdog policy for the adversarial fit loop. Training
    /// behaviour — *not* part of the persisted artifact: restored models
    /// carry the default.
    pub watchdog: WatchdogConfig,
}

impl Default for CondGanConfig {
    fn default() -> Self {
        CondGanConfig {
            noise_dim: 30,
            hidden: 256,
            epochs: 300,
            batch_size: 64,
            learning_rate: 2e-4,
            weight_decay: 1e-6,
            dropout: 0.2,
            condition_on_label: true,
            recon_weight: 3.0,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl CondGanConfig {
    /// The paper's 5GC settings (442 features): noise 30, hidden 256.
    pub fn for_5gc() -> Self {
        Self::default()
    }

    /// The paper's 5GIPC settings (116 features): noise 15, hidden 128.
    pub fn for_5gipc() -> Self {
        CondGanConfig {
            noise_dim: 15,
            hidden: 128,
            ..Self::default()
        }
    }

    /// The FS+NoCond ablation: discriminator not conditioned on the label.
    pub fn without_label_conditioning(mut self) -> Self {
        self.condition_on_label = false;
        self
    }
}

/// The conditional GAN reconstructor.
pub struct CondGan {
    config: CondGanConfig,
    seed: u64,
    generator: Option<Sequential>,
    /// Compiled inference plan for the generator (rebuilt at fit and
    /// restore; never persisted). `None` only before fit.
    plan: Option<InferPlan>,
    dims: Option<(usize, usize)>, // (inv, var)
    /// Mean adversarial losses per epoch, for diagnostics.
    history: Vec<(f64, f64)>,
    /// How the last fit ended (None before fit / after snapshot restore).
    outcome: Option<TrainOutcome>,
}

impl std::fmt::Debug for CondGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CondGan")
            .field("config", &self.config)
            .field("fitted", &self.generator.is_some())
            .finish()
    }
}

impl CondGan {
    /// Creates an untrained GAN.
    pub fn new(config: CondGanConfig, seed: u64) -> Self {
        CondGan {
            config,
            seed,
            generator: None,
            plan: None,
            dims: None,
            history: Vec::new(),
            outcome: None,
        }
    }

    /// Per-epoch `(discriminator_loss, generator_loss)` history.
    pub fn loss_history(&self) -> &[(f64, f64)] {
        &self.history
    }

    /// Rebuilds a fitted GAN from a snapshot's config, dims, and generator
    /// weights. The generator architecture is rebuilt from the config and
    /// every parameter/buffer overwritten with the snapshot state.
    ///
    /// # Errors
    ///
    /// Returns [`GanError::InvalidInput`] when the state does not match
    /// the architecture the config describes.
    pub fn from_snapshot(
        config: CondGanConfig,
        seed: u64,
        dims: (usize, usize),
        state: &StateDict,
    ) -> Result<Self> {
        let mut gan = CondGan::new(config, seed);
        // Initializer draws are irrelevant: load_state overwrites every
        // weight, and inference never touches layer RNG state.
        let mut rng = SeededRng::new(seed);
        let mut gen = gan.build_generator(dims.0, dims.1, &mut rng);
        load_state(&mut gen, state).map_err(GanError::InvalidInput)?;
        gan.plan = InferPlan::compile(&gen).ok();
        gan.generator = Some(gen);
        gan.dims = Some(dims);
        Ok(gan)
    }

    /// Runs the generator forward pass: through the compiled plan when one
    /// exists (bit-identical at `F64Exact`), else layer by layer.
    fn run_generator(&self, gen: &Sequential, g_in: &Matrix, precision: InferPrecision) -> Matrix {
        match &self.plan {
            Some(plan) => plan.infer(g_in, precision),
            None => gen.infer(g_in),
        }
    }

    fn build_generator(&self, d_inv: usize, d_var: usize, rng: &mut SeededRng) -> Sequential {
        let h = self.config.hidden;
        let mut g = Sequential::new();
        g.push(Dense::new(d_inv + self.config.noise_dim, h, rng));
        g.push(BatchNorm1d::new(h));
        g.push(Activation::relu());
        g.push(Dense::new(h, h, rng));
        g.push(BatchNorm1d::new(h));
        g.push(Activation::relu());
        g.push(Dense::new_xavier(h, d_var, rng));
        g.push(MixedActivation::new(
            OutputSpec::continuous(d_var),
            1.0,
            rng.fork(0x6A),
        ));
        g
    }

    fn build_discriminator(&self, in_dim: usize, rng: &mut SeededRng) -> Sequential {
        let h = self.config.hidden;
        let mut d = Sequential::new();
        d.push(Dense::new(in_dim, h, rng));
        d.push(Activation::leaky_relu());
        d.push(Dropout::new(self.config.dropout, rng.fork(0xD1)));
        d.push(Dense::new(h, h, rng));
        d.push(Activation::leaky_relu());
        d.push(Dropout::new(self.config.dropout, rng.fork(0xD2)));
        d.push(Dense::new(h, 1, rng));
        d
    }
}

impl Reconstructor for CondGan {
    fn fit(&mut self, x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix) -> Result<()> {
        validate_fit(x_inv, x_var, y_onehot)?;
        let _span = fsda_telemetry::SpanTimer::new("gan.cond_gan.fit.seconds");
        let (d_inv, d_var) = (x_inv.cols(), x_var.cols());
        let label_dim = if self.config.condition_on_label {
            y_onehot.cols()
        } else {
            0
        };
        let mut rng = SeededRng::new(self.seed);
        let mut gen = self.build_generator(d_inv, d_var, &mut rng);
        let mut disc = self.build_discriminator(d_inv + d_var + label_dim, &mut rng);
        let mut opt_g = Adam::for_gan();
        opt_g.set_learning_rate(self.config.learning_rate);
        let mut opt_d = Adam::for_gan();
        opt_d.set_learning_rate(self.config.learning_rate);
        let _ = self.config.weight_decay; // carried by Adam::for_gan (1e-6)

        let n = x_inv.rows();
        self.history.clear();
        let mut watchdog = DivergenceWatchdog::new(self.config.watchdog);
        for epoch in 0..self.config.epochs {
            let mut d_loss_sum = 0.0;
            let mut g_loss_sum = 0.0;
            let mut batches = 0usize;
            for batch in BatchIter::new(n, self.config.batch_size.min(n), &mut rng) {
                if batch.len() < 2 {
                    continue; // batch norm needs > 1 sample
                }
                let b = batch.len();
                let b_inv = x_inv.select_rows(&batch);
                let b_var = x_var.select_rows(&batch);
                let b_y = y_onehot.select_rows(&batch);

                // --- Discriminator step ------------------------------------
                let z = rng.normal_matrix(b, self.config.noise_dim, 0.0, 1.0);
                let g_in = b_inv.hstack(&z).expect("row counts match");
                let fake_var = gen.forward(&g_in, true);
                let real_in = concat_d_input(&b_inv, &b_var, &b_y, label_dim);
                let fake_in = concat_d_input(&b_inv, &fake_var, &b_y, label_dim);
                let ones = Matrix::filled(b, 1, 1.0);
                let zeros = Matrix::zeros(b, 1);

                disc.zero_grad();
                let real_logits = disc.forward(&real_in, true);
                let (loss_real, grad_real) = bce_with_logits(&real_logits, &ones);
                disc.backward(&grad_real);
                let fake_logits = disc.forward(&fake_in, true);
                let (loss_fake, grad_fake) = bce_with_logits(&fake_logits, &zeros);
                disc.backward(&grad_fake);
                if let Some(clip) = self.config.watchdog.grad_clip {
                    clip_grad_norm(&mut disc.params_mut(), clip);
                }
                opt_d.step(&mut disc.params_mut());
                d_loss_sum += loss_real + loss_fake;

                // --- Generator step -----------------------------------------
                let z = rng.normal_matrix(b, self.config.noise_dim, 0.0, 1.0);
                let g_in = b_inv.hstack(&z).expect("row counts match");
                gen.zero_grad();
                let fake_var = gen.forward(&g_in, true);
                let fake_in = concat_d_input(&b_inv, &fake_var, &b_y, label_dim);
                let logits = disc.forward(&fake_in, true);
                let (loss_g, grad) = bce_with_logits(&logits, &ones);
                disc.zero_grad(); // discard D's gradients from this pass
                let grad_d_in = disc.backward(&grad);
                let mut grad_fake_var =
                    grad_d_in.select_cols(&(d_inv..d_inv + d_var).collect::<Vec<_>>());
                if self.config.recon_weight > 0.0 {
                    let (_, grad_mse) = fsda_nn::loss::mse(&fake_var, &b_var);
                    grad_fake_var.axpy(self.config.recon_weight, &grad_mse);
                }
                gen.backward(&grad_fake_var);
                if let Some(clip) = self.config.watchdog.grad_clip {
                    clip_grad_norm(&mut gen.params_mut(), clip);
                }
                opt_g.step(&mut gen.params_mut());
                disc.zero_grad();
                g_loss_sum += loss_g;
                batches += 1;
            }
            if batches > 0 {
                self.history
                    .push((d_loss_sum / batches as f64, g_loss_sum / batches as f64));
            }
            // Guard both networks together: a NaN in either side's loss
            // poisons the other through the shared adversarial objective.
            let epoch_loss = d_loss_sum + g_loss_sum;
            match watchdog.observe(epoch, epoch_loss, &mut [&mut gen, &mut disc]) {
                WatchdogVerdict::Proceed | WatchdogVerdict::RolledBack => {}
                WatchdogVerdict::Abort => break,
            }
        }
        self.outcome = Some(watchdog.outcome());
        self.plan = InferPlan::compile(&gen).ok();
        self.generator = Some(gen);
        self.dims = Some((d_inv, d_var));
        Ok(())
    }

    fn reconstruct(&self, x_inv: &Matrix, seed: u64) -> Matrix {
        let gen = self
            .generator
            .as_ref()
            .expect("CondGan: reconstruct before fit");
        let (d_inv, _) = self.dims.expect("dims recorded at fit");
        assert_eq!(
            x_inv.cols(),
            d_inv,
            "CondGan: invariant-block width mismatch"
        );
        let mut rng = SeededRng::new(seed);
        let z = rng.normal_matrix(x_inv.rows(), self.config.noise_dim, 0.0, 1.0);
        let g_in = x_inv.hstack(&z).expect("row counts match");
        self.run_generator(gen, &g_in, InferPrecision::F64Exact)
    }

    fn name(&self) -> &'static str {
        if self.config.condition_on_label {
            "gan"
        } else {
            "gan-nocond"
        }
    }

    fn train_outcome(&self) -> Option<TrainOutcome> {
        self.outcome
    }

    fn reconstruct_rows(&self, x_inv: &Matrix, row_seeds: &[u64]) -> Matrix {
        self.reconstruct_rows_with(x_inv, row_seeds, InferPrecision::F64Exact)
    }

    fn reconstruct_rows_with(
        &self,
        x_inv: &Matrix,
        row_seeds: &[u64],
        precision: InferPrecision,
    ) -> Matrix {
        let gen = self
            .generator
            .as_ref()
            .expect("CondGan: reconstruct before fit");
        let (d_inv, _) = self.dims.expect("dims recorded at fit");
        assert_eq!(
            x_inv.cols(),
            d_inv,
            "CondGan: invariant-block width mismatch"
        );
        assert_eq!(
            x_inv.rows(),
            row_seeds.len(),
            "reconstruct_rows: one seed per row"
        );
        // Row r gets the first `noise_dim` draws of a fresh rng seeded with
        // row_seeds[r] — exactly what the per-row `reconstruct` would draw —
        // so one amortized forward pass is bit-identical to the scalar loop.
        let nd = self.config.noise_dim;
        let mut z = Matrix::zeros(x_inv.rows(), nd);
        for (r, &seed) in row_seeds.iter().enumerate() {
            let noise = SeededRng::new(seed).normal_vec(nd);
            z.row_mut(r).copy_from_slice(&noise);
        }
        let g_in = x_inv.hstack(&z).expect("row counts match");
        self.run_generator(gen, &g_in, precision)
    }

    fn snapshot(&self) -> Result<ReconSnapshot> {
        let gen = self.generator.as_ref().ok_or(GanError::NotFitted)?;
        Ok(ReconSnapshot::Gan {
            config: self.config.clone(),
            seed: self.seed,
            dims: self.dims.expect("dims recorded at fit"),
            state: export_state(gen),
        })
    }
}

fn concat_d_input(x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix, label_dim: usize) -> Matrix {
    let base = x_inv.hstack(x_var).expect("row counts match");
    if label_dim == 0 {
        base
    } else {
        base.hstack(y_onehot).expect("row counts match")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GanError;
    use fsda_linalg::stats::{mean, pearson};

    /// Source data where x_var = f(x_inv, class) + noise: two invariant
    /// features, one variant feature strongly tied to them.
    fn toy_source(n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let mut x_inv = Matrix::zeros(n, 2);
        let mut x_var = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 2);
        for r in 0..n {
            let class = usize::from(rng.bernoulli(0.5));
            let a = rng.normal(if class == 0 { -0.5 } else { 0.5 }, 0.3);
            let b = rng.normal(0.0, 0.3);
            x_inv.set(r, 0, a);
            x_inv.set(r, 1, b);
            x_var.set(
                r,
                0,
                (0.8 * a - 0.4 * b).tanh() * 0.9 + rng.normal(0.0, 0.05),
            );
            y.set(r, class, 1.0);
        }
        (x_inv, x_var, y)
    }

    fn quick_config() -> CondGanConfig {
        CondGanConfig {
            noise_dim: 4,
            hidden: 32,
            epochs: 60,
            ..CondGanConfig::default()
        }
    }

    #[test]
    fn reconstruction_correlates_with_truth() {
        let (x_inv, x_var, y) = toy_source(256, 1);
        let mut gan = CondGan::new(quick_config(), 2);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        let recon = gan.reconstruct(&x_inv, 3);
        let r = pearson(&recon.col(0), &x_var.col(0));
        assert!(
            r > 0.5,
            "GAN reconstruction should track the mechanism, r = {r}"
        );
    }

    #[test]
    fn reconstruction_is_deterministic_given_seed() {
        let (x_inv, x_var, y) = toy_source(128, 4);
        let mut gan = CondGan::new(quick_config(), 5);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(gan.reconstruct(&x_inv, 9), gan.reconstruct(&x_inv, 9));
    }

    #[test]
    fn small_noise_makes_mc_samples_agree() {
        // The paper's M = 1 argument: with a small noise vector, different
        // Monte-Carlo draws give nearly identical reconstructions.
        let (x_inv, x_var, y) = toy_source(256, 6);
        let mut gan = CondGan::new(
            CondGanConfig {
                noise_dim: 2,
                ..quick_config()
            },
            7,
        );
        gan.fit(&x_inv, &x_var, &y).unwrap();
        let a = gan.reconstruct(&x_inv, 1);
        let b = gan.reconstruct(&x_inv, 2);
        let diff: f64 = a
            .try_sub(&b)
            .unwrap()
            .as_slice()
            .iter()
            .map(|v| v.abs())
            .sum::<f64>()
            / a.as_slice().len() as f64;
        let spread = fsda_linalg::stats::std_dev(&x_var.col(0));
        assert!(
            diff < 0.5 * spread,
            "MC spread {diff} should be small relative to data spread {spread}"
        );
    }

    #[test]
    fn output_is_bounded_by_tanh() {
        let (x_inv, x_var, y) = toy_source(128, 8);
        let mut gan = CondGan::new(quick_config(), 9);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        // Even far-out-of-distribution inputs produce bounded outputs —
        // this is what maps drifted samples back into the source range.
        let drifted = x_inv.map(|v| v + 10.0);
        let recon = gan.reconstruct(&drifted, 10);
        assert!(recon.max_abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn nocond_variant_has_distinct_name() {
        let gan = CondGan::new(quick_config().without_label_conditioning(), 1);
        assert_eq!(gan.name(), "gan-nocond");
        let cond = CondGan::new(quick_config(), 1);
        assert_eq!(cond.name(), "gan");
    }

    #[test]
    fn nocond_trains_and_reconstructs() {
        let (x_inv, x_var, y) = toy_source(128, 11);
        let mut gan = CondGan::new(quick_config().without_label_conditioning(), 12);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        let recon = gan.reconstruct(&x_inv, 13);
        assert_eq!(recon.shape(), (128, 1));
        assert!(recon.is_finite());
    }

    #[test]
    fn loss_history_is_recorded() {
        let (x_inv, x_var, y) = toy_source(64, 14);
        let mut gan = CondGan::new(
            CondGanConfig {
                epochs: 5,
                ..quick_config()
            },
            15,
        );
        gan.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(gan.loss_history().len(), 5);
        for &(d, g) in gan.loss_history() {
            assert!(d.is_finite() && g.is_finite());
        }
    }

    #[test]
    fn generated_marginal_matches_source_scale() {
        let (x_inv, x_var, y) = toy_source(256, 16);
        let mut gan = CondGan::new(quick_config(), 17);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        let recon = gan.reconstruct(&x_inv, 18);
        let m_real = mean(&x_var.col(0));
        let m_fake = mean(&recon.col(0));
        assert!(
            (m_real - m_fake).abs() < 0.4,
            "means: real {m_real}, fake {m_fake}"
        );
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (x_inv, x_var, y) = toy_source(128, 20);
        let mut gan = CondGan::new(quick_config(), 21);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        let snap = gan.snapshot().unwrap();
        let restored = crate::restore_reconstructor(&snap).unwrap();
        assert_eq!(restored.name(), "gan");
        assert_eq!(
            restored.reconstruct(&x_inv, 22),
            gan.reconstruct(&x_inv, 22)
        );
        // The restored model snapshots back to the same state.
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn snapshot_before_fit_is_not_fitted() {
        let gan = CondGan::new(quick_config(), 1);
        assert_eq!(gan.snapshot().unwrap_err(), GanError::NotFitted);
    }

    #[test]
    fn reconstruct_rows_matches_per_row_loop() {
        let (x_inv, x_var, y) = toy_source(64, 23);
        let mut gan = CondGan::new(quick_config(), 24);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        let seeds: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E37) ^ 0x5A).collect();
        let batched = gan.reconstruct_rows(&x_inv, &seeds);
        for (r, &seed) in seeds.iter().enumerate() {
            let single = gan.reconstruct(&x_inv.select_rows(&[r]), seed);
            assert_eq!(batched.row(r), single.row(0), "row {r}");
        }
    }

    #[test]
    fn healthy_fit_reports_converged() {
        let (x_inv, x_var, y) = toy_source(64, 30);
        let mut gan = CondGan::new(
            CondGanConfig {
                epochs: 3,
                ..quick_config()
            },
            31,
        );
        assert_eq!(gan.train_outcome(), None);
        gan.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(gan.train_outcome(), Some(fsda_nn::TrainOutcome::Converged));
    }

    #[test]
    fn nan_training_data_reports_diverged() {
        let (x_inv, mut x_var, y) = toy_source(64, 32);
        for r in 0..x_var.rows() {
            x_var.set(r, 0, f64::NAN);
        }
        let mut gan = CondGan::new(
            CondGanConfig {
                epochs: 10,
                ..quick_config()
            },
            33,
        );
        gan.fit(&x_inv, &x_var, &y).unwrap();
        match gan.train_outcome() {
            Some(fsda_nn::TrainOutcome::Diverged { .. }) => {}
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn grad_clip_keeps_training_finite() {
        let (x_inv, x_var, y) = toy_source(64, 34);
        let mut gan = CondGan::new(
            CondGanConfig {
                epochs: 5,
                watchdog: fsda_nn::WatchdogConfig {
                    grad_clip: Some(1.0),
                    ..fsda_nn::WatchdogConfig::default()
                },
                ..quick_config()
            },
            35,
        );
        gan.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(gan.train_outcome(), Some(fsda_nn::TrainOutcome::Converged));
        assert!(gan.reconstruct(&x_inv, 36).is_finite());
    }

    #[test]
    fn watchdog_defaults_do_not_change_training() {
        // The default watchdog must be numerically inert on healthy runs:
        // guarded and unguarded training produce bit-identical generators.
        let (x_inv, x_var, y) = toy_source(64, 37);
        let cfg_on = CondGanConfig {
            epochs: 5,
            ..quick_config()
        };
        let cfg_off = CondGanConfig {
            watchdog: fsda_nn::WatchdogConfig {
                enabled: false,
                ..fsda_nn::WatchdogConfig::default()
            },
            ..cfg_on.clone()
        };
        let mut a = CondGan::new(cfg_on, 38);
        let mut b = CondGan::new(cfg_off, 38);
        a.fit(&x_inv, &x_var, &y).unwrap();
        b.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(a.reconstruct(&x_inv, 39), b.reconstruct(&x_inv, 39));
    }

    #[test]
    fn rejects_invalid_input() {
        let mut gan = CondGan::new(quick_config(), 1);
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(2, 1);
        assert_eq!(
            gan.fit(&a, &b, &a).unwrap_err(),
            GanError::InvalidInput("row mismatch: inv 3, var 2, labels 3".into(),)
        );
    }
}
