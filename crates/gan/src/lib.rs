//! Reconstruction models for domain-variant features.
//!
//! Step 2 of the paper's framework: a conditional GAN, trained **only on
//! source-domain data**, learns `P(X_var | X_inv)` — how the domain-variant
//! features look given the invariant ones. At inference the generator maps
//! a target sample's variant features back into the source distribution, so
//! a classifier trained on source data with *all* features can be used
//! unchanged. Table II ablates the reconstruction family, so a VAE and a
//! vanilla autoencoder are provided behind the same [`Reconstructor`]
//! trait, plus the unconditioned-discriminator GAN variant (`FS+NoCond`).
//!
//! # Example
//!
//! ```
//! use fsda_linalg::{Matrix, SeededRng};
//! use fsda_gan::{Reconstructor, autoencoder::{AeConfig, VanillaAe}};
//!
//! // x_var is a linear function of x_inv; the AE learns to reconstruct it.
//! let mut rng = SeededRng::new(0);
//! let x_inv = Matrix::from_fn(128, 2, |_, _| rng.normal(0.0, 1.0));
//! let x_var = Matrix::from_fn(128, 1, |r, _| 0.5 * x_inv.get(r, 0) - 0.3 * x_inv.get(r, 1));
//! let y = Matrix::zeros(128, 1);
//! let mut ae = VanillaAe::new(AeConfig { epochs: 200, ..AeConfig::default() }, 1);
//! ae.fit(&x_inv, &x_var, &y)?;
//! let recon = ae.reconstruct(&x_inv, 7);
//! assert_eq!(recon.shape(), (128, 1));
//! # Ok::<(), fsda_gan::GanError>(())
//! ```

pub mod autoencoder;
pub mod cond_gan;
pub mod vae;

pub use cond_gan::{CondGan, CondGanConfig};

use fsda_linalg::Matrix;

/// Errors raised by reconstruction models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GanError {
    /// Mismatched shapes or empty inputs.
    InvalidInput(String),
    /// Reconstruction requested before training.
    NotFitted,
}

impl std::fmt::Display for GanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GanError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            GanError::NotFitted => write!(f, "model is not fitted"),
        }
    }
}

impl std::error::Error for GanError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GanError>;

/// A model reconstructing domain-variant features from invariant ones.
///
/// `fit` trains on source-domain samples only (the defining property of the
/// paper's approach); `reconstruct` generates source-like variant features
/// for arbitrary (e.g. target-domain) invariant features.
pub trait Reconstructor: Send {
    /// Trains on source data: invariant block, variant block, and one-hot
    /// labels (models that do not condition on labels ignore them).
    ///
    /// # Errors
    ///
    /// Returns [`GanError::InvalidInput`] when row counts disagree or any
    /// block is empty.
    fn fit(&mut self, x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix) -> Result<()>;

    /// Generates variant features for the given invariant features.
    /// `seed` drives the generator noise, so fixed seeds give reproducible
    /// reconstructions and different seeds give Monte-Carlo samples.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful [`Reconstructor::fit`].
    fn reconstruct(&self, x_inv: &Matrix, seed: u64) -> Matrix;

    /// Short name for reports ("gan", "gan-nocond", "vae", "ae").
    fn name(&self) -> &'static str;
}

/// Validates the common `fit` preconditions.
pub(crate) fn validate_fit(x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix) -> Result<()> {
    if x_inv.rows() == 0 {
        return Err(GanError::InvalidInput("no training samples".into()));
    }
    if x_inv.cols() == 0 || x_var.cols() == 0 {
        return Err(GanError::InvalidInput(
            "both invariant and variant blocks must be non-empty".into(),
        ));
    }
    if x_inv.rows() != x_var.rows() || x_inv.rows() != y_onehot.rows() {
        return Err(GanError::InvalidInput(format!(
            "row mismatch: inv {}, var {}, labels {}",
            x_inv.rows(),
            x_var.rows(),
            y_onehot.rows()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!GanError::NotFitted.to_string().is_empty());
    }

    #[test]
    fn validate_catches_mismatches() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(2, 2);
        assert!(validate_fit(&a, &b, &a).is_err());
        assert!(validate_fit(
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 1)
        )
        .is_err());
        assert!(validate_fit(&a, &Matrix::zeros(3, 0), &a).is_err());
        assert!(validate_fit(&a, &a, &a).is_ok());
    }
}
