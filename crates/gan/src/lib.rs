//! Reconstruction models for domain-variant features.
//!
//! Step 2 of the paper's framework: a conditional GAN, trained **only on
//! source-domain data**, learns `P(X_var | X_inv)` — how the domain-variant
//! features look given the invariant ones. At inference the generator maps
//! a target sample's variant features back into the source distribution, so
//! a classifier trained on source data with *all* features can be used
//! unchanged. Table II ablates the reconstruction family, so a VAE and a
//! vanilla autoencoder are provided behind the same [`Reconstructor`]
//! trait, plus the unconditioned-discriminator GAN variant (`FS+NoCond`).
//!
//! # Example
//!
//! ```
//! use fsda_linalg::{Matrix, SeededRng};
//! use fsda_gan::{Reconstructor, autoencoder::{AeConfig, VanillaAe}};
//!
//! // x_var is a linear function of x_inv; the AE learns to reconstruct it.
//! let mut rng = SeededRng::new(0);
//! let x_inv = Matrix::from_fn(128, 2, |_, _| rng.normal(0.0, 1.0));
//! let x_var = Matrix::from_fn(128, 1, |r, _| 0.5 * x_inv.get(r, 0) - 0.3 * x_inv.get(r, 1));
//! let y = Matrix::zeros(128, 1);
//! let mut ae = VanillaAe::new(AeConfig { epochs: 200, ..AeConfig::default() }, 1);
//! ae.fit(&x_inv, &x_var, &y)?;
//! let recon = ae.reconstruct(&x_inv, 7);
//! assert_eq!(recon.shape(), (128, 1));
//! # Ok::<(), fsda_gan::GanError>(())
//! ```

pub mod autoencoder;
pub mod cond_gan;
pub mod vae;

pub use cond_gan::{CondGan, CondGanConfig};
pub use fsda_nn::{InferPrecision, TrainOutcome, WatchdogConfig};

use autoencoder::AeConfig;
use fsda_linalg::Matrix;
use fsda_nn::state::StateDict;
use vae::VaeConfig;

/// Errors raised by reconstruction models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GanError {
    /// Mismatched shapes or empty inputs.
    InvalidInput(String),
    /// Reconstruction requested before training.
    NotFitted,
}

impl std::fmt::Display for GanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GanError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            GanError::NotFitted => write!(f, "model is not fitted"),
        }
    }
}

impl std::error::Error for GanError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GanError>;

/// A model reconstructing domain-variant features from invariant ones.
///
/// `fit` trains on source-domain samples only (the defining property of the
/// paper's approach); `reconstruct` generates source-like variant features
/// for arbitrary (e.g. target-domain) invariant features.
pub trait Reconstructor: Send + Sync {
    /// Trains on source data: invariant block, variant block, and one-hot
    /// labels (models that do not condition on labels ignore them).
    ///
    /// # Errors
    ///
    /// Returns [`GanError::InvalidInput`] when row counts disagree or any
    /// block is empty.
    fn fit(&mut self, x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix) -> Result<()>;

    /// Generates variant features for the given invariant features.
    /// `seed` drives the generator noise, so fixed seeds give reproducible
    /// reconstructions and different seeds give Monte-Carlo samples.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful [`Reconstructor::fit`].
    fn reconstruct(&self, x_inv: &Matrix, seed: u64) -> Matrix;

    /// Short name for reports ("gan", "gan-nocond", "vae", "ae").
    fn name(&self) -> &'static str;

    /// Reconstructs a batch where row `r` uses generator noise seeded by
    /// `row_seeds[r]`, so the result does not depend on how rows are
    /// grouped into batches: reconstructing all rows at once, one at a
    /// time, or in arbitrary chunks gives bit-identical output. This is
    /// the contract the batched serving path relies on.
    ///
    /// The default implementation loops [`Reconstructor::reconstruct`]
    /// over single rows; implementations override it to amortize the
    /// network forward pass over the whole matrix.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful fit, or when
    /// `row_seeds.len() != x_inv.rows()`.
    fn reconstruct_rows(&self, x_inv: &Matrix, row_seeds: &[u64]) -> Matrix {
        assert_eq!(
            x_inv.rows(),
            row_seeds.len(),
            "reconstruct_rows: one seed per row"
        );
        let mut out: Option<Matrix> = None;
        for (r, &seed) in row_seeds.iter().enumerate() {
            let row = self.reconstruct(&x_inv.select_rows(&[r]), seed);
            out = Some(match out {
                None => row,
                Some(acc) => acc.vstack(&row).expect("same column count"),
            });
        }
        out.expect("reconstruct_rows: empty batch")
    }

    /// [`Reconstructor::reconstruct_rows`] at an explicit numeric
    /// precision. [`InferPrecision::F64Exact`] must be bit-identical to
    /// `reconstruct_rows`; [`InferPrecision::F32Fast`] may trade a small,
    /// bounded divergence for throughput (models with a compiled
    /// inference plan run the single-precision kernels).
    ///
    /// The default ignores the precision and runs the exact path, so
    /// reconstructors without a fast path stay correct.
    ///
    /// # Panics
    ///
    /// Panics when called before a successful fit, or when
    /// `row_seeds.len() != x_inv.rows()`.
    fn reconstruct_rows_with(
        &self,
        x_inv: &Matrix,
        row_seeds: &[u64],
        precision: InferPrecision,
    ) -> Matrix {
        let _ = precision;
        self.reconstruct_rows(x_inv, row_seeds)
    }

    /// How the last [`Reconstructor::fit`] ended, when the model tracks it
    /// with a divergence watchdog: `Converged`, `Recovered`, or `Diverged`.
    /// `None` before fit, for models without watchdog support, and for
    /// models restored from a snapshot (training history is not persisted).
    fn train_outcome(&self) -> Option<TrainOutcome> {
        None
    }

    /// Captures the fitted model as a self-describing [`ReconSnapshot`]
    /// (config + seed + dims + weights) that [`restore_reconstructor`]
    /// turns back into an equivalent model.
    ///
    /// # Errors
    ///
    /// Returns [`GanError::NotFitted`] before a successful fit and
    /// [`GanError::InvalidInput`] for models without snapshot support
    /// (the default).
    fn snapshot(&self) -> Result<ReconSnapshot> {
        Err(GanError::InvalidInput(format!(
            "reconstructor '{}' does not support snapshots",
            self.name()
        )))
    }
}

/// A serializable capture of a fitted reconstructor: enough to rebuild the
/// exact architecture (config + dims), plus its trained weights.
///
/// The training seed is carried for provenance; restoring overwrites every
/// parameter and buffer with the snapshot weights, so the rebuilt model
/// reconstructs bit-identically to the original.
#[derive(Debug, Clone, PartialEq)]
pub enum ReconSnapshot {
    /// A fitted [`CondGan`] (conditional or the NoCond ablation).
    Gan {
        /// Architecture hyper-parameters.
        config: CondGanConfig,
        /// Training seed (provenance).
        seed: u64,
        /// `(invariant, variant)` feature dims recorded at fit.
        dims: (usize, usize),
        /// Generator weights and batch-norm running statistics.
        state: StateDict,
    },
    /// A fitted [`vae::Vae`].
    Vae {
        /// Architecture hyper-parameters.
        config: VaeConfig,
        /// Training seed (provenance).
        seed: u64,
        /// `(invariant, variant)` feature dims recorded at fit.
        dims: (usize, usize),
        /// Decoder weights.
        state: StateDict,
    },
    /// A fitted [`autoencoder::VanillaAe`].
    Ae {
        /// Architecture hyper-parameters.
        config: AeConfig,
        /// Training seed (provenance).
        seed: u64,
        /// `(invariant, variant)` feature dims recorded at fit.
        dims: (usize, usize),
        /// Network weights.
        state: StateDict,
    },
}

/// Rebuilds a fitted reconstructor from a [`ReconSnapshot`].
///
/// The architecture is reconstructed from the snapshot's config/dims and
/// every weight is overwritten with the snapshot state, so the returned
/// model's `reconstruct` output is bit-identical to the snapshotted one.
///
/// # Errors
///
/// Returns [`GanError::InvalidInput`] when the snapshot state does not
/// match the architecture its config describes (a corrupted or
/// hand-edited artifact).
pub fn restore_reconstructor(snapshot: &ReconSnapshot) -> Result<Box<dyn Reconstructor>> {
    match snapshot {
        ReconSnapshot::Gan {
            config,
            seed,
            dims,
            state,
        } => Ok(Box::new(CondGan::from_snapshot(
            config.clone(),
            *seed,
            *dims,
            state,
        )?)),
        ReconSnapshot::Vae {
            config,
            seed,
            dims,
            state,
        } => Ok(Box::new(vae::Vae::from_snapshot(
            config.clone(),
            *seed,
            *dims,
            state,
        )?)),
        ReconSnapshot::Ae {
            config,
            seed,
            dims,
            state,
        } => Ok(Box::new(autoencoder::VanillaAe::from_snapshot(
            config.clone(),
            *seed,
            *dims,
            state,
        )?)),
    }
}

/// Validates the common `fit` preconditions.
pub(crate) fn validate_fit(x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix) -> Result<()> {
    if x_inv.rows() == 0 {
        return Err(GanError::InvalidInput("no training samples".into()));
    }
    if x_inv.cols() == 0 || x_var.cols() == 0 {
        return Err(GanError::InvalidInput(
            "both invariant and variant blocks must be non-empty".into(),
        ));
    }
    if x_inv.rows() != x_var.rows() || x_inv.rows() != y_onehot.rows() {
        return Err(GanError::InvalidInput(format!(
            "row mismatch: inv {}, var {}, labels {}",
            x_inv.rows(),
            x_var.rows(),
            y_onehot.rows()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(!GanError::NotFitted.to_string().is_empty());
    }

    #[test]
    fn validate_catches_mismatches() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(2, 2);
        assert!(validate_fit(&a, &b, &a).is_err());
        assert!(validate_fit(
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 1)
        )
        .is_err());
        assert!(validate_fit(&a, &Matrix::zeros(3, 0), &a).is_err());
        assert!(validate_fit(&a, &a, &a).is_ok());
    }
}
