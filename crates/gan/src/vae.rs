//! Conditional variational autoencoder reconstructor (the FS+VAE ablation
//! of Table II).
//!
//! Encoder: `[X_inv, X_var] → (mu, logvar)`; decoder: `[X_inv, z] → X̂_var`
//! with the same hidden architecture as the GAN generator. Trained with the
//! usual ELBO (MSE reconstruction + KL). At inference `z ~ N(0, I)` is
//! drawn, so the model plays the same role as the GAN generator.

use crate::{validate_fit, GanError, ReconSnapshot, Reconstructor, Result};
use fsda_linalg::{Matrix, SeededRng};
use fsda_nn::layer::{Activation, Dense, MixedActivation, OutputSpec};
use fsda_nn::optim::{clip_grad_norm, Adam, Optimizer};
use fsda_nn::state::{export_state, load_state, StateDict};
use fsda_nn::train::BatchIter;
use fsda_nn::watchdog::{DivergenceWatchdog, WatchdogVerdict};
use fsda_nn::{InferPlan, InferPrecision, Sequential, TrainOutcome, WatchdogConfig};

/// Hyper-parameters of [`Vae`].
#[derive(Debug, Clone, PartialEq)]
pub struct VaeConfig {
    /// Latent dimension.
    pub latent_dim: usize,
    /// Hidden width (matches the GAN generator, per the paper).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// KL-term weight (beta).
    pub beta: f64,
    /// Divergence-watchdog policy for the fit loop. Training behaviour —
    /// *not* part of the persisted artifact: restored models carry the
    /// default.
    pub watchdog: WatchdogConfig,
}

impl Default for VaeConfig {
    fn default() -> Self {
        VaeConfig {
            latent_dim: 16,
            hidden: 256,
            epochs: 200,
            batch_size: 64,
            learning_rate: 1e-3,
            beta: 0.5,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// The conditional VAE reconstructor.
pub struct Vae {
    config: VaeConfig,
    seed: u64,
    decoder: Option<Sequential>,
    /// Compiled decoder plan (rebuilt at fit and restore; not persisted).
    plan: Option<InferPlan>,
    dims: Option<(usize, usize)>,
    outcome: Option<TrainOutcome>,
}

impl std::fmt::Debug for Vae {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vae")
            .field("config", &self.config)
            .field("fitted", &self.decoder.is_some())
            .finish()
    }
}

impl Vae {
    /// Creates an untrained VAE.
    pub fn new(config: VaeConfig, seed: u64) -> Self {
        Vae {
            config,
            seed,
            decoder: None,
            plan: None,
            dims: None,
            outcome: None,
        }
    }

    /// Runs the decoder: through the compiled plan when one exists
    /// (bit-identical at `F64Exact`), else layer by layer.
    fn run_decoder(
        &self,
        decoder: &Sequential,
        dec_in: &Matrix,
        precision: InferPrecision,
    ) -> Matrix {
        match &self.plan {
            Some(plan) => plan.infer(dec_in, precision),
            None => decoder.infer(dec_in),
        }
    }

    fn build_decoder(&self, d_inv: usize, d_var: usize, rng: &mut SeededRng) -> Sequential {
        let h = self.config.hidden;
        let zd = self.config.latent_dim;
        let mut decoder = Sequential::new();
        decoder.push(Dense::new(d_inv + zd, h, rng));
        decoder.push(Activation::relu());
        decoder.push(Dense::new(h, h, rng));
        decoder.push(Activation::relu());
        decoder.push(Dense::new_xavier(h, d_var, rng));
        decoder.push(MixedActivation::new(
            OutputSpec::continuous(d_var),
            1.0,
            rng.fork(0x7E),
        ));
        decoder
    }

    /// Rebuilds a fitted VAE from a snapshot's config, dims, and decoder
    /// weights (the encoder is a training-time object and is not kept).
    ///
    /// # Errors
    ///
    /// Returns [`GanError::InvalidInput`] when the state does not match
    /// the architecture the config describes.
    pub fn from_snapshot(
        config: VaeConfig,
        seed: u64,
        dims: (usize, usize),
        state: &StateDict,
    ) -> Result<Self> {
        let mut vae = Vae::new(config, seed);
        let mut rng = SeededRng::new(seed);
        let mut decoder = vae.build_decoder(dims.0, dims.1, &mut rng);
        load_state(&mut decoder, state).map_err(GanError::InvalidInput)?;
        vae.plan = InferPlan::compile(&decoder).ok();
        vae.decoder = Some(decoder);
        vae.dims = Some(dims);
        Ok(vae)
    }
}

impl Reconstructor for Vae {
    fn fit(&mut self, x_inv: &Matrix, x_var: &Matrix, y_onehot: &Matrix) -> Result<()> {
        validate_fit(x_inv, x_var, y_onehot)?;
        let _span = fsda_telemetry::SpanTimer::new("gan.vae.fit.seconds");
        let (d_inv, d_var) = (x_inv.cols(), x_var.cols());
        let zd = self.config.latent_dim;
        let h = self.config.hidden;
        let mut rng = SeededRng::new(self.seed);

        // Encoder trunk -> 2*zd outputs (mu, logvar).
        let mut encoder = Sequential::new();
        encoder.push(Dense::new(d_inv + d_var, h, &mut rng));
        encoder.push(Activation::relu());
        encoder.push(Dense::new(h, 2 * zd, &mut rng));

        // Decoder mirrors the GAN generator.
        let mut decoder = self.build_decoder(d_inv, d_var, &mut rng);

        let mut opt = Adam::new(self.config.learning_rate);
        let mut watchdog = DivergenceWatchdog::new(self.config.watchdog);
        let n = x_inv.rows();
        for epoch in 0..self.config.epochs {
            let mut epoch_loss = 0.0;
            for batch in BatchIter::new(n, self.config.batch_size.min(n), &mut rng) {
                let b = batch.len();
                let b_inv = x_inv.select_rows(&batch);
                let b_var = x_var.select_rows(&batch);
                let enc_in = b_inv.hstack(&b_var).expect("rows match");
                let enc_out = encoder.forward(&enc_in, true);
                // Split mu / logvar.
                let mu = enc_out.select_cols(&(0..zd).collect::<Vec<_>>());
                let logvar = enc_out.select_cols(&(zd..2 * zd).collect::<Vec<_>>());
                // Reparameterize.
                let eps = rng.normal_matrix(b, zd, 0.0, 1.0);
                let mut z = mu.clone();
                for r in 0..b {
                    for c in 0..zd {
                        let std = (0.5 * logvar.get(r, c)).exp();
                        z.set(r, c, mu.get(r, c) + std * eps.get(r, c));
                    }
                }
                let dec_in = b_inv.hstack(&z).expect("rows match");
                let recon = decoder.forward(&dec_in, true);
                // MSE reconstruction gradient (and loss, for the watchdog).
                let count = (b * d_var) as f64;
                let mut grad_recon = Matrix::zeros(b, d_var);
                let mut recon_sq = 0.0;
                for r in 0..b {
                    for c in 0..d_var {
                        let diff = recon.get(r, c) - b_var.get(r, c);
                        recon_sq += diff * diff;
                        grad_recon.set(r, c, 2.0 * diff / count);
                    }
                }
                encoder.zero_grad();
                decoder.zero_grad();
                let grad_dec_in = decoder.backward(&grad_recon);
                // Gradient wrt z flows back through the reparameterization
                // into mu (identity) and logvar (0.5 * std * eps).
                let grad_z = grad_dec_in.select_cols(&(d_inv..d_inv + zd).collect::<Vec<_>>());
                let kl_scale = self.config.beta / (b * zd) as f64;
                let mut grad_enc_out = Matrix::zeros(b, 2 * zd);
                let mut kl_sum = 0.0;
                for r in 0..b {
                    for c in 0..zd {
                        let std = (0.5 * logvar.get(r, c)).exp();
                        kl_sum += -0.5
                            * (1.0 + logvar.get(r, c)
                                - mu.get(r, c) * mu.get(r, c)
                                - logvar.get(r, c).exp());
                        // Reconstruction path + KL path. KL = -0.5 * sum(1 +
                        // logvar - mu^2 - exp(logvar)); dKL/dmu = mu,
                        // dKL/dlogvar = 0.5 * (exp(logvar) - 1).
                        let g_mu = grad_z.get(r, c) + kl_scale * mu.get(r, c);
                        let g_logvar = grad_z.get(r, c) * 0.5 * std * eps.get(r, c)
                            + kl_scale * 0.5 * (logvar.get(r, c).exp() - 1.0);
                        grad_enc_out.set(r, c, g_mu);
                        grad_enc_out.set(r, zd + c, g_logvar);
                    }
                }
                encoder.backward(&grad_enc_out);
                let mut params = encoder.params_mut();
                params.extend(decoder.params_mut());
                if let Some(max_norm) = self.config.watchdog.grad_clip {
                    clip_grad_norm(&mut params, max_norm);
                }
                opt.step(&mut params);
                epoch_loss += recon_sq / count + self.config.beta * kl_sum / (b * zd) as f64;
            }
            match watchdog.observe(epoch, epoch_loss, &mut [&mut encoder, &mut decoder]) {
                WatchdogVerdict::Proceed | WatchdogVerdict::RolledBack => {}
                WatchdogVerdict::Abort => break,
            }
        }
        self.outcome = Some(watchdog.outcome());
        self.plan = InferPlan::compile(&decoder).ok();
        self.decoder = Some(decoder);
        self.dims = Some((d_inv, d_var));
        Ok(())
    }

    fn reconstruct(&self, x_inv: &Matrix, seed: u64) -> Matrix {
        let decoder = self.decoder.as_ref().expect("Vae: reconstruct before fit");
        let (d_inv, _) = self.dims.expect("dims recorded at fit");
        assert_eq!(x_inv.cols(), d_inv, "Vae: invariant-block width mismatch");
        let mut rng = SeededRng::new(seed);
        let z = rng.normal_matrix(x_inv.rows(), self.config.latent_dim, 0.0, 1.0);
        let dec_in = x_inv.hstack(&z).expect("rows match");
        self.run_decoder(decoder, &dec_in, InferPrecision::F64Exact)
    }

    fn name(&self) -> &'static str {
        "vae"
    }

    fn train_outcome(&self) -> Option<TrainOutcome> {
        self.outcome
    }

    fn reconstruct_rows(&self, x_inv: &Matrix, row_seeds: &[u64]) -> Matrix {
        self.reconstruct_rows_with(x_inv, row_seeds, InferPrecision::F64Exact)
    }

    fn reconstruct_rows_with(
        &self,
        x_inv: &Matrix,
        row_seeds: &[u64],
        precision: InferPrecision,
    ) -> Matrix {
        let decoder = self.decoder.as_ref().expect("Vae: reconstruct before fit");
        let (d_inv, _) = self.dims.expect("dims recorded at fit");
        assert_eq!(x_inv.cols(), d_inv, "Vae: invariant-block width mismatch");
        assert_eq!(
            x_inv.rows(),
            row_seeds.len(),
            "reconstruct_rows: one seed per row"
        );
        let zd = self.config.latent_dim;
        let mut z = Matrix::zeros(x_inv.rows(), zd);
        for (r, &seed) in row_seeds.iter().enumerate() {
            let noise = SeededRng::new(seed).normal_vec(zd);
            z.row_mut(r).copy_from_slice(&noise);
        }
        let dec_in = x_inv.hstack(&z).expect("rows match");
        self.run_decoder(decoder, &dec_in, precision)
    }

    fn snapshot(&self) -> Result<ReconSnapshot> {
        let decoder = self.decoder.as_ref().ok_or(GanError::NotFitted)?;
        Ok(ReconSnapshot::Vae {
            config: self.config.clone(),
            seed: self.seed,
            dims: self.dims.expect("dims recorded at fit"),
            state: export_state(decoder),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsda_linalg::stats::pearson;

    fn toy(n: usize, seed: u64) -> (Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let mut x_inv = Matrix::zeros(n, 2);
        let mut x_var = Matrix::zeros(n, 1);
        for r in 0..n {
            let a = rng.normal(0.0, 0.7);
            let b = rng.normal(0.0, 0.7);
            x_inv.set(r, 0, a);
            x_inv.set(r, 1, b);
            x_var.set(
                r,
                0,
                (0.7 * a + 0.3 * b).tanh() * 0.8 + rng.normal(0.0, 0.05),
            );
        }
        let y = Matrix::zeros(n, 1);
        (x_inv, x_var, y)
    }

    fn quick() -> VaeConfig {
        VaeConfig {
            hidden: 32,
            latent_dim: 4,
            epochs: 120,
            ..VaeConfig::default()
        }
    }

    #[test]
    fn reconstruction_tracks_mechanism() {
        let (x_inv, x_var, y) = toy(256, 1);
        let mut vae = Vae::new(quick(), 2);
        vae.fit(&x_inv, &x_var, &y).unwrap();
        let recon = vae.reconstruct(&x_inv, 3);
        let r = pearson(&recon.col(0), &x_var.col(0));
        assert!(
            r > 0.6,
            "VAE should reconstruct the conditional mean, r = {r}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (x_inv, x_var, y) = toy(64, 4);
        let mut vae = Vae::new(
            VaeConfig {
                epochs: 10,
                ..quick()
            },
            5,
        );
        vae.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(vae.reconstruct(&x_inv, 6), vae.reconstruct(&x_inv, 6));
    }

    #[test]
    fn output_is_bounded() {
        let (x_inv, x_var, y) = toy(64, 7);
        let mut vae = Vae::new(
            VaeConfig {
                epochs: 10,
                ..quick()
            },
            8,
        );
        vae.fit(&x_inv, &x_var, &y).unwrap();
        let recon = vae.reconstruct(&x_inv.map(|v| v + 100.0), 9);
        assert!(recon.max_abs() <= 1.0 + 1e-9);
    }

    #[test]
    fn name_is_vae() {
        assert_eq!(Vae::new(quick(), 1).name(), "vae");
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let (x_inv, x_var, y) = toy(64, 10);
        let mut vae = Vae::new(
            VaeConfig {
                epochs: 10,
                ..quick()
            },
            11,
        );
        vae.fit(&x_inv, &x_var, &y).unwrap();
        let snap = vae.snapshot().unwrap();
        let restored = crate::restore_reconstructor(&snap).unwrap();
        assert_eq!(
            restored.reconstruct(&x_inv, 12),
            vae.reconstruct(&x_inv, 12)
        );
        assert_eq!(restored.snapshot().unwrap(), snap);
    }

    #[test]
    fn healthy_fit_reports_converged() {
        let (x_inv, x_var, y) = toy(64, 20);
        let mut vae = Vae::new(
            VaeConfig {
                epochs: 5,
                ..quick()
            },
            21,
        );
        assert!(vae.train_outcome().is_none());
        vae.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(vae.train_outcome(), Some(TrainOutcome::Converged));
    }

    #[test]
    fn nan_training_data_reports_diverged() {
        let (x_inv, _, y) = toy(64, 22);
        let x_var = Matrix::from_fn(64, 1, |_, _| f64::NAN);
        let mut vae = Vae::new(
            VaeConfig {
                epochs: 5,
                ..quick()
            },
            23,
        );
        vae.fit(&x_inv, &x_var, &y).unwrap();
        match vae.train_outcome() {
            Some(TrainOutcome::Diverged { .. }) => {}
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_defaults_do_not_change_training() {
        let (x_inv, x_var, y) = toy(64, 24);
        let cfg = VaeConfig {
            epochs: 10,
            ..quick()
        };
        let mut guarded = Vae::new(cfg.clone(), 25);
        guarded.fit(&x_inv, &x_var, &y).unwrap();
        let mut unguarded = Vae::new(
            VaeConfig {
                watchdog: WatchdogConfig {
                    enabled: false,
                    ..WatchdogConfig::default()
                },
                ..cfg
            },
            25,
        );
        unguarded.fit(&x_inv, &x_var, &y).unwrap();
        assert_eq!(
            guarded.reconstruct(&x_inv, 26),
            unguarded.reconstruct(&x_inv, 26)
        );
    }

    #[test]
    fn reconstruct_rows_matches_per_row_loop() {
        let (x_inv, x_var, y) = toy(32, 13);
        let mut vae = Vae::new(
            VaeConfig {
                epochs: 10,
                ..quick()
            },
            14,
        );
        vae.fit(&x_inv, &x_var, &y).unwrap();
        let seeds: Vec<u64> = (0..32u64).map(|i| 1000 + i * 7).collect();
        let batched = vae.reconstruct_rows(&x_inv, &seeds);
        for (r, &seed) in seeds.iter().enumerate() {
            let single = vae.reconstruct(&x_inv.select_rows(&[r]), seed);
            assert_eq!(batched.row(r), single.row(0), "row {r}");
        }
    }
}
