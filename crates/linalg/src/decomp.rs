//! Matrix decompositions: Cholesky, LU solve/inverse, symmetric eigen (Jacobi).
//!
//! All routines operate on the dense [`Matrix`] type and are `O(n^3)`, which
//! is ample for the covariance / precision matrices (a few hundred columns)
//! arising in the paper's methods.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L * L^T`.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] when `A` is not (numerically)
/// positive definite and [`LinalgError::ShapeMismatch`] when `A` is not square.
///
/// # Example
///
/// ```
/// use fsda_linalg::{Matrix, decomp::cholesky};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let l = cholesky(&a)?;
/// let back = l.matmul(&l.transpose());
/// assert!((back.get(0, 1) - 2.0).abs() < 1e-12);
/// # Ok::<(), fsda_linalg::LinalgError>(())
/// ```
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = check_square(a)?;
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite);
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` via LU decomposition with partial pivoting.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when `A` is numerically singular and
/// [`LinalgError::ShapeMismatch`] when dimensions disagree.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = check_square(a)?;
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch(format!(
            "rhs length {} vs {}",
            b.len(),
            n
        )));
    }
    let (lu, perm) = lu_factor(a)?;
    Ok(lu_substitute(&lu, &perm, b))
}

/// Inverse of a square matrix via LU decomposition.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when `A` is numerically singular and
/// [`LinalgError::ShapeMismatch`] when `A` is not square.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    let n = check_square(a)?;
    let (lu, perm) = lu_factor(a)?;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for c in 0..n {
        e[c] = 1.0;
        let x = lu_substitute(&lu, &perm, &e);
        for (r, &v) in x.iter().enumerate() {
            inv.set(r, c, v);
        }
        e[c] = 0.0;
    }
    Ok(inv)
}

/// Log-determinant of a positive-definite matrix via Cholesky.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] when `A` is not positive
/// definite.
pub fn log_det_pd(a: &Matrix) -> Result<f64> {
    let l = cholesky(a)?;
    let mut acc = 0.0;
    for i in 0..l.rows() {
        acc += l.get(i, i).ln();
    }
    Ok(2.0 * acc)
}

/// Eigen-decomposition of a symmetric matrix via the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
/// descending order; `eigenvectors` holds the corresponding unit
/// eigenvectors as **columns**.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `A` is not square.
pub fn sym_eigen(a: &Matrix) -> Result<(Vec<f64>, Matrix)> {
    let n = check_square(a)?;
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let max_sweeps = 100;
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j).powi(2);
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].total_cmp(&diag[i]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let eigenvectors = v.select_cols(&order);
    Ok((eigenvalues, eigenvectors))
}

/// Computes `A^{-1/2}` of a symmetric positive-semidefinite matrix using its
/// eigen-decomposition, flooring eigenvalues at `eps` for stability.
///
/// Used by CORAL-style whitening and the linear-ICA step of CMT.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `A` is not square.
pub fn inv_sqrt_psd(a: &Matrix, eps: f64) -> Result<Matrix> {
    let (vals, vecs) = sym_eigen(a)?;
    scaled_eigen_product(&vals, &vecs, |v| 1.0 / v.max(eps).sqrt())
}

/// Computes `A^{1/2}` of a symmetric positive-semidefinite matrix, flooring
/// eigenvalues at `eps`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `A` is not square.
pub fn sqrt_psd(a: &Matrix, eps: f64) -> Result<Matrix> {
    let (vals, vecs) = sym_eigen(a)?;
    scaled_eigen_product(&vals, &vecs, |v| v.max(eps).sqrt())
}

fn scaled_eigen_product(vals: &[f64], vecs: &Matrix, f: impl Fn(f64) -> f64) -> Result<Matrix> {
    let n = vals.len();
    let mut d = Matrix::zeros(n, n);
    for (i, &v) in vals.iter().enumerate() {
        d.set(i, i, f(v));
    }
    Ok(vecs.matmul(&d).matmul(&vecs.transpose()))
}

fn check_square(a: &Matrix) -> Result<usize> {
    if a.rows() != a.cols() {
        return Err(LinalgError::ShapeMismatch(format!(
            "expected square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    Ok(a.rows())
}

fn lu_factor(a: &Matrix) -> Result<(Matrix, Vec<usize>)> {
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Partial pivoting.
        let mut pivot = col;
        let mut best = lu.get(col, col).abs();
        for r in (col + 1)..n {
            let v = lu.get(r, col).abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best < 1e-12 {
            return Err(LinalgError::Singular);
        }
        if pivot != col {
            perm.swap(pivot, col);
            for c in 0..n {
                let tmp = lu.get(col, c);
                lu.set(col, c, lu.get(pivot, c));
                lu.set(pivot, c, tmp);
            }
        }
        let d = lu.get(col, col);
        for r in (col + 1)..n {
            let factor = lu.get(r, col) / d;
            lu.set(r, col, factor);
            for c in (col + 1)..n {
                let v = lu.get(r, c) - factor * lu.get(col, c);
                lu.set(r, c, v);
            }
        }
    }
    Ok((lu, perm))
}

// Triangular substitution is clearest with explicit indices.
#[allow(clippy::needless_range_loop)]
fn lu_substitute(lu: &Matrix, perm: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.rows();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[perm[i]];
        for j in 0..i {
            sum -= lu.get(i, j) * y[j];
        }
        y[i] = sum;
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in (i + 1)..n {
            sum -= lu.get(i, j) * x[j];
        }
        x[i] = sum / lu.get(i, i);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 2.0]])
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let back = l.matmul(&l.transpose());
        assert!(back.try_sub(&a).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        assert!(matches!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn lu_solve_recovers_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = lu_solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_solve_rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(
            lu_solve(&a, &[1.0, 2.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd3();
        let inv = inverse(&a).unwrap();
        let id = a.matmul(&inv);
        assert!(id.try_sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-10);
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 8.0]]);
        assert!((log_det_pd(&a).unwrap() - (16.0_f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn sym_eigen_diagonalizes() {
        let a = spd3();
        let (vals, vecs) = sym_eigen(&a).unwrap();
        // Descending order.
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
        // A v = lambda v for each column.
        for (k, &val) in vals.iter().enumerate() {
            let v = vecs.col(k);
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!((av[i] - val * v[i]).abs() < 1e-8, "eigenpair {k} mismatch");
            }
        }
        // Trace preserved.
        let trace: f64 = (0..3).map(|i| a.get(i, i)).sum();
        assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-8);
    }

    #[test]
    fn inv_sqrt_psd_whitens() {
        let a = spd3();
        let w = inv_sqrt_psd(&a, 1e-12).unwrap();
        // W * A * W = I
        let id = w.matmul(&a).matmul(&w);
        assert!(id.try_sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn sqrt_psd_squares_back() {
        let a = spd3();
        let s = sqrt_psd(&a, 1e-12).unwrap();
        let back = s.matmul(&s);
        assert!(back.try_sub(&a).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn eigen_identity() {
        let (vals, _) = sym_eigen(&Matrix::identity(5)).unwrap();
        for v in vals {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }
}
