//! Blocked, runtime-dispatched GEMM/GEMV kernels for `f32` and `f64`.
//!
//! This module is the bottom layer of the workspace's inference plane: the
//! dense forward passes in `fsda_nn` compile down to the kernels here, and
//! [`crate::Matrix::matmul`] itself dispatches through [`Element::gemm_nn`].
//!
//! # Bit-exactness contract
//!
//! The `f64` kernels are **bit-identical** to the naive reference loop
//! ([`crate::Matrix::matmul_naive`]) for *every* input, including NaN and
//! infinity (the one exception is the payload of a NaN result, which the
//! compiler does not keep stable even between two scalar builds; NaN
//! *placement* is exact):
//!
//! - each output element accumulates its `k` terms in ascending order into a
//!   single accumulator (no split-`k`, no pairwise reduction),
//! - the reference's zero-skip (`a == 0.0` terms are omitted) is preserved,
//!   so non-finite right-hand values multiplied by an exact zero are skipped
//!   exactly like the reference skips them,
//! - the AVX2 path vectorizes across *output columns only* — every lane is
//!   an independent output element running the identical ascending-`k`
//!   multiply-then-add chain — and never uses FMA, whose single rounding
//!   would diverge from the two-rounding scalar sequence.
//!
//! The `f32` kernels carry no bit contract against `f64`; they use FMA and
//! are simply deterministic for a fixed dispatch path. Divergence versus the
//! exact path is measured and recorded by the `perf_baseline` bench (see
//! `docs/KERNELS.md`).
//!
//! # Dispatch
//!
//! [`kernel_path`] probes the CPU once per process (`std::arch` feature
//! detection) and selects AVX2 micro-kernels when AVX2+FMA are available,
//! falling back to portable scalar loops otherwise. The selected path is
//! reported once per process through the `linalg.kernel.dispatch` telemetry
//! event.
//!
//! # Example
//!
//! ```
//! use fsda_linalg::kernel::{matmul_nt, Element};
//! use fsda_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
//! // A · Wᵀ without materializing the transpose:
//! assert_eq!(matmul_nt(&a, &w), a);
//! // The generic entry point, usable at f32 or f64:
//! let mut y = vec![0.0f32; 2];
//! f32::gemv_nt(&[1.0, 0.0, 0.0, 1.0], &[5.0, 7.0], &mut y);
//! assert_eq!(y, [5.0, 7.0]);
//! ```

use crate::Matrix;
use fsda_telemetry::Value;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Rows of `A` processed per register tile: each packed `B` row loaded from
/// L1 is reused across this many output rows.
const TILE_ROWS: usize = 4;

/// Minimum batch size at which [`matmul_nt`] packs `Bᵀ` into thread-local
/// scratch and runs the blocked kernel; smaller batches use latency-bound
/// dot products directly on the untransposed weights, which is cheaper than
/// paying the `O(k·n)` pack.
const PACK_MIN_ROWS: usize = 8;

/// Elementwise activation applied by the fused affine epilogue.
///
/// The formulas are *exactly* those of `fsda_nn`'s activation layers (ReLU
/// `x.max(0.0)`, LeakyReLU slope `0.2`, tanh, and the numerically-stable
/// two-branch sigmoid), so a fused `act(x·Wᵀ + b)` kernel at `f64` is
/// bit-identical to the unfused layer sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// Pass-through (affine layer with no fused activation).
    Identity,
    /// `max(0, x)`.
    Relu,
    /// `x` for `x > 0`, `0.2 * x` otherwise.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Numerically-stable logistic sigmoid.
    Sigmoid,
}

impl Act {
    /// Evaluates the activation at `f64`, bit-identical to the `fsda_nn`
    /// layer formulas.
    #[inline]
    pub fn eval_f64(self, x: f64) -> f64 {
        match self {
            Act::Identity => x,
            Act::Relu => x.max(0.0),
            Act::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
            Act::Tanh => x.tanh(),
            Act::Sigmoid => {
                if x >= 0.0 {
                    1.0 / (1.0 + (-x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            }
        }
    }

    /// Evaluates the activation at `f32` (same formulas, single precision).
    #[inline]
    pub fn eval_f32(self, x: f32) -> f32 {
        match self {
            Act::Identity => x,
            Act::Relu => x.max(0.0),
            Act::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
            Act::Tanh => x.tanh(),
            Act::Sigmoid => {
                if x >= 0.0 {
                    1.0 / (1.0 + (-x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            }
        }
    }
}

/// The instruction path the kernels selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// AVX2 micro-kernels: 4-lane `f64` (multiply + add, FMA deliberately
    /// unused to preserve bit-exactness) and 8-lane FMA `f32`.
    Avx2,
    /// Portable scalar fallback (still blocked and auto-vectorizable).
    Scalar,
}

impl KernelPath {
    /// Short human-readable label (used in telemetry and benches).
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Avx2 => "avx2+fma",
            KernelPath::Scalar => "scalar",
        }
    }
}

static PATH: OnceLock<KernelPath> = OnceLock::new();

/// The kernel path selected for this process (probed once, then cached).
pub fn kernel_path() -> KernelPath {
    *PATH.get_or_init(detect)
}

fn detect() -> KernelPath {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return KernelPath::Avx2;
        }
    }
    KernelPath::Scalar
}

static DISPATCH_NOTED: AtomicBool = AtomicBool::new(false);

/// Emits the `linalg.kernel.dispatch` event the first time a kernel runs
/// while telemetry is enabled. The flag is only consumed when a recorder can
/// observe the event, so a recorder installed later in the process still
/// receives exactly one dispatch report.
#[inline]
fn note_dispatch() {
    if fsda_telemetry::enabled() && !DISPATCH_NOTED.swap(true, Ordering::Relaxed) {
        let path = kernel_path();
        let (f64_lanes, f32_lanes) = match path {
            KernelPath::Avx2 => (4, 8),
            KernelPath::Scalar => (1, 1),
        };
        fsda_telemetry::event(
            "linalg.kernel.dispatch",
            &[
                ("path", Value::Str(path.label().to_string())),
                ("f64_lanes", Value::Int(f64_lanes)),
                ("f32_lanes", Value::Int(f32_lanes)),
                ("tile_rows", Value::Int(TILE_ROWS as i64)),
            ],
        );
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for f32 {}
}

/// A scalar element the kernel plane is generic over (`f64` or `f32`).
///
/// The trait carries exactly the operations the inference plane needs —
/// GEMM over a pre-transposed weight panel, a GEMV on untransposed weights,
/// the fused bias+activation epilogue, and the batch-norm affine — so the
/// stage logic in `fsda_nn`'s `InferPlan` is written once and instantiated
/// at both precisions. `Matrix` itself (and the decompositions and
/// statistics built on it) stays `f64`-only: the exact path is the
/// reference, and no numerical-analysis code is duplicated per precision.
pub trait Element:
    sealed::Sealed + Copy + Send + Sync + std::fmt::Debug + PartialEq + 'static
{
    /// Additive identity.
    const ZERO: Self;

    /// Whether [`Element::gemv_nt`] is bit-identical to a one-row
    /// [`Element::gemm_nn`] call at this precision. `f64` preserves the
    /// naive ascending-`k`, zero-skip, two-rounding chain in both kernels,
    /// so the GEMV may replace a degenerate one-row GEMM; the `f32` batched
    /// kernel uses FMA while its GEMV is scalar, so swapping would break
    /// batch-vs-single bit-identity. Single-row fast paths must consult
    /// this const before switching kernels.
    const GEMV_MATCHES_GEMM: bool;

    /// Converts from the workspace's canonical `f64`.
    fn from_f64(x: f64) -> Self;

    /// Converts back to `f64`.
    fn to_f64(self) -> f64;

    /// Whether the value is finite.
    fn is_finite_elem(self) -> bool;

    /// Evaluates an [`Act`] at this precision.
    fn eval_act(act: Act, x: Self) -> Self;

    /// The batch-norm inference affine in the exact operation order of
    /// `fsda_nn`'s layer: `gamma * ((x - mean) * std_inv) + beta`.
    fn batch_norm(x: Self, mean: Self, std_inv: Self, gamma: Self, beta: Self) -> Self;

    /// `C += A · B` with `A` `(m, k)`, `B` `(k, n)`, and `C` `(m, n)`, all
    /// row-major. `C` is accumulated into (callers pass a zeroed buffer for
    /// a plain product). At `f64` this is bit-identical to
    /// [`crate::Matrix::matmul_naive`] for every input.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when a slice length disagrees with the
    /// stated shape.
    fn gemm_nn(m: usize, k: usize, n: usize, a: &[Self], b: &[Self], c: &mut [Self]);

    /// `y += W · x` with `W` `(n, k)` row-major (an `fsda_nn` weight matrix)
    /// and `x` of length `k`: the B-transposed GEMV. Zero `x` terms are
    /// skipped exactly like the GEMM reference skips them.
    fn gemv_nt(w: &[Self], x: &[Self], y: &mut [Self]);

    /// Fused epilogue: `c[r][j] = act(c[r][j] + bias[j])` over an
    /// `(m, n)` row-major `c` with `n = bias.len()`. At `f64` the
    /// add-then-activate order matches the unfused layer sequence
    /// bit-for-bit.
    fn bias_act(c: &mut [Self], bias: &[Self], act: Act);
}

impl Element for f64 {
    const ZERO: f64 = 0.0;
    const GEMV_MATCHES_GEMM: bool = true;

    #[inline]
    fn from_f64(x: f64) -> f64 {
        x
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn is_finite_elem(self) -> bool {
        self.is_finite()
    }

    #[inline]
    fn eval_act(act: Act, x: f64) -> f64 {
        act.eval_f64(x)
    }

    #[inline]
    fn batch_norm(x: f64, mean: f64, std_inv: f64, gamma: f64, beta: f64) -> f64 {
        let xh = (x - mean) * std_inv;
        gamma * xh + beta
    }

    fn gemm_nn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        debug_assert_eq!(a.len(), m * k, "gemm_nn: A length");
        debug_assert_eq!(b.len(), k * n, "gemm_nn: B length");
        debug_assert_eq!(c.len(), m * n, "gemm_nn: C length");
        note_dispatch();
        #[cfg(target_arch = "x86_64")]
        if kernel_path() == KernelPath::Avx2 {
            // SAFETY: AVX2 support was verified by `kernel_path`.
            unsafe { gemm_nn_f64_avx2(m, k, n, a, b, c) };
            return;
        }
        gemm_nn_f64_scalar(m, k, n, a, b, c);
    }

    fn gemv_nt(w: &[f64], x: &[f64], y: &mut [f64]) {
        let k = x.len();
        debug_assert_eq!(w.len(), y.len() * k, "gemv_nt: W length");
        note_dispatch();
        if k == 0 {
            return;
        }
        for (yj, wrow) in y.iter_mut().zip(w.chunks_exact(k)) {
            let mut acc = *yj;
            for (&xv, &wv) in x.iter().zip(wrow) {
                if xv == 0.0 {
                    continue;
                }
                acc += xv * wv;
            }
            *yj = acc;
        }
    }

    fn bias_act(c: &mut [f64], bias: &[f64], act: Act) {
        let n = bias.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(c.len() % n, 0, "bias_act: C not a whole number of rows");
        for row in c.chunks_exact_mut(n) {
            for (cv, &bv) in row.iter_mut().zip(bias) {
                *cv = act.eval_f64(*cv + bv);
            }
        }
    }
}

impl Element for f32 {
    const ZERO: f32 = 0.0;
    const GEMV_MATCHES_GEMM: bool = false;

    #[inline]
    fn from_f64(x: f64) -> f32 {
        x as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }

    #[inline]
    fn is_finite_elem(self) -> bool {
        self.is_finite()
    }

    #[inline]
    fn eval_act(act: Act, x: f32) -> f32 {
        act.eval_f32(x)
    }

    #[inline]
    fn batch_norm(x: f32, mean: f32, std_inv: f32, gamma: f32, beta: f32) -> f32 {
        let xh = (x - mean) * std_inv;
        gamma * xh + beta
    }

    fn gemm_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k, "gemm_nn: A length");
        debug_assert_eq!(b.len(), k * n, "gemm_nn: B length");
        debug_assert_eq!(c.len(), m * n, "gemm_nn: C length");
        note_dispatch();
        #[cfg(target_arch = "x86_64")]
        if kernel_path() == KernelPath::Avx2 {
            // SAFETY: AVX2+FMA support was verified by `kernel_path`.
            unsafe { gemm_nn_f32_avx2(m, k, n, a, b, c) };
            return;
        }
        gemm_nn_f32_scalar(m, k, n, a, b, c);
    }

    fn gemv_nt(w: &[f32], x: &[f32], y: &mut [f32]) {
        let k = x.len();
        debug_assert_eq!(w.len(), y.len() * k, "gemv_nt: W length");
        note_dispatch();
        if k == 0 {
            return;
        }
        for (yj, wrow) in y.iter_mut().zip(w.chunks_exact(k)) {
            let mut acc = *yj;
            for (&xv, &wv) in x.iter().zip(wrow) {
                if xv == 0.0 {
                    continue;
                }
                acc += xv * wv;
            }
            *yj = acc;
        }
    }

    fn bias_act(c: &mut [f32], bias: &[f32], act: Act) {
        let n = bias.len();
        if n == 0 {
            return;
        }
        debug_assert_eq!(c.len() % n, 0, "bias_act: C not a whole number of rows");
        for row in c.chunks_exact_mut(n) {
            for (cv, &bv) in row.iter_mut().zip(bias) {
                *cv = act.eval_f32(*cv + bv);
            }
        }
    }
}

/// Scalar blocked GEMM: `TILE_ROWS` rows of `A` share each streamed `B` row,
/// with the reference's ascending-`k` accumulation and zero-skip intact.
fn gemm_nn_f64_scalar(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + TILE_ROWS).min(m);
        for kk in 0..k {
            let brow = &b[kk * n..kk * n + n];
            for i in i0..i1 {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * n..i * n + n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        i0 = i1;
    }
}

fn gemm_nn_f32_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let mut i0 = 0;
    while i0 < m {
        let i1 = (i0 + TILE_ROWS).min(m);
        for kk in 0..k {
            let brow = &b[kk * n..kk * n + n];
            for i in i0..i1 {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * n..i * n + n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        i0 = i1;
    }
}

/// AVX2 `f64` GEMM. Register-blocked: a 2-row × 16-column panel of `C`
/// lives in eight ymm accumulators across the entire `k` loop, so `C` is
/// loaded and stored once per panel instead of once per `k` step. Lanes are
/// independent output columns; each runs the scalar reference's exact
/// multiply-then-add ascending-`k` chain with the zero-skip, so the result
/// is bit-identical to [`gemm_nn_f64_scalar`] (FMA is deliberately not
/// used — its single rounding would break the two-rounding contract).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nn_f64_avx2(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    // 16-column panels, two A rows per pass.
    let mut j0 = 0;
    while j0 + 16 <= n {
        let mut i = 0;
        while i + 2 <= m {
            let c0 = cp.add(i * n + j0);
            let c1 = cp.add((i + 1) * n + j0);
            let mut acc00 = _mm256_loadu_pd(c0);
            let mut acc01 = _mm256_loadu_pd(c0.add(4));
            let mut acc02 = _mm256_loadu_pd(c0.add(8));
            let mut acc03 = _mm256_loadu_pd(c0.add(12));
            let mut acc10 = _mm256_loadu_pd(c1);
            let mut acc11 = _mm256_loadu_pd(c1.add(4));
            let mut acc12 = _mm256_loadu_pd(c1.add(8));
            let mut acc13 = _mm256_loadu_pd(c1.add(12));
            for kk in 0..k {
                let brow = bp.add(kk * n + j0);
                let vb0 = _mm256_loadu_pd(brow);
                let vb1 = _mm256_loadu_pd(brow.add(4));
                let vb2 = _mm256_loadu_pd(brow.add(8));
                let vb3 = _mm256_loadu_pd(brow.add(12));
                let av0 = *ap.add(i * k + kk);
                if av0 != 0.0 {
                    let va = _mm256_set1_pd(av0);
                    acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(va, vb0));
                    acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(va, vb1));
                    acc02 = _mm256_add_pd(acc02, _mm256_mul_pd(va, vb2));
                    acc03 = _mm256_add_pd(acc03, _mm256_mul_pd(va, vb3));
                }
                let av1 = *ap.add((i + 1) * k + kk);
                if av1 != 0.0 {
                    let va = _mm256_set1_pd(av1);
                    acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(va, vb0));
                    acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(va, vb1));
                    acc12 = _mm256_add_pd(acc12, _mm256_mul_pd(va, vb2));
                    acc13 = _mm256_add_pd(acc13, _mm256_mul_pd(va, vb3));
                }
            }
            _mm256_storeu_pd(c0, acc00);
            _mm256_storeu_pd(c0.add(4), acc01);
            _mm256_storeu_pd(c0.add(8), acc02);
            _mm256_storeu_pd(c0.add(12), acc03);
            _mm256_storeu_pd(c1, acc10);
            _mm256_storeu_pd(c1.add(4), acc11);
            _mm256_storeu_pd(c1.add(8), acc12);
            _mm256_storeu_pd(c1.add(12), acc13);
            i += 2;
        }
        if i < m {
            let c0 = cp.add(i * n + j0);
            let mut acc0 = _mm256_loadu_pd(c0);
            let mut acc1 = _mm256_loadu_pd(c0.add(4));
            let mut acc2 = _mm256_loadu_pd(c0.add(8));
            let mut acc3 = _mm256_loadu_pd(c0.add(12));
            for kk in 0..k {
                let av = *ap.add(i * k + kk);
                if av == 0.0 {
                    continue;
                }
                let brow = bp.add(kk * n + j0);
                let va = _mm256_set1_pd(av);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(brow)));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(brow.add(4))));
                acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(brow.add(8))));
                acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(brow.add(12))));
            }
            _mm256_storeu_pd(c0, acc0);
            _mm256_storeu_pd(c0.add(4), acc1);
            _mm256_storeu_pd(c0.add(8), acc2);
            _mm256_storeu_pd(c0.add(12), acc3);
        }
        j0 += 16;
    }
    // 4-column panels for the tail.
    while j0 + 4 <= n {
        for i in 0..m {
            let mut acc = _mm256_loadu_pd(cp.add(i * n + j0));
            for kk in 0..k {
                let av = *ap.add(i * k + kk);
                if av == 0.0 {
                    continue;
                }
                let vb = _mm256_loadu_pd(bp.add(kk * n + j0));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(av), vb));
            }
            _mm256_storeu_pd(cp.add(i * n + j0), acc);
        }
        j0 += 4;
    }
    // Remaining scalar columns.
    while j0 < n {
        for i in 0..m {
            let mut acc = *cp.add(i * n + j0);
            for kk in 0..k {
                let av = *ap.add(i * k + kk);
                if av == 0.0 {
                    continue;
                }
                acc += av * *bp.add(kk * n + j0);
            }
            *cp.add(i * n + j0) = acc;
        }
        j0 += 1;
    }
}

/// AVX2+FMA `f32` GEMM: register-blocked 2-row × 32-column `C` panels with
/// 8-lane fused multiply-add. No bit contract against the `f64` reference —
/// divergence is measured, not forbidden — but the result is deterministic
/// for a fixed dispatch path.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nn_f32_avx2(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    use std::arch::x86_64::*;
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    // 32-column panels, two A rows per pass.
    let mut j0 = 0;
    while j0 + 32 <= n {
        let mut i = 0;
        while i + 2 <= m {
            let c0 = cp.add(i * n + j0);
            let c1 = cp.add((i + 1) * n + j0);
            let mut acc00 = _mm256_loadu_ps(c0);
            let mut acc01 = _mm256_loadu_ps(c0.add(8));
            let mut acc02 = _mm256_loadu_ps(c0.add(16));
            let mut acc03 = _mm256_loadu_ps(c0.add(24));
            let mut acc10 = _mm256_loadu_ps(c1);
            let mut acc11 = _mm256_loadu_ps(c1.add(8));
            let mut acc12 = _mm256_loadu_ps(c1.add(16));
            let mut acc13 = _mm256_loadu_ps(c1.add(24));
            for kk in 0..k {
                let brow = bp.add(kk * n + j0);
                let vb0 = _mm256_loadu_ps(brow);
                let vb1 = _mm256_loadu_ps(brow.add(8));
                let vb2 = _mm256_loadu_ps(brow.add(16));
                let vb3 = _mm256_loadu_ps(brow.add(24));
                let av0 = *ap.add(i * k + kk);
                if av0 != 0.0 {
                    let va = _mm256_set1_ps(av0);
                    acc00 = _mm256_fmadd_ps(va, vb0, acc00);
                    acc01 = _mm256_fmadd_ps(va, vb1, acc01);
                    acc02 = _mm256_fmadd_ps(va, vb2, acc02);
                    acc03 = _mm256_fmadd_ps(va, vb3, acc03);
                }
                let av1 = *ap.add((i + 1) * k + kk);
                if av1 != 0.0 {
                    let va = _mm256_set1_ps(av1);
                    acc10 = _mm256_fmadd_ps(va, vb0, acc10);
                    acc11 = _mm256_fmadd_ps(va, vb1, acc11);
                    acc12 = _mm256_fmadd_ps(va, vb2, acc12);
                    acc13 = _mm256_fmadd_ps(va, vb3, acc13);
                }
            }
            _mm256_storeu_ps(c0, acc00);
            _mm256_storeu_ps(c0.add(8), acc01);
            _mm256_storeu_ps(c0.add(16), acc02);
            _mm256_storeu_ps(c0.add(24), acc03);
            _mm256_storeu_ps(c1, acc10);
            _mm256_storeu_ps(c1.add(8), acc11);
            _mm256_storeu_ps(c1.add(16), acc12);
            _mm256_storeu_ps(c1.add(24), acc13);
            i += 2;
        }
        if i < m {
            let c0 = cp.add(i * n + j0);
            let mut acc0 = _mm256_loadu_ps(c0);
            let mut acc1 = _mm256_loadu_ps(c0.add(8));
            let mut acc2 = _mm256_loadu_ps(c0.add(16));
            let mut acc3 = _mm256_loadu_ps(c0.add(24));
            for kk in 0..k {
                let av = *ap.add(i * k + kk);
                if av == 0.0 {
                    continue;
                }
                let brow = bp.add(kk * n + j0);
                let va = _mm256_set1_ps(av);
                acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow), acc0);
                acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(8)), acc1);
                acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(16)), acc2);
                acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(brow.add(24)), acc3);
            }
            _mm256_storeu_ps(c0, acc0);
            _mm256_storeu_ps(c0.add(8), acc1);
            _mm256_storeu_ps(c0.add(16), acc2);
            _mm256_storeu_ps(c0.add(24), acc3);
        }
        j0 += 32;
    }
    // 8-column panels for the tail.
    while j0 + 8 <= n {
        for i in 0..m {
            let mut acc = _mm256_loadu_ps(cp.add(i * n + j0));
            for kk in 0..k {
                let av = *ap.add(i * k + kk);
                if av == 0.0 {
                    continue;
                }
                let vb = _mm256_loadu_ps(bp.add(kk * n + j0));
                acc = _mm256_fmadd_ps(_mm256_set1_ps(av), vb, acc);
            }
            _mm256_storeu_ps(cp.add(i * n + j0), acc);
        }
        j0 += 8;
    }
    // Remaining scalar columns.
    while j0 < n {
        for i in 0..m {
            let mut acc = *cp.add(i * n + j0);
            for kk in 0..k {
                let av = *ap.add(i * k + kk);
                if av == 0.0 {
                    continue;
                }
                acc += av * *bp.add(kk * n + j0);
            }
            *cp.add(i * n + j0) = acc;
        }
        j0 += 1;
    }
}

thread_local! {
    /// Per-thread pack buffer for [`matmul_nt`], so the hot serving path
    /// never allocates a transpose per call.
    static NT_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// `A · Wᵀ` with `A` `(m, k)` and `W` `(n, k)` — the dense-layer forward
/// orientation — **without** materializing `Wᵀ` per call.
///
/// Batches of at least `PACK_MIN_ROWS` rows pack `Wᵀ` into thread-local
/// scratch once and run the blocked GEMM; smaller batches use dot products
/// directly on `W`'s rows. Both paths are bit-identical to
/// `a.matmul(&w.transpose())` for every input (the zero-skip on `A`
/// elements is preserved exactly).
///
/// # Panics
///
/// Panics when `a.cols() != w.cols()`.
pub fn matmul_nt(a: &Matrix, w: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        w.cols(),
        "matmul_nt: {}x{} * ({}x{})^T",
        a.rows(),
        a.cols(),
        w.rows(),
        w.cols()
    );
    let (m, k) = a.shape();
    let n = w.rows();
    let mut out = Matrix::zeros(m, n);
    if n == 0 || k == 0 {
        return out;
    }
    if m >= PACK_MIN_ROWS {
        NT_SCRATCH.with(|scratch| {
            let mut packed = scratch.borrow_mut();
            packed.clear();
            packed.resize(k * n, 0.0);
            let wd = w.as_slice();
            for (j, wrow) in wd.chunks_exact(k).enumerate() {
                for (kk, &wv) in wrow.iter().enumerate() {
                    packed[kk * n + j] = wv;
                }
            }
            <f64 as Element>::gemm_nn(m, k, n, a.as_slice(), &packed, out.as_mut_slice());
        });
    } else {
        for (arow, orow) in a.iter_rows().zip(out.as_mut_slice().chunks_exact_mut(n)) {
            <f64 as Element>::gemv_nt(w.as_slice(), arow, orow);
        }
    }
    out
}

/// `Aᵀ · B` with `A` `(k, m)` and `B` `(k, n)` — the dense-layer
/// weight-gradient orientation — without materializing `Aᵀ`.
///
/// Bit-identical to `a.transpose().matmul(b)` for every input.
///
/// # Panics
///
/// Panics when `a.rows() != b.rows()`.
pub fn matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_at: ({}x{})^T * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    if n == 0 {
        return out;
    }
    let ad = a.as_slice();
    let bd = b.as_slice();
    let od = out.as_mut_slice();
    for i in 0..m {
        let orow = &mut od[i * n..i * n + n];
        for kk in 0..k {
            let av = ad[kk * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[kk * n..kk * n + n];
            for (ov, &bv) in orow.iter_mut().zip(brow) {
                *ov += av * bv;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_nt(a: &Matrix, w: &Matrix) -> Matrix {
        a.matmul_naive(&w.transpose())
    }

    #[test]
    fn dispatch_is_stable() {
        assert_eq!(kernel_path(), kernel_path());
        assert!(!kernel_path().label().is_empty());
    }

    #[test]
    fn gemm_matches_naive_bitwise() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 31 + j * 17) as f64).sin());
        let b = Matrix::from_fn(5, 9, |i, j| ((i * 13 + j * 7) as f64).cos());
        let mut c = vec![0.0; 7 * 9];
        <f64 as Element>::gemm_nn(7, 5, 9, a.as_slice(), b.as_slice(), &mut c);
        let reference = a.matmul_naive(&b);
        for (x, y) in c.iter().zip(reference.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gemm_preserves_zero_skip_under_nan() {
        // A zero in A must mask a NaN in B, exactly like the reference.
        let a = Matrix::from_rows(&[&[0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[f64::NAN, 1.0], &[3.0, 4.0]]);
        let mut c = vec![0.0; 2];
        <f64 as Element>::gemm_nn(1, 2, 2, a.as_slice(), b.as_slice(), &mut c);
        let reference = a.matmul_naive(&b);
        assert_eq!(c[0].to_bits(), reference.get(0, 0).to_bits());
        assert_eq!(c[1].to_bits(), reference.get(0, 1).to_bits());
        assert!(c[0].is_finite());
    }

    #[test]
    fn matmul_nt_matches_both_paths() {
        let w = Matrix::from_fn(6, 5, |i, j| ((i + 2 * j) as f64).sin());
        // Small batch: dot path. Large batch: pack path.
        for m in [1, 3, PACK_MIN_ROWS, 33] {
            let a = Matrix::from_fn(m, 5, |i, j| ((3 * i + j) as f64).cos());
            let fast = matmul_nt(&a, &w);
            let slow = naive_nt(&a, &w);
            assert_eq!(fast.shape(), slow.shape());
            for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m}");
            }
        }
    }

    #[test]
    fn matmul_at_matches_transpose_matmul() {
        let a = Matrix::from_fn(5, 4, |i, j| (i as f64 - j as f64) * 0.7);
        let b = Matrix::from_fn(5, 6, |i, j| (i as f64 + j as f64) * 0.3);
        let fast = matmul_at(&a, &b);
        let slow = a.transpose().matmul_naive(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fused_bias_act_matches_unfused() {
        let bias = [0.5, -0.25, 1.5];
        let mut c = vec![-1.0, 0.0, 2.0, 3.0, -0.5, 0.25];
        let mut unfused = c.clone();
        <f64 as Element>::bias_act(&mut c, &bias, Act::LeakyRelu);
        for row in unfused.chunks_exact_mut(3) {
            for (v, &b) in row.iter_mut().zip(&bias) {
                *v += b;
            }
            for v in row.iter_mut() {
                *v = if *v > 0.0 { *v } else { 0.2 * *v };
            }
        }
        for (x, y) in c.iter().zip(&unfused) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f64_gemv_bit_identical_to_one_row_gemm() {
        // The single-row fast path relies on this equivalence
        // (`Element::GEMV_MATCHES_GEMM`): y = W·x over the native (n, k)
        // weights must reproduce the one-row GEMM over the pre-transposed
        // (k, n) panel bit-for-bit, zero-skips included.
        let k = 13;
        let n = 9;
        let w = Matrix::from_fn(n, k, |i, j| ((i * 5 + j * 3) as f64 * 0.17).sin());
        let x: Vec<f64> = (0..k)
            .map(|i| {
                if i % 4 == 0 {
                    0.0
                } else {
                    (i as f64 * 0.29).cos()
                }
            })
            .collect();
        let mut via_gemv = vec![0.0f64; n];
        <f64 as Element>::gemv_nt(w.as_slice(), &x, &mut via_gemv);
        let wt = w.transpose();
        let mut via_gemm = vec![0.0f64; n];
        <f64 as Element>::gemm_nn(1, k, n, &x, wt.as_slice(), &mut via_gemm);
        for (a, b) in via_gemv.iter().zip(&via_gemm) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
        const {
            assert!(<f64 as Element>::GEMV_MATCHES_GEMM);
            assert!(!<f32 as Element>::GEMV_MATCHES_GEMM);
        }
    }

    #[test]
    fn f32_gemm_is_close_to_f64() {
        let a64 = Matrix::from_fn(10, 8, |i, j| ((i * 3 + j) as f64 * 0.13).sin());
        let b64 = Matrix::from_fn(8, 12, |i, j| ((i + j * 5) as f64 * 0.07).cos());
        let a32: Vec<f32> = a64.as_slice().iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b64.as_slice().iter().map(|&v| v as f32).collect();
        let mut c32 = vec![0.0f32; 10 * 12];
        <f32 as Element>::gemm_nn(10, 8, 12, &a32, &b32, &mut c32);
        let c64 = a64.matmul_naive(&b64);
        for (x, y) in c32.iter().zip(c64.as_slice()) {
            assert!((f64::from(*x) - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn act_formulas_match_reference() {
        for &x in &[-3.0, -0.5, 0.0, 0.5, 3.0, 1000.0, -1000.0] {
            assert_eq!(Act::Relu.eval_f64(x).to_bits(), x.max(0.0).to_bits());
            let leaky = if x > 0.0 { x } else { 0.2 * x };
            assert_eq!(Act::LeakyRelu.eval_f64(x).to_bits(), leaky.to_bits());
            assert_eq!(Act::Tanh.eval_f64(x).to_bits(), x.tanh().to_bits());
            assert!(Act::Sigmoid.eval_f64(x).is_finite());
            assert_eq!(Act::Identity.eval_f64(x).to_bits(), x.to_bits());
        }
        assert!((Act::Sigmoid.eval_f64(0.0) - 0.5).abs() < 1e-12);
        assert!((Act::Sigmoid.eval_f32(0.0) - 0.5).abs() < 1e-6);
    }
}
