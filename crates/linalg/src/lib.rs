//! Dense linear algebra, statistics, and random-number distributions used
//! throughout the `fsda` workspace.
//!
//! The crate is deliberately small and self-contained: the paper's methods
//! only require dense operations on matrices of at most a few thousand rows
//! and a few hundred columns, so a straightforward row-major [`Matrix`]
//! with `O(n^3)` decompositions is both sufficient and easy to audit.
//!
//! # Modules
//!
//! * [`matrix`] — the row-major [`Matrix`] type and elementwise / BLAS-like ops.
//! * [`kernel`] — blocked, runtime-dispatched GEMM/GEMV kernels (`f32` and
//!   `f64`, AVX2 or scalar) behind the precision-generic [`kernel::Element`]
//!   trait; the `f64` path is bit-identical to the naive reference.
//! * [`decomp`] — Cholesky, LU inverse/solve, and symmetric (Jacobi) eigen.
//! * [`stats`] — means, covariance, (partial) correlation, Fisher-z tests.
//! * [`rng`] — seeded sampling: normal (Box–Muller), multivariate normal,
//!   categorical, Gumbel.
//! * [`par`] — the deterministic self-scheduling worker pool behind every
//!   parallel hot loop in the workspace (PC skeleton, F-node search,
//!   random forest, experiment repeats).
//!
//! # Example
//!
//! ```
//! use fsda_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = a.matmul(&a.transpose());
//! assert_eq!(b.get(0, 0), 5.0);
//! ```

pub mod decomp;
pub mod kernel;
pub mod matrix;
pub mod par;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::SeededRng;

/// Error type for linear-algebra operations that can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes; the payload describes them.
    ShapeMismatch(String),
    /// A matrix expected to be positive definite was not.
    NotPositiveDefinite,
    /// A matrix expected to be invertible was (numerically) singular.
    Singular,
    /// The input was empty where a non-empty input is required.
    Empty(String),
    /// A computation produced (or received) NaN/Inf where a finite value is
    /// required.
    NonFinite(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::Empty(msg) => write!(f, "empty input: {msg}"),
            LinalgError::NonFinite(msg) => write!(f, "non-finite value: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let variants = [
            LinalgError::ShapeMismatch("2x2 vs 3x3".into()),
            LinalgError::NotPositiveDefinite,
            LinalgError::Singular,
            LinalgError::Empty("rows".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
